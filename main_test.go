package repro

import (
	"os"
	"testing"

	"repro/internal/wire"
)

// TestMain lets this test binary serve as its own proc-sharded worker:
// the transport benchmarks iterate every registered backend, and the
// proc-sharded rows re-execute the running binary to get their worker
// processes.
func TestMain(m *testing.M) {
	wire.MaybeWorker()
	os.Exit(m.Run())
}
