// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (see DESIGN.md for the
// index), plus microbenchmarks of the hot substrate kernels. The macro
// benchmarks run the same code paths as `cmd/bench` at a reduced "bench"
// profile so `go test -bench=. -benchmem` finishes in minutes; use
// `cmd/bench -profile standard` for fuller runs.
package repro

import (
	"context"
	"errors"
	"io"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bitassign"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/synthetic"
	"repro/internal/tensor"
	"repro/pkg/adaqp"
)

// benchProfile is a further-reduced profile so every macro benchmark
// iteration stays in the hundreds of milliseconds.
var benchProfile = experiments.Profile{
	Name: "bench", Scale: 0.08, FeatureCap: 64, Hidden: 32,
	EpochsLong: 10, EpochsShort: 3, Runs: 1, EvalEvery: 5,
}

func benchOptions() experiments.Options {
	return experiments.Options{Profile: benchProfile, Out: io.Discard}
}

func runExperiment(b *testing.B, fn func(experiments.Options) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the Vanilla communication-overhead table.
func BenchmarkTable1(b *testing.B) { runExperiment(b, experiments.Table1) }

// BenchmarkTable2 regenerates the central-comp vs 2-bit-comm comparison.
func BenchmarkTable2(b *testing.B) { runExperiment(b, experiments.Table2) }

// BenchmarkFigure2 regenerates the per-device-pair data-size figure.
func BenchmarkFigure2(b *testing.B) { runExperiment(b, experiments.Figure2) }

// BenchmarkFigure3 regenerates the all-vs-marginal computation figure.
func BenchmarkFigure3(b *testing.B) { runExperiment(b, experiments.Figure3) }

// BenchmarkTable4 regenerates the headline accuracy/throughput comparison.
func BenchmarkTable4(b *testing.B) { runExperiment(b, experiments.Table4) }

// BenchmarkTable5And9 regenerates the wall-clock comparison tables.
func BenchmarkTable5And9(b *testing.B) { runExperiment(b, experiments.Table5And9) }

// BenchmarkTable6 regenerates the uniform-vs-adaptive ablation.
func BenchmarkTable6(b *testing.B) { runExperiment(b, experiments.Table6) }

// BenchmarkTable7 regenerates the 24-device scalability table.
func BenchmarkTable7(b *testing.B) { runExperiment(b, experiments.Table7) }

// BenchmarkFigure9 regenerates the convergence-curve series (Reddit +
// products subset; Figure 12 is the same code over all datasets).
func BenchmarkFigure9(b *testing.B) {
	runExperiment(b, func(o experiments.Options) error {
		return experiments.Figure9And12(o, []string{"products-sim"})
	})
}

// BenchmarkFigure10 regenerates the time-breakdown figure.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, experiments.Figure10) }

// BenchmarkFigure11 regenerates the sensitivity sweeps.
func BenchmarkFigure11(b *testing.B) { runExperiment(b, experiments.Figure11) }

// ---- substrate microbenchmarks ----

func BenchmarkMatMul256(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(1024, 256)
	w := tensor.New(256, 256)
	x.FillUniform(rng, -1, 1)
	w.FillUniform(rng, -1, 1)
	out := tensor.New(1024, 256)
	b.SetBytes(int64(4 * 1024 * 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, w)
	}
}

func BenchmarkSpMM(b *testing.B) {
	ds := synthetic.MustLoad("products-sim", 0.25)
	g := ds.Graph.WithSelfLoops()
	g.NormalizeWeights(graph.NormSym)
	x := tensor.New(g.N, 64)
	x.FillUniform(tensor.NewRNG(1), -1, 1)
	out := tensor.New(g.N, 64)
	b.SetBytes(int64(8 * g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SpMM(out, x)
	}
}

func BenchmarkQuantize2Bit(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(1000, 256)
	x.FillUniform(rng, -1, 1)
	b.SetBytes(int64(4 * 1000 * 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.QuantizeRows(x, nil, quant.B2, rng)
	}
}

func BenchmarkDequantize2Bit(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(1000, 256)
	x.FillUniform(rng, -1, 1)
	stream := quant.QuantizeRows(x, nil, quant.B2, rng)
	dst := tensor.New(1000, 256)
	b.SetBytes(int64(4 * 1000 * 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := quant.DequantizeRows(stream, dst, nil, 1000, quant.B2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitAssignSolve(b *testing.B) {
	rng := tensor.NewRNG(1)
	const pairs = 56 // 8 devices
	var msgs []bitassign.Message
	slots := map[int]int{}
	for i := 0; i < 20000; i++ {
		pair := rng.Intn(pairs)
		msgs = append(msgs, bitassign.Message{
			Pair: pair, Slot: slots[pair], Dim: 256, Beta: rng.Float64() * 10,
		})
		slots[pair]++
	}
	theta := make([]float64, pairs)
	gamma := make([]float64, pairs)
	for i := range theta {
		theta[i] = 8e-11
		gamma[i] = 1e-3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := bitassign.NewProblem(msgs, 100, theta, gamma, 0.5)
		p.Solve()
	}
}

func BenchmarkLDGPartition(b *testing.B) {
	ds := synthetic.MustLoad("products-sim", 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Partition(ds.Graph, 8, partition.LDG)
	}
}

// benchEngine builds a tiny-graph Engine through the public API; the
// deployment is cached across iterations, so the benchmarks measure the
// training loop, not partitioning.
func benchEngine(b *testing.B, epochs int, opts ...adaqp.Option) *adaqp.Engine {
	b.Helper()
	ds := adaqp.MustLoadDataset("tiny", 1)
	base := []adaqp.Option{
		adaqp.WithParts(4), adaqp.WithHidden(32),
		adaqp.WithEpochs(epochs), adaqp.WithEvalEvery(0),
	}
	eng, err := adaqp.New(ds, append(base, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	eng.Deployment() // partition outside the timed loop
	return eng
}

func BenchmarkEpochVanilla(b *testing.B) {
	eng := benchEngine(b, 1, adaqp.WithMethod(adaqp.Vanilla))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpochAdaQP(b *testing.B) {
	// Two epochs: bootstrap + one quantized epoch.
	eng := benchEngine(b, 2, adaqp.WithMethod(adaqp.AdaQP))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochTransports measures one training epoch per registered
// runtime backend through the Engine API — the per-backend cost of the
// transport seam itself — plus the sharded-async backend with a bounded
// worker pool and a relaxed staleness bound (its async fast path), and a
// SANCUS blocking/overlap pair demonstrating the split-phase schedule.
// Every sub-benchmark reports the run's simulated wall-clock as
// sim-wallclock-sec; benchdiff's -wallclock-threshold and -wallclock-less
// gates consume it (CI asserts the overlap variant's simulated epoch is
// shorter than the blocking one's).
func BenchmarkEpochTransports(b *testing.B) {
	run := func(b *testing.B, opts ...adaqp.Option) {
		b.Helper()
		eng := benchEngine(b, 2, opts...)
		b.ResetTimer()
		var wall adaqp.Seconds
		for i := 0; i < b.N; i++ {
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			wall = res.WallClock
		}
		b.ReportMetric(float64(wall), "sim-wallclock-sec")
	}
	for _, tr := range adaqp.Transports() {
		b.Run(tr, func(b *testing.B) { run(b, adaqp.WithTransport(adaqp.TransportSpec{Name: tr})) })
	}
	b.Run("sharded-async-stale8", func(b *testing.B) {
		run(b, adaqp.WithTransport(adaqp.TransportSpec{
			Name: adaqp.TransportShardedAsync, Workers: 2, Staleness: 8,
		}))
	})
	// The overlap pair: same SANCUS job, blocking vs split-phase schedule.
	// Fixed-seed losses are bit-identical; sim-wallclock-sec must drop.
	b.Run("sancus-blocking", func(b *testing.B) {
		run(b, adaqp.WithMethod(adaqp.SANCUS))
	})
	b.Run("sancus-sharded-overlap", func(b *testing.B) {
		run(b, adaqp.WithMethod(adaqp.SANCUS),
			adaqp.WithTransport(adaqp.TransportSpec{
				Name: adaqp.TransportShardedAsync, Workers: 2, Staleness: 8, Overlap: true,
			}))
	})
}

// BenchmarkEpochChaos measures what deterministic fault injection costs a
// training run: the same 4-epoch job fault-free and under each fault
// family (straggler slowdowns, transient retries, crash + checkpoint
// recovery). Faults charge simulated time, not real time, so the gap over
// the clean sub-benchmark is the real-time price of the fault wrapper and
// the crash path's checkpoint/restore/replay — the number the chaos gate
// keeps bounded.
func BenchmarkEpochChaos(b *testing.B) {
	cases := []struct {
		name string
		spec adaqp.FaultSpec
	}{
		{"clean", adaqp.FaultSpec{}},
		{"stragglers", adaqp.FaultSpec{Seed: 3, Stragglers: 2, SlowFactor: 3, LinkFactor: 4}},
		{"transient", adaqp.FaultSpec{Seed: 9, FailRate: 0.3, MaxRetries: 2, Backoff: 0.01}},
		{"crash", adaqp.FaultSpec{Seed: 5, CrashEpoch: 2, RestartPenalty: 5}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			opts := []adaqp.Option{adaqp.WithMethod(adaqp.Vanilla)}
			if tc.spec.Enabled() {
				opts = append(opts, adaqp.WithFaultPlan(tc.spec))
			}
			eng := benchEngine(b, 4, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerThroughput measures the serving layer: 120 small
// fixed-seed sessions submitted by 10 concurrent clients (with back-off on
// queue-full rejections) through a 4-worker Scheduler. Beyond ns/op (the
// benchdiff-gated trajectory), it reports sessions/s and the p50/p99
// completion latency — the capacity numbers the ROADMAP's serving
// direction is judged by.
func BenchmarkSchedulerThroughput(b *testing.B) {
	const (
		clients       = 10
		jobsPerClient = 12 // 120 sessions per iteration
	)
	ds := adaqp.MustLoadDataset("tiny", 0.25)
	for i := 0; i < b.N; i++ {
		sched, err := adaqp.NewScheduler(
			adaqp.WithMaxConcurrentSessions(4),
			adaqp.WithQueueDepth(16),
			adaqp.WithRetryAfter(time.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		var (
			mu        sync.Mutex
			latencies []time.Duration
		)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				for j := 0; j < jobsPerClient; j++ {
					submitted := time.Now()
					for {
						h, err := sched.Submit(ds,
							adaqp.WithParts(2), adaqp.WithMethod(adaqp.Vanilla),
							adaqp.WithEpochs(1), adaqp.WithHidden(8), adaqp.WithEvalEvery(0),
							adaqp.WithSeed(uint64(client*jobsPerClient+j+1)))
						if errors.Is(err, adaqp.ErrQueueFull) {
							time.Sleep(sched.RetryAfter())
							continue
						}
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := h.Wait(context.Background()); err != nil {
							b.Error(err)
							return
						}
						break
					}
					mu.Lock()
					latencies = append(latencies, time.Since(submitted))
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := sched.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		if n := int64(clients * jobsPerClient); sched.Counters().Completed != n {
			b.Fatalf("completed %d sessions, want %d", sched.Counters().Completed, n)
		}
		sort.Slice(latencies, func(x, y int) bool { return latencies[x] < latencies[y] })
		b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "sessions/s")
		b.ReportMetric(float64(latencies[len(latencies)/2].Microseconds())/1e3, "p50-ms")
		b.ReportMetric(float64(latencies[(len(latencies)-1)*99/100].Microseconds())/1e3, "p99-ms")
	}
}

// BenchmarkEpochCodecs measures one training epoch per registered codec
// through the Engine API — the per-scheme cost of the codec seam itself.
func BenchmarkEpochCodecs(b *testing.B) {
	for _, codec := range adaqp.Codecs() {
		b.Run(codec, func(b *testing.B) {
			eng := benchEngine(b, 2, adaqp.WithCodec(adaqp.CodecSpec{Name: codec}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
