// Command benchdiff converts `go test -bench` output into the repo's
// BENCH_N.json schema and gates CI on ns/op regressions against a
// committed baseline.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem | tee bench.txt
//	go run ./cmd/benchdiff -input bench.txt -out BENCH_4.json \
//	    -baseline BENCH_1.json -threshold 2.5
//
// The tool exits non-zero when any benchmark present in both files slowed
// down by more than the threshold factor, or when a baseline benchmark
// disappeared (pass -allow-missing to tolerate renames). Single-iteration
// benchtime=1x timings are coarse, so the threshold guards the trajectory,
// not the noise floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// benchEntry is one benchmark's measurements, matching the BENCH_N.json
// schema introduced with BENCH_1.json.
type benchEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// benchFile is the BENCH_N.json document.
type benchFile struct {
	Note       string                `json:"note"`
	Go         string                `json:"go"`
	Goos       string                `json:"goos"`
	Goarch     string                `json:"goarch"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
// "BenchmarkSpMM-8   1   2651570 ns/op   592 B/op   18 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		input        = flag.String("input", "-", "benchmark text output to parse (- = stdin)")
		out          = flag.String("out", "", "write the parsed results as BENCH_N.json to this path")
		baseline     = flag.String("baseline", "", "baseline BENCH_N.json to compare against")
		threshold    = flag.Float64("threshold", 2.5, "fail when new ns/op exceeds baseline by this factor")
		allowMissing = flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the new run")
		note         = flag.String("note", "", "note field for the emitted JSON")
	)
	flag.Parse()

	entries, err := parseBench(*input)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark results found in %s", *input))
	}
	if *out != "" {
		doc := benchFile{
			Note:       *note,
			Go:         runtime.Version(),
			Goos:       runtime.GOOS,
			Goarch:     runtime.GOARCH,
			Benchmarks: entries,
		}
		if doc.Note == "" {
			doc.Note = fmt.Sprintf("Benchmark run (%d benchmarks, benchdiff). Single-iteration timings: coarse, for trajectory only.", len(entries))
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(entries), *out)
	}
	if *baseline == "" {
		return
	}
	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	if failed := compare(base.Benchmarks, entries, *threshold, *allowMissing); failed {
		os.Exit(1)
	}
}

func parseBench(path string) (map[string]benchEntry, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	entries := map[string]benchEntry{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		e := benchEntry{NsPerOp: int64(ns)}
		if m[3] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		entries[m[1]] = e
	}
	return entries, nil
}

func readBaseline(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// compare prints a ratio table and returns true when the gate should fail.
func compare(base, cur map[string]benchEntry, threshold float64, allowMissing bool) bool {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var regressions, missing []string
	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "baseline ns", "current ns", "ratio")
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			missing = append(missing, n)
			fmt.Printf("%-44s %14d %14s %8s\n", n, b.NsPerOp, "MISSING", "-")
			continue
		}
		ratio := float64(c.NsPerOp) / float64(b.NsPerOp)
		mark := ""
		if ratio > threshold {
			regressions = append(regressions, n)
			mark = "  << REGRESSION"
		}
		fmt.Printf("%-44s %14d %14d %7.2fx%s\n", n, b.NsPerOp, c.NsPerOp, ratio, mark)
	}
	var added []string
	for n := range cur {
		if _, ok := base[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)
	for _, n := range added {
		fmt.Printf("%-44s %14s %14d %8s\n", n, "(new)", cur[n].NsPerOp, "-")
	}
	failed := false
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past %.2fx: %v\n", len(regressions), threshold, regressions)
		failed = true
	}
	if len(missing) > 0 {
		if allowMissing {
			fmt.Fprintf(os.Stderr, "benchdiff: ignoring %d missing baseline benchmark(s): %v\n", len(missing), missing)
		} else {
			fmt.Fprintf(os.Stderr, "benchdiff: %d baseline benchmark(s) missing from the new run: %v\n", len(missing), missing)
			failed = true
		}
	}
	return failed
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
