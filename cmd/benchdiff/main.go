// Command benchdiff converts `go test -bench` output into the repo's
// BENCH_N.json schema and gates CI on regressions against a committed
// baseline.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem | tee bench.txt
//	go run ./cmd/benchdiff -input bench.txt -out BENCH_4.json \
//	    -baseline BENCH_1.json -threshold 2.5 \
//	    -alloc-threshold 1.3 -bytes-threshold 2
//
// The tool exits non-zero when any benchmark present in both files slowed
// down by more than the -threshold factor in ns/op, grew past the
// -alloc-threshold factor in allocs/op, the -bytes-threshold factor in
// B/op or the -wallclock-threshold factor in the sim-wallclock-sec custom
// metric (0 disables each optional gate), or when a baseline benchmark
// disappeared (pass -allow-missing to tolerate renames). Single-iteration
// benchtime=1x timings are coarse, so the ns threshold guards the
// trajectory, not the noise floor; allocation counts and the simulated
// wall-clock are deterministic, so their thresholds can sit much tighter.
//
// -wallclock-less "A<B" asserts, within the new run alone (no baseline
// needed), that benchmark A reported a positive sim-wallclock-sec strictly
// below benchmark B's — how CI pins the overlap schedule's win over the
// blocking backend.
//
// -summary appends the comparison as a markdown table to the given file
// (pass "$GITHUB_STEP_SUMMARY" in CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchEntry is one benchmark's measurements, matching the BENCH_N.json
// schema introduced with BENCH_1.json.
type benchEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// SimWallClockSec is the simulated epoch wall-clock reported by
	// benchmarks via b.ReportMetric(..., "sim-wallclock-sec"); zero when a
	// benchmark doesn't report it.
	SimWallClockSec float64 `json:"sim_wallclock_sec,omitempty"`
}

// benchFile is the BENCH_N.json document.
type benchFile struct {
	Note       string                `json:"note"`
	Go         string                `json:"go"`
	Goos       string                `json:"goos"`
	Goarch     string                `json:"goarch"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

func main() {
	var (
		input          = flag.String("input", "-", "benchmark text output to parse (- = stdin)")
		out            = flag.String("out", "", "write the parsed results as BENCH_N.json to this path")
		baseline       = flag.String("baseline", "", "baseline BENCH_N.json to compare against")
		threshold      = flag.Float64("threshold", 2.5, "fail when new ns/op exceeds baseline by this factor")
		allocThreshold = flag.Float64("alloc-threshold", 0, "fail when new allocs/op exceeds baseline by this factor (0 disables)")
		bytesThreshold = flag.Float64("bytes-threshold", 0, "fail when new B/op exceeds baseline by this factor (0 disables)")
		wallThreshold  = flag.Float64("wallclock-threshold", 0, "fail when new sim-wallclock-sec exceeds baseline by this factor (0 disables)")
		wallLess       = flag.String("wallclock-less", "", `intra-run assertion "A<B": fail unless benchmark A's sim-wallclock-sec is positive and strictly below B's`)
		summary        = flag.String("summary", "", "append the comparison as a markdown table to this file")
		allowMissing   = flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the new run")
		note           = flag.String("note", "", "note field for the emitted JSON")
	)
	flag.Parse()

	entries, err := parseBench(*input)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark results found in %s", *input))
	}
	if *out != "" {
		doc := benchFile{
			Note:       *note,
			Go:         runtime.Version(),
			Goos:       runtime.GOOS,
			Goarch:     runtime.GOARCH,
			Benchmarks: entries,
		}
		if doc.Note == "" {
			doc.Note = fmt.Sprintf("Benchmark run (%d benchmarks, benchdiff). Single-iteration timings: coarse, for trajectory only.", len(entries))
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(entries), *out)
	}
	if *wallLess != "" {
		if err := checkWallclockLess(entries, *wallLess); err != nil {
			fatal(err)
		}
	}
	if *baseline == "" {
		return
	}
	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	gates := []gate{{"ns/op", func(e benchEntry) float64 { return float64(e.NsPerOp) }, *threshold}}
	if *allocThreshold > 0 {
		gates = append(gates, gate{"allocs/op", func(e benchEntry) float64 { return float64(e.AllocsPerOp) }, *allocThreshold})
	}
	if *bytesThreshold > 0 {
		gates = append(gates, gate{"B/op", func(e benchEntry) float64 { return float64(e.BytesPerOp) }, *bytesThreshold})
	}
	if *wallThreshold > 0 {
		gates = append(gates, gate{"sim-wallclock-sec", func(e benchEntry) float64 { return e.SimWallClockSec }, *wallThreshold})
	}
	failed := compare(base.Benchmarks, entries, gates, *allowMissing)
	if *summary != "" {
		if err := writeSummary(*summary, *baseline, base.Benchmarks, entries, gates); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// gate is one regression check: a metric extractor plus the factor past
// which CI fails.
type gate struct {
	metric    string
	get       func(benchEntry) float64
	threshold float64
}

// ratio returns cur/base, treating a zero baseline as no regression
// (a metric that was zero and grew is flagged as +Inf only when the
// threshold is enabled and cur is nonzero).
func (g gate) ratio(b, c benchEntry) float64 {
	bv, cv := g.get(b), g.get(c)
	if bv == 0 {
		if cv == 0 {
			return 1
		}
		return cv // vs zero: treat the raw count as the factor
	}
	return cv / bv
}

// checkWallclockLess enforces an "A<B" sim-wallclock-sec ordering within
// one run: both benchmarks must be present and have reported the metric,
// and A's value must be strictly below B's.
func checkWallclockLess(entries map[string]benchEntry, expr string) error {
	a, b, ok := strings.Cut(expr, "<")
	a, b = strings.TrimSpace(a), strings.TrimSpace(b)
	if !ok || a == "" || b == "" {
		return fmt.Errorf(`-wallclock-less wants "A<B", got %q`, expr)
	}
	ea, oka := entries[a]
	eb, okb := entries[b]
	if !oka || !okb {
		return fmt.Errorf("-wallclock-less %q: benchmark(s) missing from the run (have %d entries)", expr, len(entries))
	}
	if ea.SimWallClockSec <= 0 || eb.SimWallClockSec <= 0 {
		return fmt.Errorf("-wallclock-less %q: sim-wallclock-sec not reported (%v vs %v)", expr, ea.SimWallClockSec, eb.SimWallClockSec)
	}
	if ea.SimWallClockSec >= eb.SimWallClockSec {
		return fmt.Errorf("-wallclock-less %q failed: %v >= %v", expr, ea.SimWallClockSec, eb.SimWallClockSec)
	}
	fmt.Printf("wallclock-less ok: %s (%v) < %s (%v)\n", a, ea.SimWallClockSec, b, eb.SimWallClockSec)
	return nil
}

// parseBench tokenizes `go test -bench` result lines as (value, unit)
// field pairs after the name and iteration count — e.g.
//
//	BenchmarkSpMM-8  1  2651570 ns/op  592 B/op  18 allocs/op
//	BenchmarkEpoch-8 1  123456 ns/op  0.45 sim-wallclock-sec  592 B/op ...
//
// so custom b.ReportMetric units interleaved between the standard ones
// (Go prints them ordered by unit string) don't desynchronize parsing.
func parseBench(path string) (map[string]benchEntry, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	entries := map[string]benchEntry{}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkX ... --- FAIL")
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		var e benchEntry
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp, sawNs = int64(v), true
			case "B/op":
				e.BytesPerOp = int64(v)
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			case "sim-wallclock-sec":
				e.SimWallClockSec = v
			}
		}
		if sawNs {
			entries[name] = e
		}
	}
	return entries, nil
}

func readBaseline(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// compare prints a ratio table covering every enabled gate and returns
// true when any gate should fail.
func compare(base, cur map[string]benchEntry, gates []gate, allowMissing bool) bool {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var missing []string
	regressions := map[string][]string{} // metric -> benchmark names
	fmt.Printf("%-44s %12s %12s %12s %12s %8s\n",
		"benchmark", "base ns", "cur ns", "base allocs", "cur allocs", "worst")
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			missing = append(missing, n)
			fmt.Printf("%-44s %12d %12s\n", n, b.NsPerOp, "MISSING")
			continue
		}
		mark, worst := "", 0.0
		for _, g := range gates {
			r := g.ratio(b, c)
			if r > worst {
				worst = r
			}
			if r > g.threshold {
				regressions[g.metric] = append(regressions[g.metric], n)
				mark = "  << REGRESSION (" + g.metric + ")"
			}
		}
		fmt.Printf("%-44s %12d %12d %12d %12d %7.2fx%s\n",
			n, b.NsPerOp, c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp, worst, mark)
	}
	var added []string
	for n := range cur {
		if _, ok := base[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)
	for _, n := range added {
		fmt.Printf("%-44s %12s %12d %12s %12d\n", n, "(new)", cur[n].NsPerOp, "-", cur[n].AllocsPerOp)
	}
	failed := false
	for _, g := range gates {
		if rs := regressions[g.metric]; len(rs) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past %.2fx %s: %v\n",
				len(rs), g.threshold, g.metric, rs)
			failed = true
		}
	}
	if len(missing) > 0 {
		if allowMissing {
			fmt.Fprintf(os.Stderr, "benchdiff: ignoring %d missing baseline benchmark(s): %v\n", len(missing), missing)
		} else {
			fmt.Fprintf(os.Stderr, "benchdiff: %d baseline benchmark(s) missing from the new run: %v\n", len(missing), missing)
			failed = true
		}
	}
	return failed
}

// writeSummary appends a markdown comparison table (ns, B/op and
// allocs/op deltas per benchmark) to path — in CI, the job's
// $GITHUB_STEP_SUMMARY file.
func writeSummary(path, baselineName string, base, cur map[string]benchEntry, gates []gate) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(f, "### Benchmark delta vs %s\n\n", baselineName)
	fmt.Fprintln(f, "| benchmark | ns/op | B/op | allocs/op | status |")
	fmt.Fprintln(f, "|---|---|---|---|---|")
	cell := func(b, c int64) string {
		if b == 0 {
			return fmt.Sprintf("%d → %d", b, c)
		}
		return fmt.Sprintf("%d → %d (%.2fx)", b, c, float64(c)/float64(b))
	}
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			fmt.Fprintf(f, "| %s | — | — | — | missing |\n", n)
			continue
		}
		status := "ok"
		for _, g := range gates {
			if g.ratio(b, c) > g.threshold {
				status = "**regressed (" + g.metric + ")**"
				break
			}
		}
		fmt.Fprintf(f, "| %s | %s | %s | %s | %s |\n",
			n, cell(b.NsPerOp, c.NsPerOp), cell(b.BytesPerOp, c.BytesPerOp), cell(b.AllocsPerOp, c.AllocsPerOp), status)
	}
	var added []string
	for n := range cur {
		if _, ok := base[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)
	for _, n := range added {
		c := cur[n]
		fmt.Fprintf(f, "| %s | %d | %d | %d | new |\n", n, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
	}
	fmt.Fprintln(f)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
