// Command partinfo reports partition quality statistics — edge cut,
// balance, remote-neighbor ratio and the central/marginal decomposition —
// for any dataset, device count and partitioner, comparing strategies side
// by side (the §2.2 numbers).
//
// Usage:
//
//	partinfo -dataset products-sim -parts 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pkg/adaqp"
)

func main() {
	var (
		dataset = flag.String("dataset", "products-sim", "dataset name: "+strings.Join(adaqp.DatasetNames(), ", "))
		scale   = flag.Float64("scale", 1, "dataset scale factor")
		parts   = flag.Int("parts", 4, "number of partitions")
		model   = flag.String("model", "gcn", "gcn | sage (affects self-loops)")
	)
	flag.Parse()

	ds, err := adaqp.LoadDataset(*dataset, *scale)
	if err != nil {
		fatal(err)
	}
	mk, err := adaqp.ParseModelKind(*model)
	if err != nil {
		fatal(err)
	}
	deploy := func(s adaqp.Strategy) *adaqp.Deployment {
		eng, err := adaqp.New(ds,
			adaqp.WithParts(*parts), adaqp.WithModel(mk), adaqp.WithPartitioner(s))
		if err != nil {
			fatal(err)
		}
		return eng.Deployment()
	}

	fmt.Printf("dataset %v, %d partitions\n\n", ds, *parts)
	fmt.Printf("%-9s %10s %9s %10s %18s %16s\n",
		"Strategy", "EdgeCut", "Cut%", "Imbalance", "RemoteNbrRatio", "MarginalFrac")
	for _, s := range []adaqp.Strategy{adaqp.LDG, adaqp.BlockPartition, adaqp.HashPartition} {
		st := deploy(s).Stats
		fmt.Printf("%-9s %10d %8.2f%% %9.3f %17.2f%% %15.2f%%\n",
			s, st.EdgeCut, 100*float64(st.EdgeCut)/float64(st.TotalEdges),
			st.Imbalance, 100*st.RemoteNeighborAvg, 100*st.MarginalFraction)
	}
	dep := deploy(adaqp.LDG)
	fmt.Printf("\nper-partition (LDG):\n%-6s %8s %8s %10s\n", "part", "local", "halo", "marginal")
	for p := range dep.Locals {
		st := dep.Stats
		fmt.Printf("%-6d %8d %8d %10d\n", p, st.LocalPerPart[p], st.HaloPerPart[p], st.MarginalPerPart[p])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "partinfo: %v\n", err)
	os.Exit(1)
}
