package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"repro/pkg/adaqp"
)

// server is the HTTP/JSON surface over one adaqp.Scheduler. It is
// constructed separately from main so the full API is testable with
// net/http/httptest.
type server struct {
	sched *adaqp.Scheduler

	// chaos, when non-nil, is the daemon-wide default fault plan (-chaos
	// flag): applied to submitted jobs that carry no chaos block of their
	// own, so a whole deployment can be soak-tested without touching
	// clients.
	chaos *adaqp.FaultSpec
}

func newServer(sched *adaqp.Scheduler) *server { return &server{sched: sched} }

// handler routes the daemon's API:
//
//	POST   /jobs            submit a JobSpec          202 | 400 | 429 | 503
//	GET    /jobs            list sessions             200
//	GET    /jobs/{id}       one session's status      200 | 404
//	GET    /jobs/{id}/result  finished session metrics  200 | 404 | 409
//	DELETE /jobs/{id}       cancel, or remove a terminal record  202 | 200 | 404
//	GET    /healthz         liveness (503 once draining)
//	GET    /metrics         Prometheus text format
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.status)
	mux.HandleFunc("GET /jobs/{id}/result", s.result)
	mux.HandleFunc("DELETE /jobs/{id}", s.cancel)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

// jobJSON is one session's status document.
type jobJSON struct {
	ID         string `json:"id"`
	Status     string `json:"status"`
	EpochsDone int    `json:"epochs_done"`
	Submitted  string `json:"submitted_at"`
	Started    string `json:"started_at,omitempty"`
	Finished   string `json:"finished_at,omitempty"`
	Error      string `json:"error,omitempty"`
	Removed    bool   `json:"removed,omitempty"`
}

// resultJSON summarizes a finished run's measurements.
type resultJSON struct {
	ID         string  `json:"id"`
	Dataset    string  `json:"dataset"`
	Model      string  `json:"model"`
	Method     string  `json:"method"`
	Codec      string  `json:"codec"`
	Parts      int     `json:"parts"`
	Epochs     int     `json:"epochs"`
	FinalLoss  float64 `json:"final_loss"`
	FinalVal   float64 `json:"final_val,omitempty"`
	FinalTest  float64 `json:"final_test"`
	WallClock  float64 `json:"wall_clock_s"`
	AssignTime float64 `json:"assign_s"`
	Throughput float64 `json:"throughput_epochs_per_s"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func timeRFC(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func sessionJSON(h *adaqp.SessionHandle) jobJSON {
	sub, start, fin := h.Times()
	j := jobJSON{
		ID:         h.ID(),
		Status:     h.Status().String(),
		EpochsDone: h.EpochsDone(),
		Submitted:  timeRFC(sub),
		Started:    timeRFC(start),
		Finished:   timeRFC(fin),
	}
	if h.Status() == adaqp.SessionFailed || h.Status() == adaqp.SessionCanceled {
		if _, err := h.Result(); err != nil {
			j.Error = err.Error()
		}
	}
	return j
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec adaqp.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if spec.Chaos == nil && s.chaos != nil {
		c := *s.chaos
		spec.Chaos = &c
	}
	h, err := s.sched.SubmitSpec(spec)
	switch {
	case errors.Is(err, adaqp.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterJittered(s.sched.RetryAfter()))
		writeError(w, http.StatusTooManyRequests, "session queue full, retry later")
		return
	case errors.Is(err, adaqp.ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds(s.sched.RetryAfter()))
		writeError(w, http.StatusServiceUnavailable, "scheduler draining, not accepting jobs")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, sessionJSON(h))
}

// retryAfterSeconds renders a Retry-After header value (integral seconds,
// minimum 1 — the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// retryAfterJittered spreads queue-full back-off over [base, 2·base]
// seconds: every client of a full queue gets the same 429 at the same
// moment, and an unjittered hint would march them all back in lockstep to
// collide again.
func retryAfterJittered(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs + rand.IntN(secs+1))
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	sessions := s.sched.Sessions()
	jobs := make([]jobJSON, len(sessions))
	for i, h := range sessions {
		jobs[i] = sessionJSON(h)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*adaqp.SessionHandle, bool) {
	id := r.PathValue("id")
	h, ok := s.sched.Session(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return h, true
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, sessionJSON(h))
	}
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	h, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !h.Status().Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; result not available yet", h.ID(), h.Status())
		return
	}
	res, err := h.Result()
	if err != nil {
		writeError(w, http.StatusConflict, "job %s %s: %v", h.ID(), h.Status(), err)
		return
	}
	out := resultJSON{
		ID:      h.ID(),
		Dataset: res.Dataset, Model: res.Model, Method: res.Method,
		Codec: res.Codec, Parts: res.Parts,
		Epochs:    len(res.Epochs),
		FinalVal:  res.FinalVal,
		FinalTest: res.FinalTest,
		WallClock: float64(res.WallClock), AssignTime: float64(res.AssignTime),
		Throughput: res.Throughput(),
	}
	if n := len(res.Epochs); n > 0 {
		out.FinalLoss = res.Epochs[n-1].Loss
	}
	writeJSON(w, http.StatusOK, out)
}

// cancel handles DELETE /jobs/{id}: a live session gets a cancellation
// request (202, stops between epochs), a terminal one has its record
// removed immediately (200) instead of waiting for retention eviction.
func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	h, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if h.Status().Terminal() {
		doc := sessionJSON(h)
		if known, err := s.sched.Remove(h.ID()); known && err == nil {
			doc.Removed = true
			writeJSON(w, http.StatusOK, doc)
			return
		}
		// Terminal status but the finish is not recorded yet (the worker
		// is mid-bookkeeping) — fall through to the cancel path; a later
		// DELETE can remove the record.
	}
	h.Cancel()
	writeJSON(w, http.StatusAccepted, sessionJSON(h))
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.sched.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// metrics renders the scheduler counters in the Prometheus text
// exposition format (no client library: the format is four line shapes).
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	c := s.sched.Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	write := func(name, kind, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, v)
	}
	write("adaqpd_sessions_submitted_total", "counter", "Sessions admitted into the queue.", c.Submitted)
	write("adaqpd_sessions_started_total", "counter", "Sessions that began training.", c.Started)
	write("adaqpd_sessions_completed_total", "counter", "Sessions that finished successfully.", c.Completed)
	write("adaqpd_sessions_failed_total", "counter", "Sessions that finished with an error.", c.Failed)
	write("adaqpd_sessions_canceled_total", "counter", "Sessions stopped by cancellation.", c.Canceled)
	write("adaqpd_sessions_rejected_total", "counter", "Submissions rejected by admission control.", c.Rejected)
	write("adaqpd_queue_depth", "gauge", "Sessions waiting for a worker slot.", int64(c.QueueDepth))
	write("adaqpd_sessions_running", "gauge", "Sessions currently training.", int64(c.Running))

	f := s.sched.FaultTotals()
	writef := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	write("adaqpd_fault_stragglers_total", "counter", "Straggler devices injected across completed sessions.", int64(f.Stragglers))
	write("adaqpd_fault_retries_total", "counter", "Collective retries after injected transient failures.", f.Retries)
	writef("adaqpd_fault_retry_seconds_total", "Simulated seconds spent on fault retries and backoff.", float64(f.RetryTime))
	write("adaqpd_fault_crashes_total", "counter", "Injected device crashes recovered from checkpoints.", f.Crashes)
	writef("adaqpd_fault_recovery_seconds_total", "Simulated seconds of crash downtime and recovery.", float64(f.RecoveryTime))
	writef("adaqpd_overlap_seconds_total", "Simulated seconds of collective wire time hidden behind compute by split-phase overlap.", float64(s.sched.OverlapTotal()))
}
