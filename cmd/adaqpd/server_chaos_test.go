package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/adaqp"
)

// chaosTinyJob is tinyJob plus an explicit chaos block: one 3× compute
// straggler, transient failures with retries, and a crash at epoch 1.
const chaosTinyJob = `{"dataset":"tiny","scale":0.25,"parts":2,"method":"vanilla","epochs":3,
	"hidden":8,"eval_every":0,"seed":7,
	"chaos":{"seed":3,"stragglers":1,"slow_factor":3,"fail_rate":0.3,"max_retries":2,
	         "backoff_s":0.01,"crash_epoch":1,"restart_penalty_s":10}}`

// TestChaosJobSurfacesFaultMetrics submits a job with a chaos block and
// requires the injected faults to land in the daemon's /metrics.
func TestChaosJobSurfacesFaultMetrics(t *testing.T) {
	ts, _ := testServer(t, adaqp.WithMaxConcurrentSessions(1))
	resp, job := postJob(t, ts, chaosTinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	final := waitTerminal(t, ts, job.ID)
	if final.Status != "done" {
		t.Fatalf("status = %q (error %q), want done", final.Status, final.Error)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"adaqpd_fault_stragglers_total 1",
		"adaqpd_fault_crashes_total 1",
		"adaqpd_fault_recovery_seconds_total 10",
		"# TYPE adaqpd_fault_retries_total counter",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestDefaultChaosAppliesToPlainJobs configures a server-wide default
// fault plan and requires a chaos-less submission to train under it.
func TestDefaultChaosAppliesToPlainJobs(t *testing.T) {
	sched, err := adaqp.NewScheduler(adaqp.WithMaxConcurrentSessions(1))
	if err != nil {
		t.Fatal(err)
	}
	api := newServer(sched)
	api.chaos = &adaqp.FaultSpec{Seed: 3, Stragglers: 1, SlowFactor: 3}
	ts := httptest.NewServer(api.handler())
	t.Cleanup(ts.Close)

	resp, job := postJob(t, ts, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if final := waitTerminal(t, ts, job.ID); final.Status != "done" {
		t.Fatalf("status = %q (error %q), want done", final.Status, final.Error)
	}
	if got := sched.FaultTotals().Stragglers; got != 1 {
		t.Fatalf("fault totals stragglers = %d, want 1 from the default plan", got)
	}
}

// TestDeleteRemovesTerminalRecord checks the terminal DELETE behavior: the
// session's record is removed (200 with removed:true), and a subsequent
// GET is a 404. (Live-session DELETE → 202 cancel is covered by
// TestQueueFullReturns429WithRetryAfter.)
func TestDeleteRemovesTerminalRecord(t *testing.T) {
	ts, _ := testServer(t, adaqp.WithMaxConcurrentSessions(1))
	_, job := postJob(t, ts, tinyJob)
	waitTerminal(t, ts, job.ID)
	waitFinishTimestamp(t, ts, job.ID)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE terminal job = %d (%s), want 200", resp.StatusCode, body)
	}
	var doc jobJSON
	if err := json.Unmarshal(body, &doc); err != nil || !doc.Removed {
		t.Fatalf("DELETE response = %s, want removed:true", body)
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+job.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET removed job = %d, want 404", resp.StatusCode)
	}
}

// waitFinishTimestamp waits for the finish timestamp to land in the status
// document: Remove requires the recorded finish, which trails the status
// flip by the worker's bookkeeping.
func waitFinishTimestamp(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		var job jobJSON
		getJSON(t, ts.URL+"/jobs/"+id, &job)
		if job.Finished != "" {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s never recorded a finish timestamp", id)
		case <-time.After(time.Millisecond):
		}
	}
}
