// Command adaqpd serves adaqp training sessions over HTTP/JSON from one
// long-lived process: jobs are submitted as JobSpec documents, scheduled
// onto a bounded worker pool with admission control, and observable
// through status polling and a Prometheus-style metrics endpoint.
//
// Usage:
//
//	adaqpd -addr :8080 -max-concurrent 4 -queue-depth 32
//
// API (JSON unless noted):
//
//	POST   /jobs             submit a job spec → 202 {id, status}
//	                         429 + Retry-After when the queue is full,
//	                         503 once draining, 400 on an invalid spec
//	GET    /jobs             list all sessions
//	GET    /jobs/{id}        one session's status and epoch progress
//	GET    /jobs/{id}/result finished session's metrics (409 until terminal)
//	DELETE /jobs/{id}        cancel (stops between epochs) → 202
//	GET    /healthz          text liveness probe (503 once draining)
//	GET    /metrics          Prometheus text format counters
//
// Example:
//
//	curl -s localhost:8080/jobs -d '{"dataset":"tiny","method":"adaqp","epochs":60}'
//	curl -s localhost:8080/jobs/job-1
//	curl -s localhost:8080/jobs/job-1/result
//
// On SIGINT/SIGTERM the daemon drains: it stops accepting jobs, finishes
// queued and running sessions (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/wire"
	"repro/pkg/adaqp"
)

func main() {
	// Jobs running the proc-sharded transport re-execute this binary as
	// their worker processes; in that mode the process never reaches flag
	// parsing.
	wire.MaybeWorker()
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxConc      = flag.Int("max-concurrent", 2, "training sessions executing simultaneously")
		queueDepth   = flag.Int("queue-depth", 16, "admitted sessions that may wait for a worker")
		retryAfter   = flag.Duration("retry-after", time.Second, "base back-off hint on queue-full rejections (jittered per response)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight sessions on shutdown")
		retain       = flag.Int("retain-sessions", 256, "terminal session records kept retrievable (negative = unlimited)")
		retainFor    = flag.Duration("retain-for", time.Hour, "max age of terminal session records (0 = no TTL)")
		chaosJSON    = flag.String("chaos", "", `default fault plan as FaultSpec JSON, e.g. '{"stragglers":1,"slow_factor":4}'; applied to jobs without a chaos block`)
	)
	flag.Parse()

	sched, err := adaqp.NewScheduler(
		adaqp.WithMaxConcurrentSessions(*maxConc),
		adaqp.WithQueueDepth(*queueDepth),
		adaqp.WithRetryAfter(*retryAfter),
		adaqp.WithSessionRetention(*retain, *retainFor),
	)
	if err != nil {
		fatal(err)
	}

	api := newServer(sched)
	if *chaosJSON != "" {
		var spec adaqp.FaultSpec
		dec := json.NewDecoder(strings.NewReader(*chaosJSON))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fatal(fmt.Errorf("-chaos: %w", err))
		}
		if err := spec.Validate(); err != nil {
			fatal(fmt.Errorf("-chaos: %w", err))
		}
		api.chaos = &spec
	}

	srv := &http.Server{Addr: *addr, Handler: api.handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("adaqpd listening on %s (workers %d, queue %d)\n", *addr, *maxConc, *queueDepth)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: finish queued + running sessions, then stop serving.
	// The scheduler drains first so status endpoints stay reachable while
	// sessions wind down.
	fmt.Println("adaqpd draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sched.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "adaqpd: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "adaqpd: shutdown: %v\n", err)
	}
	c := sched.Counters()
	fmt.Printf("adaqpd done: %d completed, %d failed, %d canceled, %d rejected\n",
		c.Completed, c.Failed, c.Canceled, c.Rejected)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adaqpd: %v\n", err)
	os.Exit(1)
}
