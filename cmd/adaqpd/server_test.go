package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/pkg/adaqp"
)

func testServer(t *testing.T, opts ...adaqp.SchedulerOption) (*httptest.Server, *adaqp.Scheduler) {
	t.Helper()
	sched, err := adaqp.NewScheduler(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(sched).handler())
	t.Cleanup(ts.Close)
	return ts, sched
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (*http.Response, jobJSON) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job jobJSON
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatalf("submit response %q: %v", body, err)
		}
	}
	return resp, job
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("response %q: %v", body, err)
		}
	}
	return resp
}

// tinyJob is a fast fixed-seed job spec (a few ms of training).
const tinyJob = `{"dataset":"tiny","scale":0.25,"parts":2,"method":"vanilla","epochs":2,"hidden":8,"eval_every":0}`

// longJob cannot finish within the test unless canceled.
const longJob = `{"dataset":"tiny","scale":0.25,"parts":2,"method":"vanilla","epochs":100000,"hidden":8,"eval_every":0}`

func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		var job jobJSON
		resp := getJSON(t, ts.URL+"/jobs/"+id, &job)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, resp.StatusCode)
		}
		switch job.Status {
		case "done", "failed", "canceled":
			return job
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck at %q", id, job.Status)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestSubmitPollResultRoundTrip(t *testing.T) {
	ts, _ := testServer(t, adaqp.WithMaxConcurrentSessions(2))

	resp, job := postJob(t, ts, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if job.ID == "" || job.Status != "queued" {
		t.Fatalf("submit response = %+v", job)
	}

	final := waitTerminal(t, ts, job.ID)
	if final.Status != "done" {
		t.Fatalf("final status = %q (error %q), want done", final.Status, final.Error)
	}
	if final.EpochsDone != 2 {
		t.Fatalf("epochs_done = %d, want 2", final.EpochsDone)
	}
	if final.Submitted == "" || final.Started == "" || final.Finished == "" {
		t.Fatalf("missing timestamps: %+v", final)
	}

	var res resultJSON
	if resp := getJSON(t, ts.URL+"/jobs/"+job.ID+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d, want 200", resp.StatusCode)
	}
	if res.Dataset != "tiny" || res.Method != "Vanilla" || res.Codec != "fp32" ||
		res.Parts != 2 || res.Epochs != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.FinalLoss == 0 || res.WallClock == 0 {
		t.Fatalf("result missing measurements: %+v", res)
	}

	// The job list includes it.
	var list struct {
		Jobs []jobJSON `json:"jobs"`
	}
	if resp := getJSON(t, ts.URL+"/jobs", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _ := testServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed JSON", `{"dataset":`},
		{"unknown field", `{"dataset":"tiny","no_such_field":1}`},
		{"unknown dataset", `{"dataset":"no-such"}`},
		{"unknown codec", `{"dataset":"tiny","codec":"no-such"}`},
		{"unknown transport", `{"dataset":"tiny","transport":"no-such"}`},
		{"unknown method", `{"dataset":"tiny","method":"no-such"}`},
		{"missing dataset", `{}`},
		{"invalid epochs", `{"dataset":"tiny","epochs":-3}`},
	} {
		resp, _ := postJob(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestQueueFullReturns429WithRetryAfter(t *testing.T) {
	ts, _ := testServer(t,
		adaqp.WithMaxConcurrentSessions(1),
		adaqp.WithQueueDepth(1),
		adaqp.WithRetryAfter(3*time.Second))

	// Occupy the only worker slot (wait for the job to actually start so
	// the queue is provably empty again), then fill the queue.
	_, running := postJob(t, ts, longJob)
	waitRunning(t, ts, running.ID)
	resp, queued := postJob(t, ts, longJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", resp.StatusCode)
	}

	resp, _ = postJob(t, ts, longJob)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	// The hint is jittered over [base, 2·base] so herds of rejected
	// clients don't retry in lockstep.
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 3 || secs > 6 {
		t.Fatalf("Retry-After = %q, want an integer in [3, 6]", resp.Header.Get("Retry-After"))
	}

	// DELETE both; the canceled sessions report the typed cancellation.
	for _, id := range []string{running.ID, queued.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("DELETE %s = %d, want 202", id, resp.StatusCode)
		}
		final := waitTerminal(t, ts, id)
		if final.Status != "canceled" {
			t.Fatalf("job %s final status = %q, want canceled", id, final.Status)
		}
	}

	// A canceled job has no result document.
	if resp := getJSON(t, ts.URL+"/jobs/"+running.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job = %d, want 409", resp.StatusCode)
	}
}

func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		var job jobJSON
		getJSON(t, ts.URL+"/jobs/"+id, &job)
		if job.Status == "running" && job.EpochsDone >= 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s never started (status %q)", id, job.Status)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	ts, _ := testServer(t)
	if resp := getJSON(t, ts.URL+"/jobs/job-999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status of unknown job = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/jobs/job-999/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("result of unknown job = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/job-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestResultBeforeTerminalIs409(t *testing.T) {
	ts, _ := testServer(t, adaqp.WithMaxConcurrentSessions(1))
	_, job := postJob(t, ts, longJob)
	if resp := getJSON(t, ts.URL+"/jobs/"+job.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job = %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitTerminal(t, ts, job.ID)
}

func TestHealthzAndMetricsAndDrain(t *testing.T) {
	ts, sched := testServer(t, adaqp.WithMaxConcurrentSessions(2))

	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	_, job := postJob(t, ts, tinyJob)
	waitTerminal(t, ts, job.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"adaqpd_sessions_submitted_total 1",
		"adaqpd_sessions_started_total 1",
		"adaqpd_sessions_completed_total 1",
		"adaqpd_sessions_rejected_total 0",
		"adaqpd_queue_depth 0",
		"adaqpd_sessions_running 0",
		"# TYPE adaqpd_queue_depth gauge",
		"# TYPE adaqpd_sessions_completed_total counter",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}

	// An overlap-scheduled SANCUS job must surface its hidden wire time in
	// the monotonic overlap counter and in /metrics.
	overlapJob := `{"dataset":"tiny","scale":0.25,"parts":2,"method":"sancus","epochs":2,
		"hidden":8,"eval_every":0,"transport":"sharded-async","staleness":4,"overlap":true}`
	_, job = postJob(t, ts, overlapJob)
	if final := waitTerminal(t, ts, job.ID); final.Status != "done" {
		t.Fatalf("overlap job status = %q (error %q), want done", final.Status, final.Error)
	}
	if got := sched.OverlapTotal(); got <= 0 {
		t.Fatalf("OverlapTotal = %v after an overlap-scheduled session, want > 0", got)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("adaqpd_overlap_seconds_total")) ||
		bytes.Contains(body, []byte("adaqpd_overlap_seconds_total 0\n")) {
		t.Errorf("metrics output missing a positive adaqpd_overlap_seconds_total:\n%s", body)
	}

	// Draining flips healthz to 503 and submissions to 503.
	if err := sched.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	resp2, _ := postJob(t, ts, tinyJob)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection missing Retry-After")
	}
}

// TestSpecFieldsReachTraining submits a spec exercising non-default codec
// and transport fields and verifies they reach the run via the result doc.
func TestSpecFieldsReachTraining(t *testing.T) {
	ts, _ := testServer(t, adaqp.WithMaxConcurrentSessions(1))
	spec := `{"dataset":"tiny","scale":0.25,"parts":2,"method":"vanilla","codec":"ef-quant",
	          "bits":4,"transport":"sharded-async","workers":2,"epochs":2,"hidden":8,"eval_every":0,"seed":3}`
	resp, job := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	final := waitTerminal(t, ts, job.ID)
	if final.Status != "done" {
		t.Fatalf("status = %q (error %q), want done", final.Status, final.Error)
	}
	var res resultJSON
	getJSON(t, ts.URL+"/jobs/"+job.ID+"/result", &res)
	if res.Codec != "ef-quant" {
		t.Fatalf("codec = %q, want ef-quant (spec field lost?)", res.Codec)
	}
}
