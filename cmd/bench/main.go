// Command bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bench -all                      # every experiment, quick profile
//	bench -table 1,2 -figure 9      # selected experiments
//	bench -profile standard -table 4
//
// Profiles trade fidelity for runtime: quick (default, minutes),
// standard, full (hours, paper-scale synthetic datasets).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		tables  = flag.String("table", "", "comma-separated table ids: 1,2,4,5,6,7,9")
		figures = flag.String("figure", "", "comma-separated figure ids: 2,3,9,10,11,12")
		all     = flag.Bool("all", false, "run every experiment")
		profile = flag.String("profile", "quick", "quick | standard | full")
	)
	flag.Parse()

	var p experiments.Profile
	switch *profile {
	case "quick":
		p = experiments.Quick
	case "standard":
		p = experiments.Standard
	case "full":
		p = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	opt := experiments.Options{Profile: p, Out: os.Stdout}

	want := map[string]bool{}
	for _, id := range strings.Split(*tables, ",") {
		if id != "" {
			want["t"+id] = true
		}
	}
	for _, id := range strings.Split(*figures, ",") {
		if id != "" {
			want["f"+id] = true
		}
	}
	if *all {
		for _, id := range []string{"t1", "t2", "t4", "t5", "t6", "t7", "t9", "f2", "f3", "f9", "f10", "f11", "f12"} {
			want[id] = true
		}
	}
	if len(want) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	type job struct {
		ids []string
		fn  func() error
	}
	jobs := []job{
		{[]string{"t1"}, func() error { return experiments.Table1(opt) }},
		{[]string{"f2"}, func() error { return experiments.Figure2(opt) }},
		{[]string{"t2"}, func() error { return experiments.Table2(opt) }},
		{[]string{"f3"}, func() error { return experiments.Figure3(opt) }},
		{[]string{"t4"}, func() error { return experiments.Table4(opt) }},
		{[]string{"t5", "t9"}, func() error { return experiments.Table5And9(opt) }},
		{[]string{"t6"}, func() error { return experiments.Table6(opt) }},
		{[]string{"t7"}, func() error { return experiments.Table7(opt) }},
		{[]string{"f9"}, func() error { return experiments.Figure9And12(opt, nil) }},
		{[]string{"f12"}, func() error {
			return experiments.Figure9And12(opt, []string{"reddit-sim", "yelp-sim", "products-sim", "amazon-sim"})
		}},
		{[]string{"f10"}, func() error { return experiments.Figure10(opt) }},
		{[]string{"f11"}, func() error { return experiments.Figure11(opt) }},
	}
	ran := map[string]bool{}
	for _, j := range jobs {
		hit := false
		for _, id := range j.ids {
			if want[id] && !ran[id] {
				hit = true
			}
		}
		if !hit {
			continue
		}
		// f9 and f12 share a function; skip f9 if f12 (superset) also runs.
		if j.ids[0] == "f9" && want["f12"] {
			continue
		}
		if err := j.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		for _, id := range j.ids {
			ran[id] = true
		}
	}
}
