// Command adaqp trains one GNN with a chosen training system and prints
// the convergence trace, accuracy, throughput and time breakdown.
//
// Usage:
//
//	adaqp -dataset products-sim -model gcn -method adaqp -parts 4 -epochs 100
//	adaqp -dataset yelp-sim -model sage -method pipegcn -parts 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/quant"
	"repro/internal/synthetic"
)

func main() {
	var (
		dataset  = flag.String("dataset", "tiny", "dataset name: "+strings.Join(synthetic.Names(), ", "))
		scale    = flag.Float64("scale", 1, "dataset scale factor")
		model    = flag.String("model", "gcn", "gcn | sage")
		method   = flag.String("method", "adaqp", "vanilla | adaqp | uniform | random | pipegcn | sancus")
		parts    = flag.Int("parts", 4, "number of devices")
		epochs   = flag.Int("epochs", 100, "training epochs")
		hidden   = flag.Int("hidden", 256, "hidden dimension")
		lr       = flag.Float64("lr", 0.01, "learning rate")
		dropout  = flag.Float64("dropout", 0.5, "dropout probability")
		lambda   = flag.Float64("lambda", 0.5, "variance/time trade-off λ ∈ [0,1]")
		group    = flag.Int("group", 100, "message group size")
		period   = flag.Int("period", 50, "bit-width re-assignment period (epochs)")
		bits     = flag.Int("bits", 2, "uniform bit-width for -method uniform (2|4|8)")
		seed     = flag.Uint64("seed", 1, "random seed")
		evalEach = flag.Int("eval-every", 5, "epochs between validation evaluations")
	)
	flag.Parse()

	ds, err := synthetic.Load(*dataset, synthetic.Scale(*scale))
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.Hidden = *hidden
	cfg.LR = float32(*lr)
	cfg.Dropout = float32(*dropout)
	cfg.Lambda = *lambda
	cfg.GroupSize = *group
	cfg.ReassignPeriod = *period
	cfg.UniformBits = 0
	cfg.Seed = *seed
	cfg.EvalEvery = *evalEach
	switch strings.ToLower(*model) {
	case "gcn":
		cfg.Model = core.GCN
	case "sage", "graphsage":
		cfg.Model = core.GraphSAGE
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	switch strings.ToLower(*method) {
	case "vanilla":
		cfg.Method = core.Vanilla
	case "adaqp":
		cfg.Method = core.AdaQP
	case "uniform":
		cfg.Method = core.AdaQPUniform
		cfg.UniformBits = quant.BitWidth(*bits)
		if !cfg.UniformBits.Valid() {
			fatal(fmt.Errorf("bits must be 2, 4 or 8"))
		}
	case "random":
		cfg.Method = core.AdaQPRandom
	case "pipegcn":
		cfg.Method = core.PipeGCN
	case "sancus":
		cfg.Method = core.SANCUS
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	fmt.Printf("dataset %v\nmodel %v  method %v  parts %d  epochs %d\n\n",
		ds, cfg.Model, cfg.Method, *parts, cfg.Epochs)

	res, err := core.Train(ds, *parts, cfg, nil)
	if err != nil {
		fatal(err)
	}
	for _, e := range res.Epochs {
		if math.IsNaN(e.ValAcc) {
			continue
		}
		fmt.Printf("epoch %4d  loss %.4f  val %.4f  t=%.3fs\n", e.Epoch, e.Loss, e.ValAcc, e.SimTime)
	}
	per := res.PerEpoch()
	fmt.Printf("\ntest accuracy    %.4f\n", res.FinalTest)
	fmt.Printf("throughput       %.3f epoch/s (simulated)\n", res.Throughput())
	fmt.Printf("wall-clock       %.2fs (assign %.2fs)\n", res.WallClock, res.AssignTime)
	fmt.Printf("per-epoch        comm %.4fs  comp %.4fs  quant %.4fs  idle %.4fs\n",
		per.Comm, per.Comp, per.Quant, per.Idle)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adaqp: %v\n", err)
	os.Exit(1)
}
