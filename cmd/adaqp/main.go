// Command adaqp trains one GNN with a chosen training system and prints
// the convergence trace, accuracy, throughput and time breakdown.
//
// Usage:
//
//	adaqp -dataset products-sim -model gcn -method adaqp -parts 4 -epochs 100
//	adaqp -dataset yelp-sim -model sage -method pipegcn -parts 8
//	adaqp -dataset tiny -method vanilla -codec uniform -bits 8
//	adaqp -dataset tiny -method vanilla -codec ef-quant -bits 2
//	adaqp -dataset tiny -method vanilla -codec topk -density 0.05
//	adaqp -dataset tiny -method vanilla -codec delta -keyframe 20
//	adaqp -dataset tiny -method sancus -transport sharded-async -staleness 8 -workers 4
//	adaqp -dataset tiny -method sancus -transport sharded-async -staleness 8 -overlap
//	adaqp -dataset tiny -method adaqp -chaos-stragglers 1 -chaos-slow 4 -chaos-crash-epoch 20
//
// The -method, -codec, -transport and -dataset usage strings list whatever
// is currently registered, so custom registrations show up automatically.
// A -codec override beats the -method default; naming an unregistered
// codec exits non-zero with the registered names.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/wire"
	"repro/pkg/adaqp"
)

func main() {
	// The proc-sharded transport re-executes this binary as its worker
	// processes; in that mode the process never reaches flag parsing.
	wire.MaybeWorker()
	var (
		dataset  = flag.String("dataset", "tiny", "dataset name: "+strings.Join(adaqp.DatasetNames(), ", "))
		scale    = flag.Float64("scale", 1, "dataset scale factor")
		model    = flag.String("model", "gcn", "gcn | sage")
		method   = flag.String("method", "adaqp", "training system: "+strings.Join(methodNames(), ", "))
		codec    = flag.String("codec", "", "message codec override: "+strings.Join(adaqp.Codecs(), ", "))
		tport    = flag.String("transport", "", "runtime backend: "+strings.Join(adaqp.Transports(), ", "))
		workers  = flag.Int("workers", 0, "worker pool size for pooled transports (0 = one per CPU)")
		stale    = flag.Int("staleness", 0, "collectives a device may run ahead on async transports")
		overlap  = flag.Bool("overlap", false, "split-phase collectives: hide broadcast wire time behind central-graph compute")
		sockDir  = flag.String("socket-dir", "", "socket directory root for the proc-sharded transport (empty = system temp)")
		parts    = flag.Int("parts", 4, "number of devices")
		epochs   = flag.Int("epochs", 100, "training epochs")
		hidden   = flag.Int("hidden", 256, "hidden dimension")
		lr       = flag.Float64("lr", 0.01, "learning rate")
		dropout  = flag.Float64("dropout", 0.5, "dropout probability")
		lambda   = flag.Float64("lambda", 0.5, "variance/time trade-off λ ∈ [0,1]")
		group    = flag.Int("group", 100, "message group size")
		period   = flag.Int("period", 50, "bit-width re-assignment period (epochs)")
		bits     = flag.Int("bits", 2, "uniform bit-width for -method uniform and -codec ef-quant (2|4|8|32)")
		density  = flag.Float64("density", 0.1, "kept fraction per row for -codec topk, in (0,1]")
		keyframe = flag.Int("keyframe", 10, "full-precision keyframe period (epochs) for -codec delta")
		seed     = flag.Uint64("seed", 1, "random seed")
		evalEach = flag.Int("eval-every", 5, "epochs between validation evaluations")

		chaosStragglers = flag.Int("chaos-stragglers", 0, "devices slowed by the fault plan (0 = no stragglers)")
		chaosSlow       = flag.Float64("chaos-slow", 0, "straggler compute slowdown factor (> 1)")
		chaosLink       = flag.Float64("chaos-link", 0, "straggler outgoing-link slowdown factor (> 1)")
		chaosFailRate   = flag.Float64("chaos-fail-rate", 0, "transient collective failure probability in [0,1)")
		chaosRetries    = flag.Int("chaos-retries", 0, "max retries per failed collective (0 = default 3)")
		chaosBackoff    = flag.Float64("chaos-backoff", 0, "initial retry backoff in simulated seconds (0 = default)")
		chaosCrash      = flag.Int("chaos-crash-epoch", 0, "epoch (>= 1) at whose end one device crashes and restarts (0 = never)")
		chaosRestart    = flag.Float64("chaos-restart", 0, "crash restart penalty in simulated seconds (0 = default)")
		chaosSeed       = flag.Uint64("chaos-seed", 0, "fault-plan seed (0 = default 1)")
	)
	flag.Parse()

	// A -codec override beats the -method default, so an unregistered name
	// must be rejected up front with the registry-derived usage — not
	// silently resolved to the method's codec, and not a late training
	// error with no guidance.
	if *codec != "" {
		if _, err := adaqp.LookupCodec(*codec); err != nil {
			fmt.Fprintf(os.Stderr, "adaqp: unknown codec %q (-codec overrides the -method default)\n", *codec)
			fmt.Fprintf(os.Stderr, "registered codecs: %s\n", strings.Join(adaqp.Codecs(), ", "))
			os.Exit(2)
		}
	}
	if *tport != "" {
		if _, err := adaqp.LookupTransport(*tport); err != nil {
			fmt.Fprintf(os.Stderr, "adaqp: unknown transport %q\n", *tport)
			fmt.Fprintf(os.Stderr, "registered transports: %s\n", strings.Join(adaqp.Transports(), ", "))
			os.Exit(2)
		}
	}

	// Flags populate the same declarative JobSpec cmd/adaqpd accepts as
	// job JSON, and JobSpec.Options is the single flag/JSON → Option
	// construction path — the two front ends cannot drift.
	spec := adaqp.JobSpec{
		Dataset: *dataset, Scale: *scale,
		Model: *model, Method: *method,
		Codec: *codec, Transport: *tport,
		Workers: *workers, Staleness: *stale, Overlap: *overlap, SocketDir: *sockDir,
		Parts: *parts, Epochs: *epochs, Hidden: *hidden,
		LR: *lr, Dropout: dropout, Lambda: lambda, EvalEvery: evalEach,
		GroupSize: *group, ReassignPeriod: *period,
		UniformBits: *bits, TopKDensity: *density, DeltaKeyframe: *keyframe,
		Seed: *seed,
	}
	chaos := adaqp.FaultSpec{
		Seed:       *chaosSeed,
		Stragglers: *chaosStragglers, SlowFactor: *chaosSlow, LinkFactor: *chaosLink,
		FailRate: *chaosFailRate, MaxRetries: *chaosRetries, Backoff: *chaosBackoff,
		CrashEpoch: *chaosCrash, RestartPenalty: *chaosRestart,
	}
	if chaos.Enabled() {
		spec.Chaos = &chaos
	}
	ds, err := spec.Load()
	if err != nil {
		fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		fatal(err)
	}
	// Stream the convergence trace as epochs complete instead of
	// post-processing RunResult internals.
	opts = append(opts, adaqp.WithEpochCallback(func(e adaqp.EpochStat) {
		if math.IsNaN(e.ValAcc) {
			return
		}
		fmt.Printf("epoch %4d  loss %.4f  val %.4f  t=%.3fs\n", e.Epoch, e.Loss, e.ValAcc, e.SimTime)
	}))

	eng, err := adaqp.New(ds, opts...)
	if err != nil {
		fatal(err)
	}
	// Already validated by spec.Options; parsed again only for display.
	mk, _ := adaqp.ParseModelKind(*model)
	m, _ := adaqp.ParseMethod(*method)
	fmt.Printf("dataset %v\nmodel %v  method %v  parts %d  epochs %d\n\n",
		ds, mk, m, *parts, *epochs)

	res, err := eng.Run()
	if err != nil {
		fatal(err)
	}
	per := res.PerEpoch()
	fmt.Printf("\ncodec            %s\n", res.Codec)
	fmt.Printf("test accuracy    %.4f\n", res.FinalTest)
	fmt.Printf("throughput       %.3f epoch/s (simulated)\n", res.Throughput())
	fmt.Printf("wall-clock       %.2fs (assign %.2fs)\n", res.WallClock, res.AssignTime)
	fmt.Printf("per-epoch        comm %.4fs  comp %.4fs  quant %.4fs  idle %.4fs\n",
		per.Comm, per.Comp, per.Quant, per.Idle)
	if ovl := res.OverlapSeconds(); ovl > 0 {
		fmt.Printf("overlap          %.2fs of wire time hidden behind compute\n", ovl)
	}
	if f := res.Faults; f.Any() {
		fmt.Printf("faults           stragglers %d  retries %d (%.3fs)  crashes %d (%.3fs recovery)\n",
			f.Stragglers, f.Retries, f.RetryTime, f.Crashes, f.RecoveryTime)
	}
}

// methodNames lists the accepted -method values from the Method registry
// (ParseMethod is case-insensitive, so usage shows the lowercase forms).
func methodNames() []string {
	var names []string
	for _, m := range adaqp.Methods() {
		names = append(names, strings.ToLower(m.String()))
	}
	return names
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adaqp: %v\n", err)
	os.Exit(1)
}
