package adaqp_test

import (
	"os"
	"testing"

	"repro/internal/wire"
)

// TestMain lets this test binary serve as its own proc-sharded worker:
// tests running the proc-sharded backend re-execute the running binary to
// get their worker processes (wire.MaybeWorker never returns in that
// mode).
func TestMain(m *testing.M) {
	wire.MaybeWorker()
	os.Exit(m.Run())
}
