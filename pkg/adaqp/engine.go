package adaqp

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Engine owns one dataset and its deployment (partitioning + per-device
// local graphs) and runs training sessions over it. The zero value is not
// usable; construct with New.
//
// An Engine is safe for sequential reuse: deriving Sessions with
// different methods, codecs or hyper-parameters reuses the cached
// deployment, which is how the paper holds partitioning fixed across
// method comparisons. Runs must not execute concurrently on one Engine.
type Engine struct {
	ds   *Dataset
	base settings

	mu  sync.Mutex
	dep *core.Deployment
	key depKey
}

// depKey identifies the inputs a deployment depends on; option overrides
// that change it trigger a re-partition on the next run.
type depKey struct {
	parts    int
	kind     ModelKind
	strategy Strategy
}

func (s *settings) depKey() depKey {
	return depKey{parts: s.parts, kind: s.cfg.Model, strategy: s.strategy}
}

// New builds an Engine for ds with the paper's unified defaults (3-layer
// GCN, hidden 256, Adam lr 0.01, 200 epochs, 4 devices, block
// partitioning), then applies opts.
func New(ds *Dataset, opts ...Option) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("adaqp: nil dataset")
	}
	s := defaultSettings()
	if err := s.apply(opts); err != nil {
		return nil, err
	}
	return &Engine{ds: ds, base: s}, nil
}

// Dataset returns the dataset this engine trains on.
func (e *Engine) Dataset() *Dataset { return e.ds }

// Deployment returns the engine's deployment (building it on first use),
// exposing partition statistics and per-device local graphs.
func (e *Engine) Deployment() *Deployment { return e.deployment(&e.base) }

func (e *Engine) deployment(s *settings) *core.Deployment {
	key := s.depKey()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dep == nil || e.key != key {
		e.dep = core.Deploy(e.ds, s.parts, s.cfg.Model, s.strategy)
		e.key = key
	}
	return e.dep
}

// Session is one training run's frozen configuration, derived from an
// Engine with optional overrides.
type Session struct {
	eng *Engine
	set settings
}

// Session derives a run configuration from the engine's options plus
// overrides, validating the combination.
func (e *Engine) Session(opts ...Option) (*Session, error) {
	s := e.base
	if err := s.apply(opts); err != nil {
		return nil, err
	}
	return &Session{eng: e, set: s}, nil
}

// Deployment returns the deployment this session will train on.
func (s *Session) Deployment() *Deployment { return s.eng.deployment(&s.set) }

// Run executes the session's training job and returns its measurements.
func (s *Session) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run under a cancellation context: when ctx is canceled the
// run stops at the next epoch boundary and returns ErrCanceled. A
// non-cancellable context adds no per-epoch overhead and leaves results
// bit-identical to Run.
func (s *Session) RunContext(ctx context.Context) (*Result, error) {
	dep := s.eng.deployment(&s.set)
	return core.TrainDeployedCtx(ctx, dep, s.set.cfg, s.set.model)
}

// Run is shorthand for Session(opts...).Run().
func (e *Engine) Run(opts ...Option) (*Result, error) {
	sess, err := e.Session(opts...)
	if err != nil {
		return nil, err
	}
	return sess.Run()
}

// Analyze computes, without training, each device's per-epoch
// communication time at uniform width bits and its central/marginal
// computation split — the paper's §2.2 overlap-potential measurement.
func (e *Engine) Analyze(bits int) ([]DeviceOverlap, error) {
	b, err := parseBits(bits)
	if err != nil {
		return nil, err
	}
	dep := e.deployment(&e.base)
	return core.AnalyzeOverlap(dep, e.base.cfg, b, e.base.model), nil
}

// DeviceOverlap is one device's analytical timing decomposition.
type DeviceOverlap = core.DeviceOverlap

// PairBytes returns the full-precision bytes each device pair transfers
// in the first layer's forward pass (the paper's Fig. 2 measurement).
func (e *Engine) PairBytes() [][]int {
	return core.PairBytesFirstLayer(e.deployment(&e.base))
}
