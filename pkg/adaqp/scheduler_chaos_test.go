package adaqp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitFinishRecorded polls until the session's finish timestamp lands
// (Status flips terminal just before the worker records the finish time,
// and Remove requires the recorded finish).
func waitFinishRecorded(t *testing.T, h *SessionHandle) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if _, _, fin := h.Times(); !fin.IsZero() {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("session %s never recorded a finish time", h.ID())
		case <-time.After(time.Millisecond):
		}
	}
}

// TestSchedulerChaosJobAccumulatesFaultTotals submits a JobSpec carrying a
// chaos block and requires the scheduler's lifetime fault counters to
// reflect the run — and to survive the session's removal, which is what
// keeps daemon metrics monotonic under bounded retention.
func TestSchedulerChaosJobAccumulatesFaultTotals(t *testing.T) {
	sched, err := NewScheduler(WithMaxConcurrentSessions(1), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Drain(context.Background())

	evalEvery := 0
	spec := JobSpec{
		Dataset: "tiny", Scale: 0.25,
		Method: "vanilla", Parts: 2, Epochs: 4, Hidden: 8,
		EvalEvery: &evalEvery, Seed: 7,
		Chaos: &FaultSpec{
			Seed: 3, Stragglers: 1, SlowFactor: 3,
			FailRate: 0.3, MaxRetries: 2, Backoff: 0.01,
			CrashEpoch: 2, RestartPenalty: 10,
		},
	}
	h, err := sched.SubmitSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Stragglers != 1 || res.Faults.Crashes != 1 {
		t.Fatalf("run faults = %+v, want 1 straggler and 1 crash", res.Faults)
	}
	if res.Faults.Retries == 0 || res.Faults.RetryTime <= 0 {
		t.Fatalf("run faults = %+v, want retries charged under FailRate 0.3", res.Faults)
	}

	totals := sched.FaultTotals()
	if totals != res.Faults {
		t.Fatalf("FaultTotals = %+v, want the single run's %+v", totals, res.Faults)
	}

	// Removing the terminal session must not lose the accumulated totals.
	waitFinishRecorded(t, h)
	if known, err := sched.Remove(h.ID()); !known || err != nil {
		t.Fatalf("Remove(terminal) = (%v, %v), want (true, nil)", known, err)
	}
	if _, ok := sched.Session(h.ID()); ok {
		t.Error("removed session still retrievable")
	}
	if got := sched.FaultTotals(); got != totals {
		t.Fatalf("FaultTotals after Remove = %+v, want unchanged %+v", got, totals)
	}
}

// TestSchedulerRetentionAndRemoveSemantics checks the retention bound and
// the terminal-only Remove contract through the public API.
func TestSchedulerRetentionAndRemoveSemantics(t *testing.T) {
	ds := MustLoadDataset("tiny", 0.25)
	sched, err := NewScheduler(
		WithMaxConcurrentSessions(1), WithQueueDepth(4),
		WithSessionRetention(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Drain(context.Background())

	short := []Option{
		WithParts(2), WithMethod(Vanilla), WithEpochs(1),
		WithHidden(8), WithEvalEvery(0),
	}
	var handles []*SessionHandle
	for i := 0; i < 3; i++ {
		h, err := sched.Submit(ds, short...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		waitFinishRecorded(t, h)
		handles = append(handles, h)
	}
	if got := len(sched.Sessions()); got != 1 {
		t.Fatalf("retained %d sessions under a MaxRetained=1 bound, want 1", got)
	}
	if _, ok := sched.Session(handles[0].ID()); ok {
		t.Error("oldest terminal session survived the retention bound")
	}

	running, err := sched.Submit(ds, longJob()...)
	if err != nil {
		t.Fatal(err)
	}
	waitEpochs(t, running, 1)
	if known, err := sched.Remove(running.ID()); !known || !errors.Is(err, ErrSessionNotTerminal) {
		t.Fatalf("Remove(running) = (%v, %v), want (true, ErrSessionNotTerminal)", known, err)
	}
	running.Cancel()
	if _, err := running.Wait(context.Background()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled session error = %v, want ErrCanceled", err)
	}
	if known, _ := sched.Remove("job-999"); known {
		t.Error("Remove of an unknown id reported it as known")
	}
}
