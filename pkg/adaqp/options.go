package adaqp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/timing"
)

// settings is the resolved configuration an Engine or Session runs with.
type settings struct {
	cfg      core.Config
	parts    int
	strategy partition.Strategy
	model    *timing.CostModel // nil = DefaultCostModel
}

func defaultSettings() settings {
	return settings{cfg: core.DefaultConfig(), parts: 4, strategy: partition.Block}
}

// An Option configures an Engine at New or overrides it per Session/Run.
type Option func(*settings) error

func (s *settings) apply(opts []Option) error {
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return err
		}
	}
	return s.cfg.Validate()
}

// WithParts sets the number of simulated devices the graph is partitioned
// across (default 4).
func WithParts(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("adaqp: parts must be >= 1, got %d", n)
		}
		s.parts = n
		return nil
	}
}

// WithMethod selects the training system (default Vanilla).
func WithMethod(m Method) Option {
	return func(s *settings) error {
		if _, err := core.CodecForMethod(m); err != nil {
			return fmt.Errorf("adaqp: %w", err)
		}
		s.cfg.Method = m
		return nil
	}
}

// WithModel selects the GNN architecture (default GCN).
func WithModel(k ModelKind) Option {
	return func(s *settings) error {
		if k != GCN && k != GraphSAGE {
			return fmt.Errorf("adaqp: unknown model kind %d", int(k))
		}
		s.cfg.Model = k
		return nil
	}
}

// WithPartitioner selects the partitioning strategy (default block).
func WithPartitioner(st Strategy) Option {
	return func(s *settings) error {
		s.strategy = st
		return nil
	}
}

// WithCostModel replaces the simulated hardware calibration.
func WithCostModel(m *CostModel) Option {
	return func(s *settings) error {
		if m == nil {
			return fmt.Errorf("adaqp: nil cost model")
		}
		s.model = m
		return nil
	}
}

// TransportSpec groups every transport-facing knob behind one option:
// which runtime backend moves bytes and how it schedules devices. The
// zero value of every field is the engine default, and WithTransport
// replaces the whole transport configuration with the spec — unlike the
// per-knob options it supersedes, two WithTransport calls do not merge.
type TransportSpec struct {
	// Name selects the runtime backend (any name in Transports());
	// empty selects TransportInprocess.
	Name string
	// Workers bounds how many simulated devices execute concurrently on
	// backends that multiplex devices onto a worker pool
	// (TransportShardedAsync); 0 uses one worker per available CPU. The
	// in-process backend ignores it.
	Workers int
	// Staleness is how many collective operations a device may run ahead
	// of the slowest straggler on async backends. 0 keeps lockstep
	// semantics — results and simulated clocks bit-identical to the
	// in-process reference; positive bounds keep results bit-identical
	// but let fast devices overlap one-to-many collectives with
	// stragglers' work, reducing simulated idle time. The in-process
	// backend ignores it.
	Staleness int
	// Overlap switches the trainer's exchange loop to the split-phase
	// collective schedule: an exchange's sends all start before any is
	// consumed, so wire time hides behind central-graph compute and is
	// recorded under the Overlap phase instead of charged to Comm/Idle.
	// Payload routing is unchanged — fixed-seed loss curves stay
	// bit-identical to the blocking schedule on every backend.
	Overlap bool
	// SocketDir roots the per-run Unix-domain socket directories of
	// socket-backed backends (TransportProcSharded, where Workers is the
	// worker process count). Empty uses the system temp directory;
	// in-memory backends ignore it.
	SocketDir string
}

// WithTransport sets the run's transport configuration to spec.
func WithTransport(spec TransportSpec) Option {
	return func(s *settings) error {
		if spec.Workers < 0 {
			return fmt.Errorf("adaqp: workers must be >= 0, got %d", spec.Workers)
		}
		if spec.Staleness < 0 {
			return fmt.Errorf("adaqp: staleness bound must be >= 0, got %d", spec.Staleness)
		}
		s.cfg.Transport = spec.Name
		s.cfg.TransportWorkers = spec.Workers
		s.cfg.TransportStaleness = spec.Staleness
		s.cfg.TransportOverlap = spec.Overlap
		s.cfg.TransportSocketDir = spec.SocketDir
		return nil
	}
}

// CodecSpec groups the message-codec selection and its per-codec knobs
// behind one option. Unlike TransportSpec, zero-valued fields keep the
// engine's current setting (every codec knob's default is non-zero), so
// a spec overrides only what it names.
type CodecSpec struct {
	// Name overrides the message codec (any name in Codecs()); empty
	// keeps the current selection (by default, derived from the method).
	Name string
	// UniformBits is the width the uniform and ef-quant codecs quantize
	// at: 2, 4, 8, or 32 for the full-precision passthrough (default 2).
	UniformBits int
	// TopKDensity is the fraction of each row's entries the topk codec
	// keeps, in (0, 1] (default 0.1).
	TopKDensity float64
	// DeltaKeyframeEvery is how often (in epochs) the delta codec ships a
	// full-precision keyframe instead of a quantized residual (default 10).
	DeltaKeyframeEvery int
	// SancusDrift and SancusMaxStale are SANCUS's staleness controls:
	// re-broadcast when relative drift exceeds SancusDrift (default 0.05),
	// or at the latest every SancusMaxStale epochs (default 8). Set both
	// together.
	SancusDrift    float64
	SancusMaxStale int
}

// WithCodec applies the non-zero fields of spec to the run's codec
// configuration.
func WithCodec(spec CodecSpec) Option {
	return func(s *settings) error {
		if spec.Name != "" {
			s.cfg.Codec = spec.Name
		}
		if spec.UniformBits != 0 {
			b, err := parseBits(spec.UniformBits)
			if err != nil {
				return err
			}
			s.cfg.UniformBits = b
		}
		if spec.TopKDensity != 0 {
			if !(spec.TopKDensity > 0 && spec.TopKDensity <= 1) { // written to also reject NaN
				return fmt.Errorf("adaqp: top-k density must be in (0,1], got %v", spec.TopKDensity)
			}
			s.cfg.TopKDensity = spec.TopKDensity
		}
		if spec.DeltaKeyframeEvery != 0 {
			if spec.DeltaKeyframeEvery < 1 {
				return fmt.Errorf("adaqp: delta keyframe period must be >= 1, got %d", spec.DeltaKeyframeEvery)
			}
			s.cfg.DeltaKeyframeEvery = spec.DeltaKeyframeEvery
		}
		if spec.SancusDrift != 0 || spec.SancusMaxStale != 0 {
			if spec.SancusDrift <= 0 || spec.SancusMaxStale < 1 {
				return fmt.Errorf("adaqp: sancus drift must be positive and maxStale >= 1")
			}
			s.cfg.SancusDrift = spec.SancusDrift
			s.cfg.SancusMaxStale = spec.SancusMaxStale
		}
		return nil
	}
}

// WithWorkers bounds how many simulated devices execute concurrently on
// transports that multiplex devices onto a worker pool (TransportShardedAsync).
// 0 (the default) uses one worker per available CPU; the in-process
// transport ignores it.
//
// Deprecated: set Workers in WithTransport's TransportSpec instead.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("adaqp: workers must be >= 0, got %d", n)
		}
		s.cfg.TransportWorkers = n
		return nil
	}
}

// WithStalenessBound sets how many collective operations a device may run
// ahead of the slowest straggler on async transports. 0 (the default)
// keeps lockstep semantics — results and simulated clocks bit-identical to
// the in-process reference; positive bounds keep results bit-identical but
// let fast devices overlap one-to-many collectives with stragglers' work,
// reducing simulated idle time. The in-process transport ignores it.
//
// Deprecated: set Staleness in WithTransport's TransportSpec instead.
func WithStalenessBound(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("adaqp: staleness bound must be >= 0, got %d", n)
		}
		s.cfg.TransportStaleness = n
		return nil
	}
}

// WithEpochs sets the training epoch budget.
func WithEpochs(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("adaqp: epochs must be >= 1, got %d", n)
		}
		s.cfg.Epochs = n
		return nil
	}
}

// WithLayers sets the number of GNN layers (default 3).
func WithLayers(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("adaqp: layers must be >= 1, got %d", n)
		}
		s.cfg.Layers = n
		return nil
	}
}

// WithHidden sets the hidden dimension (default 256).
func WithHidden(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("adaqp: hidden must be >= 1, got %d", n)
		}
		s.cfg.Hidden = n
		return nil
	}
}

// WithLR sets the Adam learning rate (default 0.01).
func WithLR(lr float64) Option {
	return func(s *settings) error {
		if lr <= 0 {
			return fmt.Errorf("adaqp: learning rate must be positive, got %v", lr)
		}
		s.cfg.LR = float32(lr)
		return nil
	}
}

// WithDropout sets the dropout probability (default 0.5).
func WithDropout(p float64) Option {
	return func(s *settings) error {
		if p < 0 || p >= 1 {
			return fmt.Errorf("adaqp: dropout must be in [0,1), got %v", p)
		}
		s.cfg.Dropout = float32(p)
		return nil
	}
}

// WithLambda sets the variance/time trade-off λ ∈ [0,1] of the bit-width
// assigner's bi-objective (default 0.5).
func WithLambda(l float64) Option {
	return func(s *settings) error {
		s.cfg.Lambda = l
		return nil
	}
}

// WithGroupSize sets the assigner's message group size (default 100).
func WithGroupSize(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("adaqp: group size must be >= 1, got %d", n)
		}
		s.cfg.GroupSize = n
		return nil
	}
}

// WithReassignPeriod sets the bit-width re-assignment period in epochs
// (default 50).
func WithReassignPeriod(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("adaqp: reassign period must be >= 1, got %d", n)
		}
		s.cfg.ReassignPeriod = n
		return nil
	}
}

// parseBits converts an integer width into the quant layer's type.
func parseBits(bits int) (quant.BitWidth, error) {
	b := quant.BitWidth(bits)
	if !b.Valid() {
		return 0, fmt.Errorf("adaqp: bit-width must be 2, 4, 8 or 32, got %d", bits)
	}
	return b, nil
}

// WithUniformBits sets the width AdaQPUniform (and the uniform codec)
// quantizes at: 2, 4, 8, or 32 for the full-precision passthrough.
//
// Deprecated: set UniformBits in WithCodec's CodecSpec instead.
func WithUniformBits(bits int) Option {
	return func(s *settings) error {
		b, err := parseBits(bits)
		if err != nil {
			return err
		}
		s.cfg.UniformBits = b
		return nil
	}
}

// WithTopKDensity sets the fraction of each row's entries the topk codec
// keeps, in (0, 1] (default 0.1).
//
// Deprecated: set TopKDensity in WithCodec's CodecSpec instead.
func WithTopKDensity(d float64) Option {
	return func(s *settings) error {
		if !(d > 0 && d <= 1) { // written to also reject NaN
			return fmt.Errorf("adaqp: top-k density must be in (0,1], got %v", d)
		}
		s.cfg.TopKDensity = d
		return nil
	}
}

// WithDeltaKeyframe sets how often (in epochs) the delta codec ships a
// full-precision keyframe instead of a quantized residual against the
// previous epoch's payload (default 10).
//
// Deprecated: set DeltaKeyframeEvery in WithCodec's CodecSpec instead.
func WithDeltaKeyframe(every int) Option {
	return func(s *settings) error {
		if every < 1 {
			return fmt.Errorf("adaqp: delta keyframe period must be >= 1, got %d", every)
		}
		s.cfg.DeltaKeyframeEvery = every
		return nil
	}
}

// WithSancus sets SANCUS's staleness controls: re-broadcast when relative
// drift exceeds drift, or at the latest every maxStale epochs.
//
// Deprecated: set SancusDrift/SancusMaxStale in WithCodec's CodecSpec
// instead.
func WithSancus(drift float64, maxStale int) Option {
	return func(s *settings) error {
		if drift <= 0 || maxStale < 1 {
			return fmt.Errorf("adaqp: sancus drift must be positive and maxStale >= 1")
		}
		s.cfg.SancusDrift = drift
		s.cfg.SancusMaxStale = maxStale
		return nil
	}
}

// WithSeed sets the seed driving weight init, dropout and stochastic
// rounding (default 1).
func WithSeed(seed uint64) Option {
	return func(s *settings) error {
		if seed == 0 {
			return fmt.Errorf("adaqp: seed must be non-zero")
		}
		s.cfg.Seed = seed
		return nil
	}
}

// WithEvalEvery sets how often validation accuracy is recorded; 0
// disables periodic evaluation (final test accuracy is always computed).
func WithEvalEvery(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("adaqp: eval-every must be >= 0, got %d", n)
		}
		s.cfg.EvalEvery = n
		return nil
	}
}

// WithFaultPlan injects deterministic faults into the run: straggler
// devices (compute and/or link slowdowns), transient collective failures
// with bounded retry/backoff, and a device crash with checkpoint/restart
// recovery. The zero FaultSpec injects nothing. Faults charge simulated
// time only — the loss curve, accuracies and (crashes aside) the byte
// ledger stay bit-identical to the fault-free run with the same seed, and
// the whole fault schedule derives from spec.Seed, so repeated runs and
// both transport backends see identical faults. Result.Faults reports
// what was injected.
func WithFaultPlan(spec FaultSpec) Option {
	return func(s *settings) error {
		s.cfg.Faults = spec
		return nil
	}
}

// WithEpochCallback registers fn to receive each epoch's record as
// training progresses (called once per epoch, after the codec's
// end-of-epoch protocol). The callback must not start another run on the
// same Engine.
func WithEpochCallback(fn func(EpochStat)) Option {
	return func(s *settings) error {
		s.cfg.EpochHook = fn
		return nil
	}
}
