package adaqp

import "fmt"

// JobSpec is a declarative training-job description: the one source of
// truth both front ends construct Options from, so cmd/adaqp's CLI flags
// and cmd/adaqpd's job JSON cannot drift. Zero values (nil for the pointer
// fields whose zero is meaningful) mean "engine default".
//
// String fields (Model, Method, Codec, Transport) are registry names, so
// custom codecs and transports registered before submission are usable
// from JSON jobs too; unknown names fail Options with the registered set
// in the error.
type JobSpec struct {
	// Dataset is the registered dataset name (required) and Scale its
	// size factor (0 = 1.0, the registry's reference size).
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale,omitempty"`

	Model     string `json:"model,omitempty"`     // gcn | sage
	Method    string `json:"method,omitempty"`    // training system (ParseMethod)
	Codec     string `json:"codec,omitempty"`     // message-codec override
	Transport string `json:"transport,omitempty"` // runtime backend
	Workers   int    `json:"workers,omitempty"`
	Staleness int    `json:"staleness,omitempty"`
	// Overlap enables the split-phase collective schedule that hides
	// wire time behind central-graph compute (TransportSpec.Overlap).
	Overlap bool `json:"overlap,omitempty"`
	// SocketDir roots the Unix-domain socket directories of socket-backed
	// transports (TransportSpec.SocketDir).
	SocketDir string `json:"socket_dir,omitempty"`

	Parts  int `json:"parts,omitempty"`
	Epochs int `json:"epochs,omitempty"`
	Layers int `json:"layers,omitempty"`
	Hidden int `json:"hidden,omitempty"`

	LR float64 `json:"lr,omitempty"`
	// Dropout, Lambda and EvalEvery are pointers because 0 is a valid,
	// non-default setting for each (no dropout, pure-time assignment
	// objective, evaluation disabled).
	Dropout   *float64 `json:"dropout,omitempty"`
	Lambda    *float64 `json:"lambda,omitempty"`
	EvalEvery *int     `json:"eval_every,omitempty"`

	GroupSize      int     `json:"group_size,omitempty"`
	ReassignPeriod int     `json:"reassign_period,omitempty"`
	UniformBits    int     `json:"bits,omitempty"`
	TopKDensity    float64 `json:"density,omitempty"`
	DeltaKeyframe  int     `json:"keyframe,omitempty"`

	Seed uint64 `json:"seed,omitempty"`

	// Chaos, when non-nil, injects the declared deterministic faults into
	// the run (see WithFaultPlan). Fault fields marshal under the "chaos"
	// key, e.g. {"chaos":{"stragglers":1,"slow_factor":4}}.
	Chaos *FaultSpec `json:"chaos,omitempty"`
}

// Load loads the spec's dataset (Scale 0 = 1.0).
func (j JobSpec) Load() (*Dataset, error) {
	if j.Dataset == "" {
		return nil, fmt.Errorf("adaqp: job spec needs a dataset (have %v)", DatasetNames())
	}
	scale := j.Scale
	if scale == 0 {
		scale = 1
	}
	return LoadDataset(j.Dataset, scale)
}

// Options converts the spec into engine options, leaving engine defaults
// in place for zero-valued fields. The returned options still pass through
// full validation (including codec/transport registry lookups) when
// applied by New, Session or Scheduler.Submit.
func (j JobSpec) Options() ([]Option, error) {
	var opts []Option
	if j.Model != "" {
		mk, err := ParseModelKind(j.Model)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithModel(mk))
	}
	if j.Method != "" {
		m, err := ParseMethod(j.Method)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithMethod(m))
	}
	if j.Codec != "" {
		if _, err := LookupCodec(j.Codec); err != nil {
			return nil, err
		}
	}
	if j.Transport != "" {
		if _, err := LookupTransport(j.Transport); err != nil {
			return nil, err
		}
	}
	// The transport and codec fields map onto the grouped specs — the
	// same structs programmatic callers hand to WithTransport/WithCodec —
	// so the JSON/flag path and the Go API cannot drift.
	if j.Transport != "" || j.Workers != 0 || j.Staleness != 0 || j.Overlap || j.SocketDir != "" {
		opts = append(opts, WithTransport(TransportSpec{
			Name:      j.Transport,
			Workers:   j.Workers,
			Staleness: j.Staleness,
			Overlap:   j.Overlap,
			SocketDir: j.SocketDir,
		}))
	}
	if j.Parts != 0 {
		opts = append(opts, WithParts(j.Parts))
	}
	if j.Epochs != 0 {
		opts = append(opts, WithEpochs(j.Epochs))
	}
	if j.Layers != 0 {
		opts = append(opts, WithLayers(j.Layers))
	}
	if j.Hidden != 0 {
		opts = append(opts, WithHidden(j.Hidden))
	}
	if j.LR != 0 {
		opts = append(opts, WithLR(j.LR))
	}
	if j.Dropout != nil {
		opts = append(opts, WithDropout(*j.Dropout))
	}
	if j.Lambda != nil {
		opts = append(opts, WithLambda(*j.Lambda))
	}
	if j.EvalEvery != nil {
		opts = append(opts, WithEvalEvery(*j.EvalEvery))
	}
	if j.GroupSize != 0 {
		opts = append(opts, WithGroupSize(j.GroupSize))
	}
	if j.ReassignPeriod != 0 {
		opts = append(opts, WithReassignPeriod(j.ReassignPeriod))
	}
	if j.Codec != "" || j.UniformBits != 0 || j.TopKDensity != 0 || j.DeltaKeyframe != 0 {
		opts = append(opts, WithCodec(CodecSpec{
			Name:               j.Codec,
			UniformBits:        j.UniformBits,
			TopKDensity:        j.TopKDensity,
			DeltaKeyframeEvery: j.DeltaKeyframe,
		}))
	}
	if j.Seed != 0 {
		opts = append(opts, WithSeed(j.Seed))
	}
	if j.Chaos != nil {
		opts = append(opts, WithFaultPlan(*j.Chaos))
	}
	return opts, nil
}
