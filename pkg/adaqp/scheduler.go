package adaqp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// ErrCanceled is returned by a run stopped through its context (Session.
// RunContext) or through SessionHandle.Cancel. Cancellation lands between
// epochs; the epoch in flight completes first.
var ErrCanceled = core.ErrCanceled

// Admission-control errors returned by Scheduler.Submit.
var (
	// ErrQueueFull: the scheduler's queue is at capacity; back off by
	// Scheduler.RetryAfter and retry.
	ErrQueueFull = serve.ErrQueueFull
	// ErrDraining: Drain has begun; the scheduler accepts no new work.
	ErrDraining = serve.ErrDraining
	// ErrSessionNotTerminal: Remove was called on a session still queued
	// or running; cancel it first, then remove once terminal.
	ErrSessionNotTerminal = serve.ErrNotTerminal
)

// SessionStatus is a scheduled session's lifecycle state.
type SessionStatus = serve.Status

// Session lifecycle states.
const (
	SessionQueued   = serve.Queued
	SessionRunning  = serve.Running
	SessionDone     = serve.Done
	SessionFailed   = serve.Failed
	SessionCanceled = serve.Canceled
)

// SchedulerCounters is a snapshot of a scheduler's lifetime counters and
// live gauges.
type SchedulerCounters = serve.Counters

// SchedulerOption configures NewScheduler.
type SchedulerOption func(*serve.Options) error

// WithMaxConcurrentSessions sets the worker-pool size: how many training
// sessions execute simultaneously (default 2). Each session still runs its
// own simulated device cluster, so total goroutine parallelism is roughly
// sessions × parts.
func WithMaxConcurrentSessions(n int) SchedulerOption {
	return func(o *serve.Options) error {
		if n < 1 {
			return fmt.Errorf("adaqp: max concurrent sessions must be >= 1, got %d", n)
		}
		o.MaxConcurrent = n
		return nil
	}
}

// WithQueueDepth bounds how many admitted sessions may wait for a worker
// slot (default 16). Submissions beyond it are rejected with ErrQueueFull.
func WithQueueDepth(n int) SchedulerOption {
	return func(o *serve.Options) error {
		if n < 1 {
			return fmt.Errorf("adaqp: queue depth must be >= 1, got %d", n)
		}
		o.QueueDepth = n
		return nil
	}
}

// WithRetryAfter sets the back-off hint attached to queue-full rejections
// (default 1s); cmd/adaqpd surfaces it as the Retry-After header.
func WithRetryAfter(d time.Duration) SchedulerOption {
	return func(o *serve.Options) error {
		if d <= 0 {
			return fmt.Errorf("adaqp: retry-after must be positive, got %v", d)
		}
		o.RetryAfter = d
		return nil
	}
}

// WithSessionRetention bounds how long terminal sessions stay retrievable:
// at most max records (0 keeps the default 1024, negative means unlimited),
// each for at most ttl after finishing (0 means no TTL). Queued and
// running sessions are never evicted. Without a bound a long-lived daemon's
// session table grows forever.
func WithSessionRetention(max int, ttl time.Duration) SchedulerOption {
	return func(o *serve.Options) error {
		if ttl < 0 {
			return fmt.Errorf("adaqp: session retention ttl must be >= 0, got %v", ttl)
		}
		o.MaxRetained = max
		o.RetainFor = ttl
		return nil
	}
}

// Scheduler serves many concurrent training sessions from one long-lived
// process: a bounded worker pool executes them, a bounded queue admits
// them, and every session is fully isolated — its own Engine, deployment
// and codec/transport state derived from its own options — so concurrent
// sessions produce results bit-identical to the same configurations run
// alone. All methods are safe for concurrent use.
type Scheduler struct {
	s *serve.Scheduler

	// dsMu guards dsCache: datasets resolved by SubmitSpec, keyed by
	// (name, scale). Datasets are read-only during training (each session
	// shards its own copies), so one instance safely serves every
	// concurrent session; caching keeps admission from regenerating the
	// same synthetic graph for every job of a load burst.
	dsMu    sync.Mutex
	dsCache map[dsKey]*Dataset

	// faultMu guards faults and overlap: counters accumulated across
	// every completed session (survives session eviction, so the daemon's
	// metrics stay monotonic).
	faultMu sync.Mutex
	faults  FaultStats
	overlap Seconds
}

type dsKey struct {
	name  string
	scale float64
}

// NewScheduler starts a session scheduler. Call Drain to shut it down.
func NewScheduler(opts ...SchedulerOption) (*Scheduler, error) {
	var o serve.Options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	return &Scheduler{s: serve.New(o), dsCache: make(map[dsKey]*Dataset)}, nil
}

// Submit admits one training session over ds with the given options,
// validated now (an invalid combination fails fast, before queueing). It
// never blocks: a full queue returns ErrQueueFull, a draining scheduler
// ErrDraining. The session's Engine and deployment are built on the worker
// when the session starts, so partitioning cost is part of the measured
// session, not of admission.
func (sc *Scheduler) Submit(ds *Dataset, opts ...Option) (*SessionHandle, error) {
	if ds == nil {
		return nil, fmt.Errorf("adaqp: nil dataset")
	}
	set := defaultSettings()
	if err := set.apply(opts); err != nil {
		return nil, err
	}
	run := func(ctx context.Context, sess *serve.Session) (any, error) {
		// Per-session isolation: a fresh Engine (own deployment, own
		// codec instances via the run's CodecEnv) per submitted session.
		s := set
		prev := s.cfg.EpochHook
		s.cfg.EpochHook = func(e EpochStat) {
			sess.SetProgress(int64(e.Epoch) + 1)
			if prev != nil {
				prev(e)
			}
		}
		eng := &Engine{ds: ds, base: s}
		session, err := eng.Session()
		if err != nil {
			return nil, err
		}
		res, err := session.RunContext(ctx)
		if res != nil {
			sc.record(res)
		}
		return res, err
	}
	sess, err := sc.s.Submit(run)
	if err != nil {
		return nil, err
	}
	return &SessionHandle{s: sess}, nil
}

// SubmitSpec is Submit from a declarative JobSpec (loading its dataset),
// plus extra programmatic options applied after the spec's — how cmd/adaqpd
// turns job JSON into sessions.
func (sc *Scheduler) SubmitSpec(spec JobSpec, extra ...Option) (*SessionHandle, error) {
	ds, err := sc.dataset(spec)
	if err != nil {
		return nil, err
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	return sc.Submit(ds, append(opts, extra...)...)
}

// dataset resolves a spec's dataset through the scheduler's cache.
func (sc *Scheduler) dataset(spec JobSpec) (*Dataset, error) {
	scale := spec.Scale
	if scale == 0 {
		scale = 1
	}
	key := dsKey{name: spec.Dataset, scale: scale}
	sc.dsMu.Lock()
	defer sc.dsMu.Unlock()
	if ds, ok := sc.dsCache[key]; ok {
		return ds, nil
	}
	ds, err := spec.Load()
	if err != nil {
		return nil, err
	}
	sc.dsCache[key] = ds
	return ds, nil
}

// Session returns the handle for a scheduler-assigned session id.
func (sc *Scheduler) Session(id string) (*SessionHandle, bool) {
	sess, ok := sc.s.Session(id)
	if !ok {
		return nil, false
	}
	return &SessionHandle{s: sess}, true
}

// Sessions lists every session in submission order.
func (sc *Scheduler) Sessions() []*SessionHandle {
	raw := sc.s.Sessions()
	out := make([]*SessionHandle, len(raw))
	for i, sess := range raw {
		out[i] = &SessionHandle{s: sess}
	}
	return out
}

// Cancel requests cancellation of the session with the given id and
// reports whether the id was known (see SessionHandle.Cancel).
func (sc *Scheduler) Cancel(id string) bool { return sc.s.Cancel(id) }

// Remove deletes a terminal session's record immediately instead of
// waiting for retention eviction. It reports whether the id was known;
// removing a queued or running session fails with ErrSessionNotTerminal.
func (sc *Scheduler) Remove(id string) (bool, error) { return sc.s.Remove(id) }

// record folds one finished session's fault counters and hidden collective
// latency into the scheduler's lifetime totals.
func (sc *Scheduler) record(res *Result) {
	f := res.Faults
	ovl := res.OverlapSeconds()
	if !f.Any() && ovl == 0 {
		return
	}
	sc.faultMu.Lock()
	sc.faults.Stragglers += f.Stragglers
	sc.faults.Retries += f.Retries
	sc.faults.RetryTime += f.RetryTime
	sc.faults.Crashes += f.Crashes
	sc.faults.RecoveryTime += f.RecoveryTime
	sc.overlap += ovl
	sc.faultMu.Unlock()
}

// FaultTotals returns fault/recovery counters accumulated across every
// completed session (monotonic; unaffected by session eviction).
func (sc *Scheduler) FaultTotals() FaultStats {
	sc.faultMu.Lock()
	defer sc.faultMu.Unlock()
	return sc.faults
}

// OverlapTotal returns the simulated seconds of collective wire time hidden
// behind compute (the split-phase overlap schedule) summed across every
// completed session, monotonic like FaultTotals.
func (sc *Scheduler) OverlapTotal() Seconds {
	sc.faultMu.Lock()
	defer sc.faultMu.Unlock()
	return sc.overlap
}

// Drain stops admission (Submit returns ErrDraining) and waits for every
// queued and running session to finish, or for ctx to expire. Idempotent.
func (sc *Scheduler) Drain(ctx context.Context) error { return sc.s.Drain(ctx) }

// Draining reports whether Drain has begun.
func (sc *Scheduler) Draining() bool { return sc.s.Draining() }

// Counters snapshots the scheduler's lifetime counters and live gauges.
func (sc *Scheduler) Counters() SchedulerCounters { return sc.s.Counters() }

// RetryAfter is the back-off hint attached to queue-full rejections.
func (sc *Scheduler) RetryAfter() time.Duration { return sc.s.Options().RetryAfter }

// SessionHandle tracks one submitted session. All methods are safe for
// concurrent use.
type SessionHandle struct {
	s *serve.Session
}

// ID is the scheduler-assigned identifier ("job-N").
func (h *SessionHandle) ID() string { return h.s.ID() }

// Status returns the session's lifecycle state.
func (h *SessionHandle) Status() SessionStatus { return h.s.Status() }

// EpochsDone returns how many training epochs the session has completed,
// streamed from the engine's per-epoch callback seam.
func (h *SessionHandle) EpochsDone() int { return int(h.s.Progress()) }

// Cancel requests cancellation. A queued session is discarded without
// running; a running one stops at its next epoch boundary (finishing the
// epoch in flight) and releases its worker slot. Safe in any state.
func (h *SessionHandle) Cancel() { h.s.Cancel() }

// Done is closed when the session reaches a terminal state.
func (h *SessionHandle) Done() <-chan struct{} { return h.s.Done() }

// Times returns the submission, start and finish timestamps; zero values
// mark stages not yet reached.
func (h *SessionHandle) Times() (submitted, started, finished time.Time) {
	return h.s.Times()
}

// Result returns the session's outcome: (result, nil) after SessionDone,
// (nil, err) after SessionFailed or SessionCanceled — with
// errors.Is(err, ErrCanceled) true for cancellations — and (nil, nil)
// while the session is still queued or running.
func (h *SessionHandle) Result() (*Result, error) {
	if h.s.Status() == SessionCanceled {
		// Uniform cancellation error whether the session was discarded
		// from the queue (context.Canceled) or stopped mid-run.
		return nil, ErrCanceled
	}
	raw, err := h.s.Result()
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, nil
	}
	return raw.(*Result), nil
}

// Wait blocks until the session is terminal or ctx expires, then returns
// Result's values.
func (h *SessionHandle) Wait(ctx context.Context) (*Result, error) {
	if _, err := h.s.Wait(ctx); err != nil {
		return nil, err
	}
	return h.Result()
}
