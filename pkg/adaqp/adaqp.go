// Package adaqp is the public API of the AdaQP reproduction: distributed
// full-graph GNN training with adaptive message quantization and
// computation–communication parallelization (Wan et al., MLSys 2023),
// running on an in-process simulated cluster with real numerics.
//
// The system is layered behind two seams:
//
//	Engine / Session (this package)
//	    │  functional options, per-epoch callbacks
//	    ▼
//	MessageCodec — how boundary messages are encoded and scheduled
//	    (fp32, uniform, adaptive, random, pipegcn, sancus; extensible
//	    via RegisterCodec)
//	    ▼
//	Transport — how bytes move between devices
//	    (in-process cluster today; sharded/async backends via
//	    RegisterTransport)
//
// Quickstart:
//
//	ds := adaqp.MustLoadDataset("tiny", 1)
//	eng, err := adaqp.New(ds,
//	    adaqp.WithParts(4),
//	    adaqp.WithMethod(adaqp.AdaQP),
//	    adaqp.WithEpochs(60))
//	if err != nil { ... }
//	res, err := eng.Run()
//
// One Engine owns one dataset and one partitioning; Sessions derived from
// it override training options while reusing the deployment, which is how
// the paper's method comparisons hold the partitioning fixed.
package adaqp

import (
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/timing"
)

// Core model/method enums, re-exported so callers never import internals.
type (
	// Method selects the training system.
	Method = core.Method
	// ModelKind selects the GNN architecture.
	ModelKind = core.ModelKind
)

// Training systems.
const (
	// Vanilla is synchronous full-precision full-graph training.
	Vanilla = core.Vanilla
	// AdaQP is the paper's system: adaptive quantization + overlap.
	AdaQP = core.AdaQP
	// AdaQPUniform quantizes every message at WithUniformBits's width.
	AdaQPUniform = core.AdaQPUniform
	// AdaQPRandom samples each message's width uniformly from {2,4,8}.
	AdaQPRandom = core.AdaQPRandom
	// PipeGCN overlaps communication across iterations via staleness.
	PipeGCN = core.PipeGCN
	// SANCUS avoids communication via staleness-bounded broadcasts.
	SANCUS = core.SANCUS
)

// GNN architectures.
const (
	// GCN uses self-loops + symmetric normalization.
	GCN = core.GCN
	// GraphSAGE uses mean aggregation concatenated with self embeddings.
	GraphSAGE = core.GraphSAGE
)

// Methods lists every training system in declaration order.
func Methods() []Method { return core.Methods() }

// ParseMethod is the inverse of Method.String, also accepting CLI short
// forms ("uniform", "random"), case-insensitively.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ParseModelKind is the inverse of ModelKind.String, also accepting "sage".
func ParseModelKind(s string) (ModelKind, error) { return core.ParseModelKind(s) }

// Partitioning strategies.
type Strategy = partition.Strategy

const (
	// LDG is linear deterministic greedy streaming partitioning.
	LDG = partition.LDG
	// BlockPartition splits nodes into contiguous equal blocks.
	BlockPartition = partition.Block
	// HashPartition scatters nodes pseudo-randomly.
	HashPartition = partition.Hash
)

// PartitionStats reports edge cut, balance and the central/marginal
// decomposition of a deployment.
type PartitionStats = partition.Stats

// Deployment is a dataset partitioned and wired for distributed training.
type Deployment = core.Deployment

// Dataset is a loaded graph dataset with features, labels and masks.
type Dataset = synthetic.Dataset

// LoadDataset loads a registered synthetic dataset at the given scale
// factor (1 = the registry's reference size).
func LoadDataset(name string, scale float64) (*Dataset, error) {
	return synthetic.Load(name, synthetic.Scale(scale))
}

// MustLoadDataset is LoadDataset, panicking on error.
func MustLoadDataset(name string, scale float64) *Dataset {
	return synthetic.MustLoad(name, synthetic.Scale(scale))
}

// DatasetNames lists the registered dataset names.
func DatasetNames() []string { return synthetic.Names() }

// CostModel is the simulated hardware calibration (FLOPS, bandwidth,
// latency, quantization throughput).
type CostModel = timing.CostModel

// Seconds is simulated time.
type Seconds = timing.Seconds

// DefaultCostModel returns the V100 / 100 Gbps calibration the paper's
// testbed uses. Mutate the returned struct to model other hardware.
func DefaultCostModel() *CostModel { return timing.Default() }

// Training measurements, re-exported from the metrics layer.
type (
	// Result is everything one training run produced.
	Result = metrics.RunResult
	// EpochStat is one epoch's record (loss, val accuracy, sim time).
	EpochStat = metrics.EpochStat
	// Breakdown aggregates simulated time by category.
	Breakdown = metrics.Breakdown
	// PhaseBreakdown is one device's per-phase simulated time
	// (Comp/Comm/Quant/Idle/Assign/Overlap), via Result.Phases — the
	// structured form of the Fig. 10 breakdown for programmatic
	// consumers.
	PhaseBreakdown = metrics.PhaseBreakdown
	// Summary holds mean ± std over repeated runs.
	Summary = metrics.Summary
	// FaultStats counts a run's injected faults and recovery work.
	FaultStats = metrics.FaultStats
)

// FaultSpec declares deterministic fault injection for a run (see
// WithFaultPlan): Stragglers devices slowed by SlowFactor (compute) and/or
// LinkFactor (outgoing links), transient collective failures at FailRate
// retried up to MaxRetries times with exponential Backoff, and a device
// crash at CrashEpoch recovered from a checkpoint after RestartPenalty
// seconds of downtime. The zero value injects nothing; Seed (default 1)
// drives the schedule.
type FaultSpec = chaos.Spec

// Summarize aggregates repeated runs of the same configuration.
func Summarize(runs []*Result) Summary { return metrics.Summarize(runs) }

// MessageCodec is the pluggable boundary-message scheme (see package
// core's docs for the contract). Custom codecs registered before New are
// selectable with WithCodec.
type MessageCodec = core.MessageCodec

// CodecFactory builds one device's codec instance for one run.
type CodecFactory = core.CodecFactory

// CodecEnv is the construction-time context a CodecFactory receives;
// ExchangeEnv is the per-device runtime context handed to codec calls.
// Both are re-exported so custom codecs can be written against the
// public package alone.
type (
	CodecEnv    = core.CodecEnv
	ExchangeEnv = core.ExchangeEnv
)

// Optional codec-contract declarations, enforced by VerifyCodec:
// StatefulCodec declares cross-epoch instance state, LossyCodec bounds
// the epoch-0 decode error, and WireAccountant reports exact wire sizes
// for the byte ledger (every codec must implement WireAccountant).
type (
	StatefulCodec  = core.StatefulCodec
	LossyCodec     = core.LossyCodec
	WireAccountant = core.WireAccountant
)

// RegisterCodec makes a message codec selectable by name.
func RegisterCodec(name string, f CodecFactory) { core.RegisterCodec(name, f) }

// LookupCodec resolves a registered codec factory (useful for wrapping or
// delegating to built-in codecs from custom ones).
func LookupCodec(name string) (CodecFactory, error) { return core.LookupCodec(name) }

// Codecs lists the registered message codecs, sorted.
func Codecs() []string { return core.CodecNames() }

// Built-in codec names.
const (
	CodecFP32     = core.CodecFP32
	CodecUniform  = core.CodecUniform
	CodecRandom   = core.CodecRandom
	CodecAdaptive = core.CodecAdaptive
	CodecPipeGCN  = core.CodecPipeGCN
	CodecSancus   = core.CodecSancus
	// CodecEFQuant quantizes every message at WithUniformBits's width and
	// carries the quantization error as a residual into the next epoch.
	CodecEFQuant = core.CodecEFQuant
	// CodecTopK ships only each row's top-⌈density·dim⌉ entries by
	// magnitude (WithTopKDensity).
	CodecTopK = core.CodecTopK
	// CodecDelta ships 8-bit residuals against the previous epoch's
	// payload, refreshed by full-precision keyframes (WithDeltaKeyframe).
	CodecDelta = core.CodecDelta
)

// Transport is the device-side communication surface; Runtime launches
// one Transport per device. A RuntimeFactory builds a Runtime from a
// RuntimeSpec (device count, cost model, worker pool size, staleness
// bound, overlap flag, fault plan).
//
// RuntimeSpec was previously exported as TransportSpec; that name now
// names the grouped WithTransport option instead.
type (
	Transport      = core.Transport
	Runtime        = core.Runtime
	RuntimeFactory = core.RuntimeFactory
	RuntimeSpec    = core.TransportSpec
)

// PendingCollective is the handle of an in-flight split-phase collective
// (Transport.StartBroadcast / StartScatter). Wait must be called exactly
// once per handle, in Start order.
type PendingCollective = core.PendingCollective

// RegisterTransport makes a runtime backend selectable by name.
func RegisterTransport(name string, f RuntimeFactory) { core.RegisterTransport(name, f) }

// LookupTransport resolves a registered runtime backend (useful for
// wrapping or delegating to built-in backends from custom ones).
func LookupTransport(name string) (RuntimeFactory, error) { return core.LookupTransport(name) }

// Transports lists the registered runtime backends, sorted.
func Transports() []string { return core.TransportNames() }

// Built-in transport names.
const (
	// TransportInprocess is the default in-process backend: one goroutine
	// per device, synchronous collectives.
	TransportInprocess = core.TransportInprocess
	// TransportShardedAsync multiplexes devices onto a bounded worker pool
	// (TransportSpec.Workers) with non-blocking sends that let fast
	// devices run ahead of stragglers up to TransportSpec.Staleness
	// collectives.
	TransportShardedAsync = core.TransportShardedAsync
	// TransportProcSharded shards payload routing across
	// TransportSpec.Workers separate OS processes connected by Unix-domain
	// sockets: every collective payload is serialized into a
	// length-prefixed frame and crosses a real kernel socket before its
	// receiver may consume it, while simulated clocks stay bit-identical
	// to the in-process reference. Binaries hosting this backend must call
	// wire.MaybeWorker (internal/wire) first thing in main.
	TransportProcSharded = core.TransportProcSharded
)

// TransportViolation is one conformance failure reported by
// VerifyTransport.
type TransportViolation = core.Violation

// VerifyTransport checks a runtime backend against the Transport
// collective contract (payload delivery, buffer ownership, simulated
// clock charging — including the split-phase overlap charging rule, i.e.
// that compute issued between Start and Wait hides wire time under the
// Overlap phase — and byte accounting) with parts devices, returning nil
// when it conforms. Run it against any custom backend before training on
// it.
func VerifyTransport(f RuntimeFactory, parts int) []TransportViolation {
	return core.ConformTransport(f, parts)
}

// VerifyTransportChaos is VerifyTransport's chaos mode: the collective
// contract re-verified under a matrix of fault plans (compute stragglers,
// slowed links, transient failures with retry/backoff, a device crash with
// checkpoint/restart). It checks that faults never corrupt payloads or
// buffer ownership, that fault charging matches the wrapped in-process
// reference clock-for-clock, that retries re-charge time but never bytes,
// and that a crashed training run replays the doomed epoch bit-identically.
// Run it — in addition to VerifyTransport — before training on any custom
// backend that will face fault injection.
func VerifyTransportChaos(f RuntimeFactory, parts int) []TransportViolation {
	return core.ConformTransportChaos(f, parts)
}

// CodecViolation is one conformance failure reported by VerifyCodec.
type CodecViolation = core.Violation

// VerifyCodec checks a message codec (built by f, exactly as a training
// run would build it) against the codec contract with parts devices:
// decode-of-encode within the declared error bound, exact byte
// accounting against the declared wire sizes, statelessness-or-declared-
// state discipline under instance rebuilds on both transport backends,
// and fixed-seed loss-curve reproducibility including cross-backend
// parity at staleness 0. Run it against any custom codec before training
// with it:
//
//	f, _ := adaqp.LookupCodec("my-codec")
//	if vs := adaqp.VerifyCodec(f, 4); len(vs) > 0 { ... }
func VerifyCodec(f CodecFactory, parts int) []CodecViolation {
	return core.ConformCodec(f, parts)
}
