package adaqp

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// schedTestOptions is a small fixed-seed AdaQP job exercising the
// adaptive codec's cross-epoch state (traces, bit-width re-assignment) —
// the state that would leak between sessions if isolation broke.
func schedTestOptions() []Option {
	return []Option{
		WithParts(2),
		WithMethod(AdaQP),
		WithEpochs(6),
		WithHidden(16),
		WithReassignPeriod(2),
		WithEvalEvery(3),
		WithSeed(7),
	}
}

// TestSchedulerSessionIsolation submits two identical fixed-seed sessions
// concurrently and requires both to reproduce a directly-run Engine's loss
// curve bit for bit: concurrent sessions must share no mutable codec or
// transport state.
func TestSchedulerSessionIsolation(t *testing.T) {
	ds := MustLoadDataset("tiny", 0.5)

	eng, err := New(ds, schedTestOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	sched, err := NewScheduler(WithMaxConcurrentSessions(2), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Drain(context.Background())

	var handles []*SessionHandle
	for i := 0; i < 2; i++ {
		h, err := sched.Submit(ds, schedTestOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		got, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if h.Status() != SessionDone {
			t.Fatalf("session %s status = %v, want done", h.ID(), h.Status())
		}
		if len(got.Epochs) != len(want.Epochs) {
			t.Fatalf("session %s recorded %d epochs, want %d", h.ID(), len(got.Epochs), len(want.Epochs))
		}
		for i := range want.Epochs {
			if got.Epochs[i].Loss != want.Epochs[i].Loss {
				t.Fatalf("session %s epoch %d loss = %v, direct run %v (codec state leaked across sessions?)",
					h.ID(), i, got.Epochs[i].Loss, want.Epochs[i].Loss)
			}
		}
		if got.FinalTest != want.FinalTest || got.FinalVal != want.FinalVal {
			t.Fatalf("session %s final accuracies (%v, %v) != direct run (%v, %v)",
				h.ID(), got.FinalTest, got.FinalVal, want.FinalTest, want.FinalVal)
		}
		if h.EpochsDone() != len(want.Epochs) {
			t.Fatalf("session %s epochs-done = %d, want %d", h.ID(), h.EpochsDone(), len(want.Epochs))
		}
	}
}

// waitEpochs polls until the session has completed at least n epochs.
func waitEpochs(t *testing.T, h *SessionHandle, n int) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for h.EpochsDone() < n {
		select {
		case <-deadline:
			t.Fatalf("session %s stuck at %d epochs, want >= %d", h.ID(), h.EpochsDone(), n)
		case <-time.After(time.Millisecond):
		}
	}
}

// longJob is a session that cannot finish within the test's lifetime
// unless canceled.
func longJob() []Option {
	return []Option{
		WithParts(2), WithMethod(Vanilla), WithEpochs(100000),
		WithHidden(8), WithEvalEvery(0),
	}
}

// TestSchedulerCancelStopsTrainingAndFreesSlot cancels a running session
// and requires (a) it to stop between epochs with the typed ErrCanceled,
// and (b) its worker slot to go to a queued session.
func TestSchedulerCancelStopsTrainingAndFreesSlot(t *testing.T) {
	ds := MustLoadDataset("tiny", 0.25)
	sched, err := NewScheduler(WithMaxConcurrentSessions(1), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Drain(context.Background())

	running, err := sched.Submit(ds, longJob()...)
	if err != nil {
		t.Fatal(err)
	}
	waitEpochs(t, running, 1)

	queued, err := sched.Submit(ds,
		WithParts(2), WithMethod(Vanilla), WithEpochs(2), WithHidden(8), WithEvalEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := queued.Status(); got != SessionQueued {
		t.Fatalf("second session status = %v, want queued", got)
	}

	running.Cancel()
	if _, err := running.Wait(context.Background()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled session error = %v, want ErrCanceled", err)
	}
	if got := running.Status(); got != SessionCanceled {
		t.Fatalf("canceled session status = %v, want canceled", got)
	}
	if done := running.EpochsDone(); done >= 100000 {
		t.Fatalf("canceled session ran all %d epochs", done)
	}

	// The freed slot must let the queued session run to completion.
	res, err := queued.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("queued session recorded %d epochs, want 2", len(res.Epochs))
	}
	c := sched.Counters()
	if c.Canceled != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v, want 1 canceled / 1 completed", c)
	}
}

// TestSchedulerQueueFull fills the single worker slot and the queue, then
// requires the next submission to be rejected with the typed ErrQueueFull.
func TestSchedulerQueueFull(t *testing.T) {
	ds := MustLoadDataset("tiny", 0.25)
	sched, err := NewScheduler(
		WithMaxConcurrentSessions(1), WithQueueDepth(1),
		WithRetryAfter(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	running, err := sched.Submit(ds, longJob()...)
	if err != nil {
		t.Fatal(err)
	}
	waitEpochs(t, running, 1) // the worker slot is now provably occupied
	queued, err := sched.Submit(ds, longJob()...)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sched.Submit(ds, longJob()...); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	if got := sched.RetryAfter(); got != 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want 100ms", got)
	}
	if got := sched.Counters().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	running.Cancel()
	queued.Cancel()
	if err := sched.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Draining scheduler rejects new work with the typed error.
	if _, err := sched.Submit(ds, longJob()...); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
}

// TestSchedulerManyConcurrentJobs drives >100 fixed-seed sessions from
// concurrent clients (with back-off on ErrQueueFull) through a small pool —
// the acceptance load shape, and the -race coverage for the serving path.
func TestSchedulerManyConcurrentJobs(t *testing.T) {
	const (
		clients       = 10
		jobsPerClient = 11 // 110 sessions total
	)
	ds := MustLoadDataset("tiny", 0.25)
	sched, err := NewScheduler(WithMaxConcurrentSessions(4), WithQueueDepth(8),
		WithRetryAfter(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients*jobsPerClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := 0; i < jobsPerClient; i++ {
				for {
					h, err := sched.Submit(ds,
						WithParts(2), WithMethod(Vanilla), WithEpochs(1),
						WithHidden(8), WithEvalEvery(0),
						WithSeed(uint64(client*jobsPerClient+i+1)))
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(sched.RetryAfter())
						continue
					}
					if err != nil {
						errc <- err
						return
					}
					if _, err := h.Wait(context.Background()); err != nil {
						errc <- err
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := sched.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := sched.Counters()
	if want := int64(clients * jobsPerClient); c.Completed != want {
		t.Fatalf("completed = %d, want %d (counters %+v)", c.Completed, want, c)
	}
	if c.Failed != 0 || c.Canceled != 0 {
		t.Fatalf("unexpected failures/cancellations: %+v", c)
	}
	if got := len(sched.Sessions()); got != clients*jobsPerClient {
		t.Fatalf("sessions listed = %d, want %d", got, clients*jobsPerClient)
	}
}

// TestJobSpecOptionsMatchExplicit ensures the declarative JobSpec produces
// the same resolved settings as hand-built options — the one-helper
// guarantee that keeps cmd/adaqp flags and cmd/adaqpd job JSON aligned.
func TestJobSpecOptionsMatchExplicit(t *testing.T) {
	dropout, lambda, evalEvery := 0.0, 0.25, 0
	spec := JobSpec{
		Dataset: "tiny", Scale: 0.5,
		Model: "sage", Method: "uniform", Codec: CodecEFQuant,
		Transport: TransportShardedAsync, Workers: 2, Staleness: 3, Overlap: true,
		Parts: 3, Epochs: 9, Layers: 2, Hidden: 24, LR: 0.02,
		Dropout: &dropout, Lambda: &lambda, EvalEvery: &evalEvery,
		GroupSize: 50, ReassignPeriod: 7, UniformBits: 4,
		TopKDensity: 0.2, DeltaKeyframe: 5, Seed: 11,
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	got := defaultSettings()
	if err := got.apply(opts); err != nil {
		t.Fatal(err)
	}

	explicit := defaultSettings()
	if err := explicit.apply([]Option{
		WithModel(GraphSAGE), WithMethod(AdaQPUniform),
		WithCodec(CodecSpec{Name: CodecEFQuant, UniformBits: 4, TopKDensity: 0.2, DeltaKeyframeEvery: 5}),
		WithTransport(TransportSpec{Name: TransportShardedAsync, Workers: 2, Staleness: 3, Overlap: true}),
		WithParts(3), WithEpochs(9), WithLayers(2), WithHidden(24), WithLR(0.02),
		WithDropout(0), WithLambda(0.25), WithEvalEvery(0),
		WithGroupSize(50), WithReassignPeriod(7), WithSeed(11),
	}); err != nil {
		t.Fatal(err)
	}
	// settings holds func fields (nil in both), so compare via DeepEqual.
	if !reflect.DeepEqual(got, explicit) {
		t.Fatalf("spec-derived settings\n%+v\n!= explicit settings\n%+v", got, explicit)
	}

	// Unknown registry names fail with the registry error, not at run time.
	if _, err := (JobSpec{Dataset: "tiny", Codec: "no-such"}).Options(); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := (JobSpec{Dataset: "tiny", Transport: "no-such"}).Options(); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if _, err := (JobSpec{Dataset: "tiny", Method: "no-such"}).Options(); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := (JobSpec{}).Load(); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
