package adaqp_test

import (
	"testing"

	"repro/pkg/adaqp"
)

// TestProcBackendLossParity pins the proc-sharded backend's numerics to
// the in-process reference through the public API: identical seeds must
// give bit-identical loss curves even though every codec payload is
// serialized into frames and routed through real worker processes over
// Unix-domain sockets. Covered on a quickstart-size deployment and a
// larger multi-part one with a bigger worker fleet and an explicit
// socket-dir override.
func TestProcBackendLossParity(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	deployments := []struct {
		name string
		opts []adaqp.Option
		proc adaqp.TransportSpec
	}{
		{
			name: "quickstart-4part",
			opts: []adaqp.Option{adaqp.WithParts(4)},
			proc: adaqp.TransportSpec{Name: adaqp.TransportProcSharded},
		},
		{
			name: "multipart-6part-3workers",
			opts: []adaqp.Option{adaqp.WithParts(6)},
			proc: adaqp.TransportSpec{
				Name:      adaqp.TransportProcSharded,
				Workers:   3,
				SocketDir: t.TempDir(),
			},
		},
	}
	methods := []adaqp.Method{adaqp.Vanilla, adaqp.AdaQP}

	for _, dep := range deployments {
		t.Run(dep.name, func(t *testing.T) {
			base := append([]adaqp.Option{
				adaqp.WithHidden(32),
				adaqp.WithEpochs(6),
				adaqp.WithEvalEvery(3),
				adaqp.WithReassignPeriod(5),
				adaqp.WithGroupSize(10),
			}, dep.opts...)
			eng, err := adaqp.New(ds, base...)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range methods {
				ref, err := eng.Run(adaqp.WithMethod(m))
				if err != nil {
					t.Fatalf("method %v in-process run: %v", m, err)
				}
				got, err := eng.Run(adaqp.WithMethod(m), adaqp.WithTransport(dep.proc))
				if err != nil {
					t.Fatalf("method %v proc-sharded run: %v", m, err)
				}
				if len(got.Epochs) != len(ref.Epochs) {
					t.Fatalf("method %v: epoch count %d vs %d", m, len(got.Epochs), len(ref.Epochs))
				}
				for i := range ref.Epochs {
					if got.Epochs[i].Loss != ref.Epochs[i].Loss {
						t.Errorf("method %v epoch %d: proc-sharded loss %.9f != in-process %.9f (must be bit-identical)",
							m, i, got.Epochs[i].Loss, ref.Epochs[i].Loss)
					}
				}
				if got.FinalTest != ref.FinalTest {
					t.Errorf("method %v: final test accuracy %.6f != %.6f", m, got.FinalTest, ref.FinalTest)
				}
			}
		})
	}
}
