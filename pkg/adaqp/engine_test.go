package adaqp_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/pkg/adaqp"
)

// tinyOpts is a fast configuration shared by the training tests.
func tinyOpts(extra ...adaqp.Option) []adaqp.Option {
	base := []adaqp.Option{
		adaqp.WithParts(3),
		adaqp.WithHidden(32),
		adaqp.WithEpochs(8),
		adaqp.WithEvalEvery(4),
		adaqp.WithReassignPeriod(5),
		adaqp.WithGroupSize(10),
	}
	return append(base, extra...)
}

func TestNewDefaults(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	dep := eng.Deployment()
	if dep.Assignment.Parts != 4 {
		t.Fatalf("default parts = %d, want 4", dep.Assignment.Parts)
	}
	if eng.Dataset() != ds {
		t.Fatal("Dataset accessor lost the dataset")
	}
	if _, err := adaqp.New(nil); err == nil {
		t.Fatal("nil dataset must be rejected")
	}
}

func TestOptionValidation(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	bad := map[string]adaqp.Option{
		"parts":     adaqp.WithParts(0),
		"epochs":    adaqp.WithEpochs(0),
		"layers":    adaqp.WithLayers(0),
		"hidden":    adaqp.WithHidden(-1),
		"lr":        adaqp.WithLR(0),
		"dropout":   adaqp.WithDropout(1.5),
		"lambda":    adaqp.WithLambda(2),
		"group":     adaqp.WithGroupSize(0),
		"period":    adaqp.WithReassignPeriod(0),
		"bits":      adaqp.WithUniformBits(3),
		"seed":      adaqp.WithSeed(0),
		"eval":      adaqp.WithEvalEvery(-1),
		"sancus":    adaqp.WithSancus(0, 0),
		"density":   adaqp.WithTopKDensity(1.5),
		"density0":  adaqp.WithTopKDensity(0),
		"keyframe":  adaqp.WithDeltaKeyframe(0),
		"costmodel": adaqp.WithCostModel(nil),
		"method":    adaqp.WithMethod(adaqp.Method(42)),
		"model":     adaqp.WithModel(adaqp.ModelKind(42)),
	}
	for name, opt := range bad {
		if _, err := adaqp.New(ds, opt); err == nil {
			t.Fatalf("option %q with an invalid value must error", name)
		}
	}
}

func TestUnknownCodecAndTransportRejected(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	_, err := adaqp.New(ds, adaqp.WithCodec(adaqp.CodecSpec{Name: "no-such-codec"}))
	if err == nil || !strings.Contains(err.Error(), "no-such-codec") {
		t.Fatalf("unknown codec must be rejected by name: %v", err)
	}
	_, err = adaqp.New(ds, adaqp.WithTransport(adaqp.TransportSpec{Name: "no-such-transport"}))
	if err == nil || !strings.Contains(err.Error(), "no-such-transport") {
		t.Fatalf("unknown transport must be rejected by name: %v", err)
	}
}

func TestCodecRegistryLookup(t *testing.T) {
	have := map[string]bool{}
	for _, n := range adaqp.Codecs() {
		have[n] = true
	}
	for _, want := range []string{
		adaqp.CodecFP32, adaqp.CodecUniform, adaqp.CodecAdaptive,
		adaqp.CodecSancus, adaqp.CodecRandom, adaqp.CodecPipeGCN,
		adaqp.CodecEFQuant, adaqp.CodecTopK, adaqp.CodecDelta,
	} {
		if !have[want] {
			t.Fatalf("codec %q missing from registry: %v", want, adaqp.Codecs())
		}
	}
	if _, err := adaqp.LookupCodec(adaqp.CodecSancus); err != nil {
		t.Fatal(err)
	}
	if _, err := adaqp.LookupCodec("bogus"); err == nil {
		t.Fatal("unknown codec lookup must error")
	}
}

// TestCustomCodecRegistration registers a delegating codec under a new
// name and trains with it: the registry, not the Method switch, selects
// the scheme, so the run must match the built-in bit for bit.
func TestCustomCodecRegistration(t *testing.T) {
	fp32, err := adaqp.LookupCodec(adaqp.CodecFP32)
	if err != nil {
		t.Fatal(err)
	}
	adaqp.RegisterCodec("test-delegating-fp32", fp32)

	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds, tinyOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Run(adaqp.WithMethod(adaqp.Vanilla))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(adaqp.WithMethod(adaqp.Vanilla), adaqp.WithCodec(adaqp.CodecSpec{Name: "test-delegating-fp32"}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Codec != "test-delegating-fp32" {
		t.Fatalf("run did not record the custom codec: %q", got.Codec)
	}
	for i := range ref.Epochs {
		if ref.Epochs[i].Loss != got.Epochs[i].Loss {
			t.Fatalf("epoch %d: custom codec diverged (%v vs %v)", i, got.Epochs[i].Loss, ref.Epochs[i].Loss)
		}
	}
}

// TestCompressionCodecsTrainPublicAPI trains each new compression codec
// through the Engine API with its knob set off-default, checking the run
// records the codec and produces a finite, reproducible loss curve.
func TestCompressionCodecsTrainPublicAPI(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds, tinyOpts(
		adaqp.WithUniformBits(4),
		adaqp.WithTopKDensity(0.2),
		adaqp.WithDeltaKeyframe(3))...)
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []string{adaqp.CodecEFQuant, adaqp.CodecTopK, adaqp.CodecDelta} {
		a, err := eng.Run(adaqp.WithCodec(adaqp.CodecSpec{Name: codec}))
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if a.Codec != codec {
			t.Fatalf("run recorded codec %q, want %q", a.Codec, codec)
		}
		b, err := eng.Run(adaqp.WithCodec(adaqp.CodecSpec{Name: codec}))
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		for i := range a.Epochs {
			if loss := a.Epochs[i].Loss; math.IsNaN(loss) || math.IsInf(loss, 0) {
				t.Fatalf("%s epoch %d: loss %v", codec, i, loss)
			}
			if a.Epochs[i].Loss != b.Epochs[i].Loss {
				t.Fatalf("%s epoch %d: repeated run diverged (%v vs %v)", codec, i, a.Epochs[i].Loss, b.Epochs[i].Loss)
			}
		}
	}
}

// TestVerifyCodecPublicAPI runs the codec-contract suite through the
// public seam: a built-in codec passes, and a wrapper that corrupts
// decoded halos without declaring loss is caught.
func TestVerifyCodecPublicAPI(t *testing.T) {
	f, err := adaqp.LookupCodec(adaqp.CodecTopK)
	if err != nil {
		t.Fatal(err)
	}
	if vs := adaqp.VerifyCodec(f, 3); len(vs) > 0 {
		t.Fatalf("built-in topk codec failed conformance: %v", vs)
	}
	errFactory := func(*adaqp.CodecEnv) (adaqp.MessageCodec, error) {
		return nil, errors.New("deliberately unconstructible")
	}
	if vs := adaqp.VerifyCodec(errFactory, 3); len(vs) == 0 {
		t.Fatal("a factory that cannot build codecs must fail conformance")
	}
	if vs := adaqp.VerifyCodec(nil, 3); len(vs) == 0 {
		t.Fatal("a nil factory must fail conformance")
	}
	if vs := adaqp.VerifyCodec(f, 1); len(vs) == 0 {
		t.Fatal("parts < 2 must be rejected")
	}
}

// TestFP32PassthroughParity: quantized exchange at the 32-bit passthrough
// must reproduce the fp32 codec's loss trajectory exactly — only the
// simulated schedule (overlap vs serial) may differ.
func TestFP32PassthroughParity(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds, tinyOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := eng.Run(adaqp.WithMethod(adaqp.Vanilla))
	if err != nil {
		t.Fatal(err)
	}
	pass, err := eng.Run(adaqp.WithMethod(adaqp.AdaQPUniform), adaqp.WithUniformBits(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Epochs) != len(pass.Epochs) {
		t.Fatalf("epoch count mismatch: %d vs %d", len(fp.Epochs), len(pass.Epochs))
	}
	for i := range fp.Epochs {
		if fp.Epochs[i].Loss != pass.Epochs[i].Loss {
			t.Fatalf("epoch %d: passthrough loss %v != fp32 loss %v",
				i, pass.Epochs[i].Loss, fp.Epochs[i].Loss)
		}
	}
	if fp.FinalTest != pass.FinalTest {
		t.Fatalf("final test accuracy differs: %v vs %v", pass.FinalTest, fp.FinalTest)
	}
	// And a genuinely quantized width must NOT match — the parity above is
	// meaningful only if quantization normally changes the trajectory.
	q2, err := eng.Run(adaqp.WithMethod(adaqp.AdaQPUniform), adaqp.WithUniformBits(2))
	if err != nil {
		t.Fatal(err)
	}
	if q2.Epochs[len(q2.Epochs)-1].Loss == fp.Epochs[len(fp.Epochs)-1].Loss {
		t.Fatal("2-bit run should diverge from fp32")
	}
}

func TestEpochCallback(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	var seen []adaqp.EpochStat
	eng, err := adaqp.New(ds, tinyOpts(
		adaqp.WithMethod(adaqp.AdaQP),
		adaqp.WithEpochCallback(func(e adaqp.EpochStat) { seen = append(seen, e) }))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Epochs) {
		t.Fatalf("callback saw %d epochs, result has %d", len(seen), len(res.Epochs))
	}
	sameAcc := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for i, e := range seen {
		r := res.Epochs[i]
		if e.Epoch != r.Epoch || e.Loss != r.Loss || e.SimTime != r.SimTime || !sameAcc(e.ValAcc, r.ValAcc) {
			t.Fatalf("epoch %d: callback stat %+v != recorded %+v", i, e, r)
		}
		if i > 0 && e.SimTime < seen[i-1].SimTime {
			t.Fatalf("epoch %d: simulated time went backwards", i)
		}
	}
}

func TestSessionsShareDeployment(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds, tinyOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Session(adaqp.WithMethod(adaqp.Vanilla))
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Session(adaqp.WithMethod(adaqp.SANCUS))
	if err != nil {
		t.Fatal(err)
	}
	if a.Deployment() != b.Deployment() {
		t.Fatal("method overrides must reuse the engine's partitioning")
	}
	c, err := eng.Session(adaqp.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	if dep := c.Deployment(); dep.Assignment.Parts != 2 {
		t.Fatalf("parts override ignored: %d", dep.Assignment.Parts)
	}
}

func TestEngineRunRecordsCodec(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds, tinyOpts(adaqp.WithMethod(adaqp.AdaQP))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Codec != adaqp.CodecAdaptive {
		t.Fatalf("AdaQP run recorded codec %q, want %q", res.Codec, adaqp.CodecAdaptive)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if math.IsNaN(last.Loss) || math.IsInf(last.Loss, 0) {
		t.Fatalf("non-finite loss %v", last.Loss)
	}
	if res.WallClock <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestAnalyzeAndPairBytes(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds, adaqp.WithParts(4), adaqp.WithHidden(32))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 4 {
		t.Fatalf("want 4 device reports, got %d", len(rep))
	}
	if _, err := eng.Analyze(5); err == nil {
		t.Fatal("invalid bit-width must error")
	}
	// The 32-bit passthrough must analyze as full precision, not panic in
	// the packing size math.
	fp, err := eng.Analyze(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep {
		if fp[i].CommSeconds <= rep[i].CommSeconds {
			t.Fatalf("device %d: full-precision comm %v not above 2-bit %v",
				i, fp[i].CommSeconds, rep[i].CommSeconds)
		}
	}
	pairs := eng.PairBytes()
	var total int
	for _, row := range pairs {
		for _, b := range row {
			total += b
		}
	}
	if total <= 0 {
		t.Fatal("no cross-device traffic reported for a 4-way partition")
	}
}

// TestShardedTransportPublicAPI drives the sharded-async backend through
// the options surface: a lockstep run must match the in-process transport
// bit for bit, and a bounded pool with a staleness window must preserve
// the loss curve while only the simulated schedule changes.
func TestShardedTransportPublicAPI(t *testing.T) {
	ds := adaqp.MustLoadDataset("tiny", 1)
	eng, err := adaqp.New(ds, tinyOpts(adaqp.WithMethod(adaqp.SANCUS))...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	lockstep, err := eng.Run(adaqp.WithTransport(adaqp.TransportSpec{Name: adaqp.TransportShardedAsync}))
	if err != nil {
		t.Fatal(err)
	}
	async, err := eng.Run(adaqp.WithTransport(adaqp.TransportSpec{
		Name: adaqp.TransportShardedAsync, Workers: 2, Staleness: 8,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Epochs {
		if lockstep.Epochs[i].Loss != ref.Epochs[i].Loss {
			t.Fatalf("epoch %d: lockstep sharded loss %v != in-process %v", i, lockstep.Epochs[i].Loss, ref.Epochs[i].Loss)
		}
		if lockstep.Epochs[i].SimTime != ref.Epochs[i].SimTime {
			t.Fatalf("epoch %d: lockstep sharded sim time %v != in-process %v", i, lockstep.Epochs[i].SimTime, ref.Epochs[i].SimTime)
		}
		if async.Epochs[i].Loss != ref.Epochs[i].Loss {
			t.Fatalf("epoch %d: staleness-8 loss %v != in-process %v", i, async.Epochs[i].Loss, ref.Epochs[i].Loss)
		}
	}
	if async.WallClock > ref.WallClock {
		t.Fatalf("staleness-8 wall-clock %v exceeds synchronous %v", async.WallClock, ref.WallClock)
	}
	for name, opt := range map[string]adaqp.Option{
		"workers":           adaqp.WithWorkers(-1),
		"staleness":         adaqp.WithStalenessBound(-1),
		"spec-workers":      adaqp.WithTransport(adaqp.TransportSpec{Workers: -1}),
		"spec-staleness":    adaqp.WithTransport(adaqp.TransportSpec{Staleness: -1}),
		"spec-bits":         adaqp.WithCodec(adaqp.CodecSpec{UniformBits: 3}),
		"spec-density":      adaqp.WithCodec(adaqp.CodecSpec{TopKDensity: 1.5}),
		"spec-keyframe":     adaqp.WithCodec(adaqp.CodecSpec{DeltaKeyframeEvery: -2}),
		"spec-sancus-drift": adaqp.WithCodec(adaqp.CodecSpec{SancusMaxStale: 3}),
	} {
		if _, err := adaqp.New(ds, opt); err == nil {
			t.Fatalf("option %q with a negative value must error", name)
		}
	}
	if vs := adaqp.VerifyTransport(func(spec adaqp.RuntimeSpec) adaqp.Runtime {
		f, err := adaqp.LookupTransport(adaqp.TransportShardedAsync)
		if err != nil {
			t.Fatal(err)
		}
		spec.Workers = 2
		return f(spec)
	}, 4); len(vs) != 0 {
		t.Fatalf("public conformance surface reported violations: %v", vs)
	}
}

func TestParseRoundTripPublic(t *testing.T) {
	for _, m := range adaqp.Methods() {
		got, err := adaqp.ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, k := range []adaqp.ModelKind{adaqp.GCN, adaqp.GraphSAGE} {
		got, err := adaqp.ParseModelKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseModelKind(%q) = %v, %v", k.String(), got, err)
		}
	}
}
