package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitTerminalRecorded waits until the session's finish timestamp lands
// (Status alone can report Canceled before the worker records the finish).
func waitTerminalRecorded(t *testing.T, sess *Session) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if _, _, fin := sess.Times(); !fin.IsZero() {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("session %s never recorded a finish time", sess.ID())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestRetentionBoundsTerminalSessions(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8, MaxRetained: 2})
	defer s.Drain(context.Background())

	var finished []*Session
	for i := 0; i < 4; i++ {
		sess, err := s.Submit(instantRun(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		finished = append(finished, sess)
	}
	// A fifth submission triggers eviction of the oldest terminal records.
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit(blockingRun(nil, release)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Session(finished[0].ID()); ok {
		t.Errorf("oldest terminal session %s survived a MaxRetained=2 bound", finished[0].ID())
	}
	if _, ok := s.Session(finished[3].ID()); !ok {
		t.Errorf("newest terminal session %s was evicted", finished[3].ID())
	}
	if got := len(s.Sessions()); got != 3 {
		t.Errorf("retained %d sessions, want 2 terminal + 1 running = 3", got)
	}
}

func TestRetentionNeverEvictsLiveSessions(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8, MaxRetained: -1, RetainFor: time.Nanosecond})
	started := make(chan string, 1)
	release := make(chan struct{})
	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(blockingRun(nil, release))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // far past the TTL
	if _, ok := s.Session(running.ID()); !ok {
		t.Error("running session evicted by TTL")
	}
	if _, ok := s.Session(queued.ID()); !ok {
		t.Error("queued session evicted by TTL")
	}
	close(release)
	if _, err := running.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Drain(context.Background())
}

func TestRetentionTTLEvictsOnAccess(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4, RetainFor: 5 * time.Millisecond})
	defer s.Drain(context.Background())
	sess, err := s.Submit(instantRun("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Session(sess.ID()); !ok {
		t.Fatal("terminal session gone before its TTL")
	}
	time.Sleep(10 * time.Millisecond)
	if _, ok := s.Session(sess.ID()); ok {
		t.Error("terminal session survived past RetainFor")
	}
	if got := len(s.Sessions()); got != 0 {
		t.Errorf("%d sessions listed after TTL expiry, want 0", got)
	}
}

func TestRemoveTerminalOnly(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4})
	started := make(chan string, 1)
	release := make(chan struct{})
	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if known, err := s.Remove(running.ID()); !known || !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("Remove(running) = (%v, %v), want (true, ErrNotTerminal)", known, err)
	}
	close(release)
	if _, err := running.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitTerminalRecorded(t, running)
	if known, err := s.Remove(running.ID()); !known || err != nil {
		t.Fatalf("Remove(done) = (%v, %v), want (true, nil)", known, err)
	}
	if _, ok := s.Session(running.ID()); ok {
		t.Error("removed session still retrievable")
	}
	if known, _ := s.Remove(running.ID()); known {
		t.Error("second Remove reported the id as known")
	}
	s.Drain(context.Background())
}
