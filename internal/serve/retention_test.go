package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitTerminalRecorded waits until the session's finish timestamp lands
// (Status alone can report Canceled before the worker records the finish).
func waitTerminalRecorded(t *testing.T, sess *Session) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if _, _, fin := sess.Times(); !fin.IsZero() {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("session %s never recorded a finish time", sess.ID())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestRetentionBoundsTerminalSessions(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8, MaxRetained: 2})
	defer s.Drain(context.Background())

	var finished []*Session
	for i := 0; i < 4; i++ {
		sess, err := s.Submit(instantRun(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		finished = append(finished, sess)
	}
	// A fifth submission triggers eviction of the oldest terminal records.
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit(blockingRun(nil, release)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Session(finished[0].ID()); ok {
		t.Errorf("oldest terminal session %s survived a MaxRetained=2 bound", finished[0].ID())
	}
	if _, ok := s.Session(finished[3].ID()); !ok {
		t.Errorf("newest terminal session %s was evicted", finished[3].ID())
	}
	if got := len(s.Sessions()); got != 3 {
		t.Errorf("retained %d sessions, want 2 terminal + 1 running = 3", got)
	}
}

func TestRetentionNeverEvictsLiveSessions(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8, MaxRetained: -1, RetainFor: time.Nanosecond})
	started := make(chan string, 1)
	release := make(chan struct{})
	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(blockingRun(nil, release))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // far past the TTL
	if _, ok := s.Session(running.ID()); !ok {
		t.Error("running session evicted by TTL")
	}
	if _, ok := s.Session(queued.ID()); !ok {
		t.Error("queued session evicted by TTL")
	}
	close(release)
	if _, err := running.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Drain(context.Background())
}

func TestRetentionTTLEvictsOnAccess(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4, RetainFor: 5 * time.Millisecond})
	defer s.Drain(context.Background())
	sess, err := s.Submit(instantRun("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Session(sess.ID()); !ok {
		t.Fatal("terminal session gone before its TTL")
	}
	time.Sleep(10 * time.Millisecond)
	if _, ok := s.Session(sess.ID()); ok {
		t.Error("terminal session survived past RetainFor")
	}
	if got := len(s.Sessions()); got != 0 {
		t.Errorf("%d sessions listed after TTL expiry, want 0", got)
	}
}

func TestRemoveTerminalOnly(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4})
	started := make(chan string, 1)
	release := make(chan struct{})
	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if known, err := s.Remove(running.ID()); !known || !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("Remove(running) = (%v, %v), want (true, ErrNotTerminal)", known, err)
	}
	close(release)
	if _, err := running.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitTerminalRecorded(t, running)
	if known, err := s.Remove(running.ID()); !known || err != nil {
		t.Fatalf("Remove(done) = (%v, %v), want (true, nil)", known, err)
	}
	if _, ok := s.Session(running.ID()); ok {
		t.Error("removed session still retrievable")
	}
	if known, _ := s.Remove(running.ID()); known {
		t.Error("second Remove reported the id as known")
	}
	s.Drain(context.Background())
}

// TestCanceledQueuedSessionFreesSlotAndEvicts covers the admission-queue
// gap: a job canceled while still queued — its session never started —
// must still release its queue slot once a worker discards it, count as
// Canceled, and be evictable under MaxRetained exactly like any other
// terminal session.
func TestCanceledQueuedSessionFreesSlotAndEvicts(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 2, MaxRetained: 1})
	defer s.Drain(context.Background())
	started := make(chan string, 1)
	release := make(chan struct{})

	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now occupied
	q1, err := s.Submit(blockingRun(nil, release))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Submit(blockingRun(nil, release))
	if err != nil {
		t.Fatal(err)
	}
	// Queue full: the admission slots are exhausted.
	if _, err := s.Submit(instantRun(nil)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}

	// Cancel both queued sessions before they ever start.
	for _, sess := range []*Session{q1, q2} {
		if !s.Cancel(sess.ID()) {
			t.Fatalf("Cancel(%s) = false for a queued session", sess.ID())
		}
	}

	// Let the worker go: it finishes the running session, then dequeues
	// and discards both canceled ones, recording their finish without
	// running them.
	close(release)
	if _, err := running.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, sess := range []*Session{q1, q2} {
		waitTerminalRecorded(t, sess)
		if got := sess.Status(); got != Canceled {
			t.Errorf("session %s status = %v, want Canceled", sess.ID(), got)
		}
		if _, start, _ := sess.Times(); !start.IsZero() {
			t.Errorf("session %s has a start time but was canceled while queued", sess.ID())
		}
	}
	if got := s.Counters().Canceled; got != 2 {
		t.Errorf("canceled counter = %d, want 2", got)
	}

	// The discarded sessions freed their queue slots: a fresh submission
	// is admitted and runs.
	waitTerminalRecorded(t, running)
	fresh, err := s.Submit(instantRun("fresh"))
	if err != nil {
		t.Fatalf("submit after canceled sessions drained: %v", err)
	}
	if _, err := fresh.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// That submission also triggered eviction: three terminal records
	// existed (done + two canceled) against MaxRetained=1, so the oldest
	// — including the canceled-while-queued ones — must be gone.
	if _, ok := s.Session(running.ID()); ok {
		t.Error("oldest terminal session survived MaxRetained=1")
	}
	if _, ok := s.Session(q1.ID()); ok {
		t.Error("canceled-while-queued session survived MaxRetained=1 eviction")
	}
}
