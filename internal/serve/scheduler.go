// Package serve runs many sessions concurrently from one long-lived
// process: a Scheduler admits work into a bounded queue, a fixed pool of
// workers executes it, and every session carries its own cancellation
// context — the serving layer the ROADMAP's "heavy traffic" north star
// needs on top of the one-shot training Engine.
//
// The package is deliberately generic: a session is any
// func(ctx, *Session) (any, error). The adaqp binding (per-session Engine
// construction, epoch-progress streaming) lives in pkg/adaqp; the HTTP
// front end in cmd/adaqpd. Keeping the scheduler free of training types
// lets its admission-control and drain semantics be tested with
// channel-controlled fake sessions, deterministically.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Admission-control errors. Submit wraps neither: errors.Is works directly.
var (
	// ErrQueueFull is returned when the session queue is at capacity.
	// Callers should back off and retry (the HTTP layer maps this to
	// 429 with a Retry-After header).
	ErrQueueFull = errors.New("serve: session queue full")
	// ErrDraining is returned once Drain has begun: in-flight and queued
	// sessions complete, new ones are rejected.
	ErrDraining = errors.New("serve: scheduler draining")
	// ErrNotTerminal is returned by Remove for a session still queued or
	// running: cancel it first, or wait for it to finish.
	ErrNotTerminal = errors.New("serve: session not terminal")
)

// Status is a session's lifecycle state.
type Status int

const (
	// Queued: admitted, waiting for a worker slot.
	Queued Status = iota
	// Running: executing on a worker.
	Running
	// Done: completed successfully; Result holds the outcome.
	Done
	// Failed: completed with an error other than cancellation.
	Failed
	// Canceled: stopped by Cancel before or during execution.
	Canceled
)

func (s Status) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// RunFunc executes one session's work. It must return promptly once ctx is
// canceled (the trainer polls between epochs). sess is the session's own
// record, for progress reporting via SetProgress.
type RunFunc func(ctx context.Context, sess *Session) (any, error)

// Options configures a Scheduler.
type Options struct {
	// MaxConcurrent is the worker-pool size: how many sessions execute
	// simultaneously (<= 0 selects 2).
	MaxConcurrent int
	// QueueDepth bounds how many admitted sessions may wait for a worker
	// (<= 0 selects 16). Submissions beyond it get ErrQueueFull.
	QueueDepth int
	// RetryAfter is the back-off hint attached to queue-full rejections
	// (<= 0 selects 1s). The scheduler itself never sleeps on it.
	RetryAfter time.Duration
	// MaxRetained bounds how many terminal sessions are kept around for
	// result retrieval; beyond it the oldest terminal sessions are evicted
	// (0 selects 1024, negative means unlimited). Queued and running
	// sessions never count against the bound and are never evicted.
	MaxRetained int
	// RetainFor additionally evicts terminal sessions this long after
	// they finished (0 means no TTL).
	RetainFor time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxRetained == 0 {
		o.MaxRetained = 1024
	}
	return o
}

// Counters is a point-in-time snapshot of the scheduler's lifetime
// counters and live gauges (the /metrics surface).
type Counters struct {
	Submitted int64 // admitted into the queue
	Started   int64 // began executing on a worker
	Completed int64 // finished successfully
	Failed    int64 // finished with a non-cancellation error
	Canceled  int64 // stopped by Cancel (queued or running)
	Rejected  int64 // refused admission (queue full or draining)

	QueueDepth int // sessions waiting for a worker right now
	Running    int // sessions executing right now
}

// Scheduler runs sessions over a bounded worker pool with admission
// control. All methods are safe for concurrent use.
type Scheduler struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string
	nextID   int64
	draining bool

	queue chan *Session
	wg    sync.WaitGroup

	submitted, started, completed atomic.Int64
	failed, canceled, rejected    atomic.Int64
	running                       atomic.Int64
}

// New starts a scheduler with opts.MaxConcurrent workers. Call Drain to
// shut it down.
func New(opts Options) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		opts:     opts,
		sessions: make(map[string]*Session),
		queue:    make(chan *Session, opts.QueueDepth),
	}
	for i := 0; i < opts.MaxConcurrent; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for sess := range s.queue {
				s.execute(sess)
			}
		}()
	}
	return s
}

// Options returns the resolved configuration (defaults filled in).
func (s *Scheduler) Options() Options { return s.opts }

// Submit admits a session. It never blocks: when the queue is full it
// returns ErrQueueFull (back off by Options.RetryAfter and retry), and
// after Drain has begun it returns ErrDraining.
func (s *Scheduler) Submit(run RunFunc) (*Session, error) {
	if run == nil {
		return nil, errors.New("serve: nil run function")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Add(1)
		return nil, ErrDraining
	}
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	sess := &Session{
		id:        fmt.Sprintf("job-%d", s.nextID),
		run:       run,
		ctx:       ctx,
		cancel:    cancel,
		status:    Queued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- sess:
	default:
		s.nextID--
		cancel()
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.sessions[sess.id] = sess
	s.order = append(s.order, sess.id)
	s.submitted.Add(1)
	s.evictLocked(time.Now())
	return sess, nil
}

// evictable reports whether the session may be dropped from retention:
// truly finished (not merely canceled-while-queued, whose worker discard
// is still pending) and, with a TTL, finished long enough ago.
func evictable(sess *Session, now time.Time, ttl time.Duration) bool {
	if !sess.Status().Terminal() {
		return false
	}
	_, _, finished := sess.Times()
	if finished.IsZero() {
		return false
	}
	return ttl > 0 && now.Sub(finished) >= ttl
}

// evictLocked enforces the retention policy: first the TTL pass, then the
// count bound, evicting the oldest terminal sessions (submission order)
// until at most MaxRetained remain. Callers hold s.mu.
func (s *Scheduler) evictLocked(now time.Time) {
	if s.opts.RetainFor > 0 {
		kept := s.order[:0]
		for _, id := range s.order {
			if evictable(s.sessions[id], now, s.opts.RetainFor) {
				delete(s.sessions, id)
			} else {
				kept = append(kept, id)
			}
		}
		s.order = kept
	}
	if s.opts.MaxRetained < 0 {
		return
	}
	terminal := 0
	for _, id := range s.order {
		sess := s.sessions[id]
		if _, _, finished := sess.Times(); sess.Status().Terminal() && !finished.IsZero() {
			terminal++
		}
	}
	if terminal <= s.opts.MaxRetained {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		sess := s.sessions[id]
		_, _, finished := sess.Times()
		if terminal > s.opts.MaxRetained && sess.Status().Terminal() && !finished.IsZero() {
			delete(s.sessions, id)
			terminal--
		} else {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// Remove deletes a terminal session from retention, releasing its record
// immediately instead of waiting for eviction. It reports whether the id
// was known; removing a queued or running session fails with
// ErrNotTerminal (cancel it first, then remove once terminal).
func (s *Scheduler) Remove(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return false, nil
	}
	_, _, finished := sess.Times()
	if !sess.Status().Terminal() || finished.IsZero() {
		return true, ErrNotTerminal
	}
	delete(s.sessions, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true, nil
}

// execute runs one dequeued session on the calling worker.
func (s *Scheduler) execute(sess *Session) {
	// Canceled while still queued: release the slot without running.
	if sess.ctx.Err() != nil {
		s.canceled.Add(1)
		sess.finish(Canceled, nil, context.Cause(sess.ctx))
		return
	}
	sess.markRunning()
	s.started.Add(1)
	s.running.Add(1)
	result, err := sess.run(sess.ctx, sess)
	s.running.Add(-1)
	switch {
	case err == nil:
		s.completed.Add(1)
		sess.finish(Done, result, nil)
	case sess.ctx.Err() != nil:
		// The session's own context was canceled; however the run
		// surfaced it, the session ends Canceled, not Failed.
		s.canceled.Add(1)
		sess.finish(Canceled, nil, err)
	default:
		s.failed.Add(1)
		sess.finish(Failed, nil, err)
	}
}

// Session returns the session with the given id. TTL-expired sessions are
// evicted on access, so a session past RetainFor is no longer found.
func (s *Scheduler) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(time.Now())
	sess, ok := s.sessions[id]
	return sess, ok
}

// Sessions lists every retained session in submission order.
func (s *Scheduler) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(time.Now())
	out := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id])
	}
	return out
}

// Cancel requests cancellation of the session with the given id and
// reports whether the id was known. Queued sessions are discarded when a
// worker reaches them; running sessions stop at their next cancellation
// poll and release their worker slot.
func (s *Scheduler) Cancel(id string) bool {
	sess, ok := s.Session(id)
	if !ok {
		return false
	}
	sess.Cancel()
	return true
}

// Drain stops admission (Submit returns ErrDraining) and waits for every
// queued and running session to finish, or for ctx to expire. Drain is
// idempotent; concurrent calls all wait for the same completion.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Counters snapshots the lifetime counters and live gauges.
func (s *Scheduler) Counters() Counters {
	return Counters{
		Submitted:  s.submitted.Load(),
		Started:    s.started.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Canceled:   s.canceled.Load(),
		Rejected:   s.rejected.Load(),
		QueueDepth: len(s.queue),
		Running:    int(s.running.Load()),
	}
}

// Session is one unit of admitted work. Its accessors are safe for
// concurrent use with the executing worker.
type Session struct {
	id     string
	run    RunFunc
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   Status
	result   any
	err      error
	started  time.Time
	finished time.Time

	submitted time.Time
	progress  atomic.Int64
	done      chan struct{}
}

// ID is the scheduler-assigned identifier ("job-N").
func (j *Session) ID() string { return j.id }

// Status returns the current lifecycle state. A canceled-while-queued
// session reports Canceled as soon as the request lands, even before a
// worker discards it.
func (j *Session) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == Queued && j.ctx.Err() != nil {
		return Canceled
	}
	return j.status
}

// Progress returns the session's progress counter (for training sessions,
// epochs completed).
func (j *Session) Progress() int64 { return j.progress.Load() }

// SetProgress records the session's progress counter.
func (j *Session) SetProgress(n int64) { j.progress.Store(n) }

// Cancel requests cancellation. Safe to call in any state; terminal
// sessions are unaffected.
func (j *Session) Cancel() { j.cancel() }

// Done is closed when the session reaches a terminal state.
func (j *Session) Done() <-chan struct{} { return j.done }

// Wait blocks until the session is terminal or ctx expires, then returns
// Result's values.
func (j *Session) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the session's outcome: (result, nil) after Done,
// (nil, error) after Failed or Canceled, and (nil, nil) while the session
// is still queued or running.
func (j *Session) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Times returns the submission, start and finish timestamps; zero values
// mark stages not yet reached.
func (j *Session) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

func (j *Session) markRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = Running
	j.started = time.Now()
}

func (j *Session) finish(st Status, result any, err error) {
	if st == Canceled && err == nil {
		err = context.Canceled
	}
	j.mu.Lock()
	j.status = st
	j.result = result
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context's resources in every terminal path
	close(j.done)
}
