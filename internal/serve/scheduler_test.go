package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// blockingRun returns a RunFunc that signals on started, then blocks until
// release is closed or the session is canceled.
func blockingRun(started chan<- string, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, sess *Session) (any, error) {
		if started != nil {
			started <- sess.ID()
		}
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func instantRun(result any) RunFunc {
	return func(ctx context.Context, sess *Session) (any, error) { return result, nil }
}

func waitStatus(t *testing.T, sess *Session, want Status) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if sess.Status() == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("session %s stuck at %v, want %v", sess.ID(), sess.Status(), want)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := New(Options{MaxConcurrent: 2, QueueDepth: 4})
	defer s.Drain(context.Background())

	sess, err := s.Submit(instantRun(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res != 42 {
		t.Fatalf("result = %v, want 42", res)
	}
	if got := sess.Status(); got != Done {
		t.Fatalf("status = %v, want done", got)
	}
	sub, start, fin := sess.Times()
	if sub.IsZero() || start.IsZero() || fin.IsZero() {
		t.Fatalf("timestamps not all set: %v %v %v", sub, start, fin)
	}
}

func TestQueueFullRejectsWithTypedError(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 250 * time.Millisecond})
	started := make(chan string, 8)
	release := make(chan struct{})

	// One running, one queued: the pool and queue are now full.
	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(blockingRun(nil, release))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Submit(instantRun(nil)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	if got := s.Counters().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if got := s.Options().RetryAfter; got != 250*time.Millisecond {
		t.Fatalf("retry-after = %v, want 250ms", got)
	}

	close(release)
	for _, sess := range []*Session{running, queued} {
		if _, err := sess.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCancelRunningFreesSlotForQueued(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4})
	defer s.Drain(context.Background())
	started := make(chan string, 8)
	release := make(chan struct{})

	first, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // first occupies the only worker slot
	second, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Status(); got != Queued {
		t.Fatalf("second status = %v, want queued", got)
	}

	// Canceling the running session must release the slot to the queued one.
	if !s.Cancel(first.ID()) {
		t.Fatal("Cancel(first) = false")
	}
	waitStatus(t, first, Canceled)
	if got := <-started; got != second.ID() {
		t.Fatalf("next started session = %s, want %s", got, second.ID())
	}
	close(release)
	if _, err := second.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Canceled != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v, want 1 canceled / 1 completed", c)
	}
}

func TestCancelQueuedSkipsExecution(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4})
	started := make(chan string, 8)
	release := make(chan struct{})

	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if got := queued.Status(); got != Canceled {
		t.Fatalf("status after queued cancel = %v, want canceled", got)
	}

	close(release)
	if _, err := running.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled session error = %v, want context.Canceled", err)
	}
	if got := s.Counters().Started; got != 1 {
		t.Fatalf("started counter = %d, want 1 (canceled session must not run)", got)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDrainCompletesInFlightAndRejectsNew(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4})
	started := make(chan string, 8)
	release := make(chan struct{})

	running, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(blockingRun(started, release))
	if err != nil {
		t.Fatal(err)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()

	// Drain must reject new work immediately...
	deadline := time.After(5 * time.Second)
	for {
		if _, err := s.Submit(instantRun(nil)); errors.Is(err, ErrDraining) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("Submit never returned ErrDraining")
		case <-time.After(time.Millisecond):
		}
	}
	// ...while a bounded-context Drain reports the still-running work.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded drain error = %v, want deadline exceeded", err)
	}

	// ...and still complete both in-flight sessions.
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatal(err)
	}
	for _, sess := range []*Session{running, queued} {
		if got := sess.Status(); got != Done {
			t.Fatalf("session %s status = %v, want done after drain", sess.ID(), got)
		}
	}
}

func TestFailedSessionCountsAsFailed(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 1})
	defer s.Drain(context.Background())
	boom := errors.New("boom")
	sess, err := s.Submit(func(ctx context.Context, _ *Session) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if got := sess.Status(); got != Failed {
		t.Fatalf("status = %v, want failed", got)
	}
	if c := s.Counters(); c.Failed != 1 {
		t.Fatalf("failed counter = %d, want 1", c.Failed)
	}
}

func TestProgressCounter(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 1})
	defer s.Drain(context.Background())
	sess, err := s.Submit(func(ctx context.Context, sess *Session) (any, error) {
		for i := int64(1); i <= 3; i++ {
			sess.SetProgress(i)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := sess.Progress(); got != 3 {
		t.Fatalf("progress = %d, want 3", got)
	}
}

func TestSessionsListedInSubmissionOrder(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8})
	defer s.Drain(context.Background())
	var ids []string
	for i := 0; i < 3; i++ {
		sess, err := s.Submit(instantRun(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sess.ID())
		if _, err := sess.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	listed := s.Sessions()
	if len(listed) != len(ids) {
		t.Fatalf("listed %d sessions, want %d", len(listed), len(ids))
	}
	for i, sess := range listed {
		if sess.ID() != ids[i] {
			t.Fatalf("listed[%d] = %s, want %s", i, sess.ID(), ids[i])
		}
	}
	if _, ok := s.Session(ids[1]); !ok {
		t.Fatalf("Session(%s) not found", ids[1])
	}
	if _, ok := s.Session("job-999"); ok {
		t.Fatal("Session(job-999) unexpectedly found")
	}
}
