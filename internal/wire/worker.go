package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The proc-sharded backend re-executes its own binary to get worker
// processes; this environment triple is the re-exec mode marker. Env vars
// rather than argv flags so any host binary — CLIs, daemons, `go test`
// binaries with their own flag sets — can enter worker mode without
// fighting its flag parser.
const (
	envWorker  = "ADAQP_WIRE_WORKER"
	envDir     = "ADAQP_WIRE_DIR"
	envWorkers = "ADAQP_WIRE_WORKERS"
)

const (
	// dialTimeout bounds socket dials and startup handshakes; it only
	// matters when a process failed to come up at all.
	dialTimeout = 10 * time.Second
	// reapTimeout bounds how long Shutdown waits for a worker to
	// acknowledge and exit before killing it.
	reapTimeout = 5 * time.Second
)

// SocketPath is worker index's listening socket inside dir.
func SocketPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("w%d.sock", index))
}

// MaybeWorker turns the current process into a wire worker when the
// re-exec environment is present, and never returns in that case. Every
// binary that can host the proc-sharded backend — cmd/adaqp, cmd/adaqpd,
// examples, and the test binaries of packages whose tests run the backend
// (via TestMain) — must call it before doing anything else: StartPool
// re-executes os.Executable() and expects a worker, not another copy of
// the host program.
func MaybeWorker() {
	v := os.Getenv(envWorker)
	if v == "" {
		return
	}
	index, err := strconv.Atoi(v)
	workers, err2 := strconv.Atoi(os.Getenv(envWorkers))
	dir := os.Getenv(envDir)
	if err != nil || err2 != nil || dir == "" || index < 0 || index >= workers {
		fmt.Fprintf(os.Stderr, "wire worker: bad re-exec environment %s=%q %s=%q %s=%q\n",
			envWorker, v, envWorkers, os.Getenv(envWorkers), envDir, dir)
		os.Exit(2)
	}
	if err := runWorker(dir, index, workers); err != nil {
		fmt.Fprintf(os.Stderr, "wire worker %d: %v\n", index, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// conn is a socket with a write lock and a reusable encode buffer; frames
// from concurrent routers interleave at frame granularity, never mid-frame.
type conn struct {
	c   net.Conn
	mu  sync.Mutex
	buf []byte
}

// writeFrame encodes and writes f, returning its framed size.
func (wc *conn) writeFrame(f Frame) (int, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	wc.buf = AppendFrame(wc.buf[:0], f)
	return wc.c.Write(wc.buf)
}

func dialRetry(path string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.Dial("unix", path)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// workerState is one worker process's routing state. The worker owns the
// ranks congruent to its index mod the worker count: the parent sends it
// every data frame originating from those ranks, and it forwards each to
// the destination shard's owner (itself included), which delivers the
// frame back to the parent.
type workerState struct {
	index   int
	workers int

	mu     sync.Mutex
	peers  []*conn // outbound connections, dialed by us
	parent *conn

	parentSet chan struct{} // closed once the parent's connection arrived
	done      chan struct{} // closed when shutdown begins
	result    chan error    // first terminal outcome (nil = clean shutdown)

	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	framesRouted atomic.Uint64
}

func runWorker(dir string, index, workers int) error {
	l, err := net.Listen("unix", SocketPath(dir, index))
	if err != nil {
		return err
	}
	defer l.Close()

	w := &workerState{
		index:     index,
		workers:   workers,
		peers:     make([]*conn, workers),
		parentSet: make(chan struct{}),
		done:      make(chan struct{}),
		result:    make(chan error, 1),
	}
	go w.acceptLoop(l)

	// Dial every other worker's socket (our outbound routing channels),
	// retrying while peers are still binding theirs.
	for j := 0; j < workers; j++ {
		if j == index {
			continue
		}
		c, err := dialRetry(SocketPath(dir, j), dialTimeout)
		if err != nil {
			return fmt.Errorf("dial peer %d: %w", j, err)
		}
		pc := &conn{c: c}
		if _, err := pc.writeFrame(Frame{Op: OpHello, Src: uint16(index)}); err != nil {
			return fmt.Errorf("hello to peer %d: %w", j, err)
		}
		w.mu.Lock()
		w.peers[j] = pc
		w.mu.Unlock()
	}

	// The parent dials us like a peer does; once its connection is
	// identified, acknowledge readiness. The parent holds all data
	// traffic until every worker has acknowledged.
	select {
	case <-w.parentSet:
	case <-time.After(dialTimeout):
		return errors.New("parent connection never arrived")
	}
	if _, err := w.parent.writeFrame(Frame{Op: OpReady, Src: uint16(index)}); err != nil {
		return fmt.Errorf("ready ack: %w", err)
	}
	return <-w.result
}

func (w *workerState) fail(err error) {
	select {
	case w.result <- err:
	default:
	}
}

func (w *workerState) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			select {
			case <-w.done:
			default:
				w.fail(fmt.Errorf("accept: %w", err))
			}
			return
		}
		go w.handleConn(c)
	}
}

// handleConn identifies a freshly accepted connection by its hello frame
// and runs the matching reader loop.
func (w *workerState) handleConn(c net.Conn) {
	br := bufio.NewReaderSize(c, readChunk)
	hello, err := ReadFrame(br)
	if err != nil || hello.Op != OpHello {
		c.Close()
		return
	}
	if hello.Src == ParentID {
		pc := &conn{c: c}
		w.mu.Lock()
		w.parent = pc
		w.mu.Unlock()
		close(w.parentSet)
		w.parentLoop(br)
		return
	}
	// Inbound peer connection: frames another worker routed to us for
	// delivery. Wait for the parent connection — it is the only place
	// these frames can go.
	<-w.parentSet
	for {
		f, err := ReadFrame(br)
		if err != nil {
			// A peer closing its outbound connection is how shutdown
			// looks from here; a mid-run crash surfaces in the parent as
			// a dead worker process, so it is not reported again.
			return
		}
		if f.Op != OpData {
			continue
		}
		w.bytesRead.Add(uint64(FrameSize(len(f.Payload))))
		n, err := w.parent.writeFrame(f)
		if err != nil {
			w.fail(fmt.Errorf("deliver to parent: %w", err))
			return
		}
		w.bytesWritten.Add(uint64(n))
	}
}

// parentLoop services the parent connection: data frames are routed to
// their destination shard, OpShutdown answers with OpStats and ends the
// worker.
func (w *workerState) parentLoop(br *bufio.Reader) {
	for {
		f, err := ReadFrame(br)
		if err != nil {
			w.fail(fmt.Errorf("parent read: %w", err))
			return
		}
		switch f.Op {
		case OpData:
			w.bytesRead.Add(uint64(FrameSize(len(f.Payload))))
			w.framesRouted.Add(1)
			if err := w.route(f); err != nil {
				w.fail(err)
				return
			}
		case OpShutdown:
			close(w.done)
			stats := Stats{
				BytesRead:    w.bytesRead.Load(),
				BytesWritten: w.bytesWritten.Load(),
				FramesRouted: w.framesRouted.Load(),
			}
			_, err := w.parent.writeFrame(Frame{
				Op:      OpStats,
				Src:     uint16(w.index),
				Payload: appendStats(nil, stats),
			})
			w.fail(err)
			return
		}
	}
}

func (w *workerState) route(f Frame) error {
	shard := int(f.Dst) % w.workers
	var target *conn
	if shard == w.index {
		target = w.parent
	} else {
		w.mu.Lock()
		target = w.peers[shard]
		w.mu.Unlock()
		if target == nil {
			return fmt.Errorf("no connection to peer %d", shard)
		}
	}
	n, err := target.writeFrame(f)
	if err != nil {
		return fmt.Errorf("route to shard %d: %w", shard, err)
	}
	w.bytesWritten.Add(uint64(n))
	return nil
}
