package wire

import (
	"os"
	"testing"
)

// TestMain lets this test binary serve as its own worker fleet: the pool
// tests re-execute the running binary, and MaybeWorker diverts those
// child processes into worker mode before any test runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}
