package wire

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// PoolStats aggregates one pool lifetime's data-plane accounting: the
// parent's own counters plus every worker's OpStats report. All byte
// counts are framed sizes of OpData frames.
type PoolStats struct {
	// Workers holds each worker process's shutdown report, indexed by
	// worker.
	Workers []Stats
	// SentFrames/SentBytes count data frames the parent wrote to workers.
	SentFrames, SentBytes uint64
	// DeliveredFrames/DeliveredBytes count data frames workers wrote back
	// to the parent.
	DeliveredFrames, DeliveredBytes uint64
	// InterWorkerBytes counts the framed bytes of frames whose source and
	// destination ranks live on different workers — the worker-to-worker
	// hop between the parent's send and the delivery.
	InterWorkerBytes uint64
}

// Add accumulates o into s (for callers aggregating across pool
// lifetimes, e.g. one per training run).
func (s *PoolStats) Add(o PoolStats) {
	for i, ws := range o.Workers {
		if i < len(s.Workers) {
			s.Workers[i].BytesRead += ws.BytesRead
			s.Workers[i].BytesWritten += ws.BytesWritten
			s.Workers[i].FramesRouted += ws.FramesRouted
		} else {
			s.Workers = append(s.Workers, ws)
		}
	}
	s.SentFrames += o.SentFrames
	s.SentBytes += o.SentBytes
	s.DeliveredFrames += o.DeliveredFrames
	s.DeliveredBytes += o.DeliveredBytes
	s.InterWorkerBytes += o.InterWorkerBytes
}

// poolProc is one worker process from the parent's side.
type poolProc struct {
	cmd      *exec.Cmd
	conn     *conn
	ready    chan struct{}
	waitDone chan struct{}
	waitErr  error
}

// Pool is the parent side of a worker fleet: it re-executes the current
// binary into worker processes, connects to each over its Unix socket,
// and routes data frames by source shard. Delivered frames arrive on the
// onData callback from internal reader goroutines; onError reports a
// broken fleet (a dead worker or socket) outside any Send call.
type Pool struct {
	workers int
	procs   []*poolProc
	onData  func(Frame)
	onError func(error)

	sentFrames, sentBytes           atomic.Uint64
	deliveredFrames, deliveredBytes atomic.Uint64
	interBytes                      atomic.Uint64

	shuttingDown atomic.Bool
	readers      sync.WaitGroup

	mu      sync.Mutex
	stats   []Stats
	statsOK []bool
}

// StartPool spawns workers worker processes rooted at dir and blocks
// until every one acknowledged readiness. onData receives every delivered
// data frame (payload freshly allocated, caller-owned); both callbacks
// may be invoked from internal goroutines.
func StartPool(dir string, workers int, onData func(Frame), onError func(error)) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("wire: pool needs at least one worker, got %d", workers)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("wire: resolve executable for re-exec: %w", err)
	}
	p := &Pool{
		workers: workers,
		onData:  onData,
		onError: onError,
		stats:   make([]Stats, workers),
		statsOK: make([]bool, workers),
	}
	for i := 0; i < workers; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorker+"="+strconv.Itoa(i),
			envDir+"="+dir,
			envWorkers+"="+strconv.Itoa(workers),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			p.Kill()
			return nil, fmt.Errorf("wire: start worker %d: %w", i, err)
		}
		pp := &poolProc{cmd: cmd, ready: make(chan struct{}), waitDone: make(chan struct{})}
		p.procs = append(p.procs, pp)
		go func(i int, pp *poolProc) {
			pp.waitErr = pp.cmd.Wait()
			close(pp.waitDone)
			if !p.shuttingDown.Load() {
				p.fail(fmt.Errorf("wire: worker %d exited mid-run: %v", i, pp.waitErr))
			}
		}(i, pp)
	}
	for i, pp := range p.procs {
		c, err := dialRetry(SocketPath(dir, i), dialTimeout)
		if err != nil {
			p.Kill()
			return nil, fmt.Errorf("wire: dial worker %d (is wire.MaybeWorker wired into this binary's main/TestMain?): %w", i, err)
		}
		pp.conn = &conn{c: c}
		if _, err := pp.conn.writeFrame(Frame{Op: OpHello, Src: ParentID}); err != nil {
			p.Kill()
			return nil, fmt.Errorf("wire: hello to worker %d: %w", i, err)
		}
		p.readers.Add(1)
		go p.readLoop(i, pp)
	}
	for i, pp := range p.procs {
		select {
		case <-pp.ready:
		case <-pp.waitDone:
			p.Kill()
			return nil, fmt.Errorf("wire: worker %d exited before ready: %v", i, pp.waitErr)
		case <-time.After(dialTimeout):
			p.Kill()
			return nil, fmt.Errorf("wire: worker %d never reported ready", i)
		}
	}
	return p, nil
}

func (p *Pool) fail(err error) {
	if p.onError != nil {
		p.onError(err)
	}
}

// readLoop services one worker connection until its OpStats report (clean
// shutdown) or a read error.
func (p *Pool) readLoop(i int, pp *poolProc) {
	defer p.readers.Done()
	br := bufio.NewReaderSize(pp.conn.c, readChunk)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			if !p.shuttingDown.Load() {
				p.fail(fmt.Errorf("wire: worker %d read: %w", i, err))
			}
			return
		}
		switch f.Op {
		case OpReady:
			close(pp.ready)
		case OpData:
			p.deliveredFrames.Add(1)
			p.deliveredBytes.Add(uint64(FrameSize(len(f.Payload))))
			p.onData(f)
		case OpStats:
			s, err := parseStats(f.Payload)
			p.mu.Lock()
			p.stats[i] = s
			p.statsOK[i] = err == nil
			p.mu.Unlock()
			return
		}
	}
}

// Send routes one data frame into the fleet via the worker owning f.Src's
// shard. Safe for concurrent use. The payload is fully written before
// Send returns, so the caller may reuse it.
func (p *Pool) Send(f Frame) error {
	shard := int(f.Src) % p.workers
	n, err := p.procs[shard].conn.writeFrame(f)
	if err != nil {
		return fmt.Errorf("wire: send to worker %d: %w", shard, err)
	}
	p.sentFrames.Add(1)
	p.sentBytes.Add(uint64(n))
	if int(f.Dst)%p.workers != shard {
		p.interBytes.Add(uint64(n))
	}
	return nil
}

func (p *Pool) snapshot() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Workers:          append([]Stats(nil), p.stats...),
		SentFrames:       p.sentFrames.Load(),
		SentBytes:        p.sentBytes.Load(),
		DeliveredFrames:  p.deliveredFrames.Load(),
		DeliveredBytes:   p.deliveredBytes.Load(),
		InterWorkerBytes: p.interBytes.Load(),
	}
}

// Shutdown asks every worker to stop, collects their stats reports, and
// reaps the processes — killing any that fail to exit within the reap
// timeout, so a wedged worker can never leak past a run. It returns the
// pool's aggregated stats and the first problem encountered (nil on a
// fully graceful shutdown).
func (p *Pool) Shutdown() (PoolStats, error) {
	p.shuttingDown.Store(true)
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for i, pp := range p.procs {
		if _, err := pp.conn.writeFrame(Frame{Op: OpShutdown, Src: ParentID}); err != nil {
			keep(fmt.Errorf("wire: shutdown to worker %d: %w", i, err))
		}
	}
	readersDone := make(chan struct{})
	go func() { p.readers.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-time.After(reapTimeout):
		keep(errors.New("wire: workers did not acknowledge shutdown"))
	}
	for i, pp := range p.procs {
		select {
		case <-pp.waitDone:
		case <-time.After(reapTimeout):
			pp.cmd.Process.Kill()
			<-pp.waitDone
			keep(fmt.Errorf("wire: worker %d killed after shutdown timeout", i))
		}
		if pp.waitErr != nil {
			keep(fmt.Errorf("wire: worker %d exit: %v", i, pp.waitErr))
		}
		pp.conn.c.Close()
	}
	stats := p.snapshot()
	p.mu.Lock()
	for i, ok := range p.statsOK {
		if !ok {
			keep(fmt.Errorf("wire: worker %d returned no stats", i))
		}
	}
	p.mu.Unlock()
	return stats, firstErr
}

// Kill force-terminates the fleet without a handshake (the abort path:
// the run failed, or the fleet itself broke). It reaps every process that
// was started and is safe to call at any point after StartPool began.
func (p *Pool) Kill() {
	p.shuttingDown.Store(true)
	for _, pp := range p.procs {
		if pp.cmd.Process != nil {
			pp.cmd.Process.Kill()
		}
		if pp.conn != nil {
			pp.conn.c.Close()
		}
	}
	for _, pp := range p.procs {
		select {
		case <-pp.waitDone:
		case <-time.After(reapTimeout):
		}
	}
}
