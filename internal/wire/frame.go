// Package wire is the process plumbing behind the proc-sharded transport
// backend: a length-prefixed binary frame format plus the parent/worker
// machinery that moves those frames between OS processes over Unix-domain
// sockets. The parent process runs the simulated devices and their clocks;
// every collective payload is serialized into a frame, shipped to the
// worker process owning the source rank's shard, routed (possibly through
// a second worker) and delivered back to the parent for the destination
// rank — so codec wire formats cross a real kernel socket instead of being
// handed over as pointers.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     length of the rest of the frame (header + payload)
//	4       1     format version (currently 1)
//	5       1     op (OpHello, OpReady, OpData, OpShutdown, OpStats)
//	6       4     seq — collective sequence number
//	10      2     src rank
//	12      2     dst rank
//	14      ...   payload (length − 10 bytes)
//
// The format is fixed by the golden fixtures under testdata/ — changing it
// is a wire-protocol break and must update those fixtures deliberately.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
)

const (
	// Version is the format version byte every frame carries.
	Version = 1

	prefixLen = 4  // u32 length prefix
	headerLen = 10 // version + op + seq + src + dst

	// FrameOverhead is the framed size of an empty payload: the length
	// prefix plus the fixed header.
	FrameOverhead = prefixLen + headerLen

	// MaxPayload bounds a single frame's payload. The limit exists so a
	// corrupted or hostile length prefix is rejected up front instead of
	// driving a multi-gigabyte read loop.
	MaxPayload = 1 << 28
)

// Frame ops. OpHello identifies a freshly dialed connection (Src is the
// dialer: a worker index, or ParentID for the parent). OpReady is a
// worker's startup acknowledgment to the parent. OpData carries one
// collective payload from Src to Dst. OpShutdown asks a worker to stop;
// it answers with OpStats (its data-plane accounting) and exits.
const (
	OpHello byte = iota + 1
	OpReady
	OpData
	OpShutdown
	OpStats
)

// ParentID marks the parent process in an OpHello Src field. Device ranks
// are uint16, so a runtime may have at most ParentID devices.
const ParentID = 0xFFFF

// Frame is one decoded wire frame.
type Frame struct {
	Op       byte
	Seq      uint32
	Src, Dst uint16
	Payload  []byte
}

// Decoding errors. Wrapped with context; match with errors.Is.
var (
	ErrShortFrame    = errors.New("wire: truncated frame")
	ErrFrameTooLarge = errors.New("wire: frame length exceeds maximum")
	ErrBadVersion    = errors.New("wire: unknown frame version")
	ErrBadOp         = errors.New("wire: unknown frame op")
)

// FrameSize is the framed size of a payloadLen-byte payload.
func FrameSize(payloadLen int) int { return FrameOverhead + payloadLen }

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice. Oversized payloads panic: frame construction is under the
// transport's control, so exceeding MaxPayload is a programming error, not
// an input condition.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("wire: %d-byte payload exceeds MaxPayload (%d)", len(f.Payload), MaxPayload))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen+len(f.Payload)))
	dst = append(dst, Version, f.Op)
	dst = binary.LittleEndian.AppendUint32(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint16(dst, f.Src)
	dst = binary.LittleEndian.AppendUint16(dst, f.Dst)
	return append(dst, f.Payload...)
}

// parseHeader decodes the post-prefix fixed header (h must hold at least
// headerLen bytes).
func parseHeader(h []byte) (Frame, error) {
	if h[0] != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadVersion, h[0])
	}
	op := h[1]
	if op < OpHello || op > OpStats {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadOp, op)
	}
	return Frame{
		Op:  op,
		Seq: binary.LittleEndian.Uint32(h[2:]),
		Src: binary.LittleEndian.Uint16(h[6:]),
		Dst: binary.LittleEndian.Uint16(h[8:]),
	}, nil
}

// ParseFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b (no
// allocation), so a corrupted length prefix can never force one: inputs
// that do not hold a complete, well-formed frame error out.
func ParseFrame(b []byte) (Frame, int, error) {
	if len(b) < prefixLen {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes, need %d for the length prefix", ErrShortFrame, len(b), prefixLen)
	}
	length := binary.LittleEndian.Uint32(b)
	if length < headerLen {
		return Frame{}, 0, fmt.Errorf("%w: length %d below header size %d", ErrShortFrame, length, headerLen)
	}
	if length > headerLen+MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: length %d", ErrFrameTooLarge, length)
	}
	if uint64(len(b)-prefixLen) < uint64(length) {
		return Frame{}, 0, fmt.Errorf("%w: length %d with only %d bytes after the prefix", ErrShortFrame, length, len(b)-prefixLen)
	}
	f, err := parseHeader(b[prefixLen:])
	if err != nil {
		return Frame{}, 0, err
	}
	total := prefixLen + int(length)
	f.Payload = b[FrameOverhead:total:total]
	return f, total, nil
}

// readChunk bounds how much readChunked grows its buffer ahead of data
// actually arriving, so a hostile length prefix cannot force a large
// allocation before the stream proves it has the bytes.
const readChunk = 64 << 10

func readChunked(r io.Reader, n int) ([]byte, error) {
	var buf []byte
	for len(buf) < n {
		k := min(n-len(buf), readChunk)
		start := len(buf)
		buf = slices.Grow(buf, k)[: start+k : start+k]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// ReadFrame decodes one frame from r. The returned payload is freshly
// allocated (never aliases reader internals), and the allocation grows
// with the data actually read. io.EOF is returned only at a clean frame
// boundary; mid-frame EOF surfaces as ErrShortFrame.
func ReadFrame(r io.Reader) (Frame, error) {
	var pre [prefixLen]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, fmt.Errorf("%w: EOF inside the length prefix", ErrShortFrame)
		}
		return Frame{}, err
	}
	length := binary.LittleEndian.Uint32(pre[:])
	if length < headerLen {
		return Frame{}, fmt.Errorf("%w: length %d below header size %d", ErrShortFrame, length, headerLen)
	}
	if length > headerLen+MaxPayload {
		return Frame{}, fmt.Errorf("%w: length %d", ErrFrameTooLarge, length)
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: EOF inside the header", ErrShortFrame)
	}
	f, err := parseHeader(hdr[:])
	if err != nil {
		return Frame{}, err
	}
	if plen := int(length) - headerLen; plen > 0 {
		payload, err := readChunked(r, plen)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: EOF inside a %d-byte payload", ErrShortFrame, plen)
		}
		f.Payload = payload
	}
	return f, nil
}

// Stats is one worker process's data-plane accounting, reported in its
// OpStats payload at shutdown. Only OpData frames are counted, at their
// full framed size.
type Stats struct {
	// BytesRead is the framed bytes of data frames this worker read (from
	// the parent and from peer workers).
	BytesRead uint64
	// BytesWritten is the framed bytes of data frames this worker wrote
	// (to the parent and to peer workers).
	BytesWritten uint64
	// FramesRouted counts the data frames this worker received from the
	// parent as the owner of their source shard.
	FramesRouted uint64
}

const statsLen = 24

func appendStats(dst []byte, s Stats) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.BytesRead)
	dst = binary.LittleEndian.AppendUint64(dst, s.BytesWritten)
	return binary.LittleEndian.AppendUint64(dst, s.FramesRouted)
}

func parseStats(b []byte) (Stats, error) {
	if len(b) != statsLen {
		return Stats{}, fmt.Errorf("wire: stats payload is %d bytes, want %d", len(b), statsLen)
	}
	return Stats{
		BytesRead:    binary.LittleEndian.Uint64(b),
		BytesWritten: binary.LittleEndian.Uint64(b[8:]),
		FramesRouted: binary.LittleEndian.Uint64(b[16:]),
	}, nil
}
