package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Op: OpHello, Src: ParentID},
		{Op: OpReady, Src: 3},
		{Op: OpData, Seq: 0, Src: 0, Dst: 1},
		{Op: OpData, Seq: 42, Src: 7, Dst: 2, Payload: []byte("quantized rows")},
		{Op: OpData, Seq: 1 << 30, Src: 65000, Dst: 65001, Payload: bytes.Repeat([]byte{0xA5}, 3*readChunk+17)},
		{Op: OpShutdown, Src: ParentID},
		{Op: OpStats, Src: 1, Payload: appendStats(nil, Stats{BytesRead: 1, BytesWritten: 2, FramesRouted: 3})},
	}
	var stream []byte
	for _, f := range cases {
		stream = AppendFrame(stream, f)
	}

	// ParseFrame walks the concatenated stream frame by frame.
	rest := stream
	for i, want := range cases {
		got, n, err := ParseFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: ParseFrame: %v", i, err)
		}
		if n != FrameSize(len(want.Payload)) {
			t.Fatalf("frame %d: consumed %d bytes, want %d", i, n, FrameSize(len(want.Payload)))
		}
		checkFrame(t, i, got, want)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after parsing all frames", len(rest))
	}

	// ReadFrame decodes the same stream from an io.Reader, one byte at a
	// time to exercise short reads.
	br := bufio.NewReaderSize(iotest1{bytes.NewReader(stream)}, 1)
	for i, want := range cases {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		checkFrame(t, i, got, want)
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("ReadFrame at stream end: %v, want io.EOF", err)
	}
}

// iotest1 delivers at most one byte per Read (a pathological-but-legal
// reader).
type iotest1 struct{ r io.Reader }

func (r iotest1) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return r.r.Read(p)
}

func checkFrame(t *testing.T, i int, got, want Frame) {
	t.Helper()
	if got.Op != want.Op || got.Seq != want.Seq || got.Src != want.Src || got.Dst != want.Dst {
		t.Fatalf("frame %d: header %+v, want %+v", i, got, want)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got.Payload), len(want.Payload))
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	valid := AppendFrame(nil, Frame{Op: OpData, Seq: 9, Src: 1, Dst: 2, Payload: []byte("payload")})
	oversized := append([]byte(nil), valid...)
	oversized[0], oversized[1], oversized[2], oversized[3] = 0xFF, 0xFF, 0xFF, 0xFF
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 99
	badOp := append([]byte(nil), valid...)
	badOp[5] = 0

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrShortFrame},
		{"truncated prefix", valid[:3], ErrShortFrame},
		{"truncated header", valid[:FrameOverhead-2], ErrShortFrame},
		{"mid-payload EOF", valid[:len(valid)-3], ErrShortFrame},
		{"length below header", AppendFrame(nil, Frame{Op: OpData})[:4], ErrShortFrame},
		{"oversized length", oversized, ErrFrameTooLarge},
		{"bad version", badVersion, ErrBadVersion},
		{"bad op", badOp, ErrBadOp},
	}
	for _, tc := range cases {
		if _, _, err := ParseFrame(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: ParseFrame err = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := ReadFrame(bytes.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadFrame accepted a malformed stream", tc.name)
		}
	}

	// "length below header" needs a hand-built prefix (AppendFrame cannot
	// produce one): length 4 < headerLen.
	short := []byte{4, 0, 0, 0, Version, OpData, 0, 0}
	if _, _, err := ParseFrame(short); !errors.Is(err, ErrShortFrame) {
		t.Errorf("length-below-header: ParseFrame err = %v, want ErrShortFrame", err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := Stats{BytesRead: 1 << 40, BytesWritten: 7, FramesRouted: 123456}
	got, err := parseStats(appendStats(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stats round trip: %+v != %+v", got, want)
	}
	if _, err := parseStats([]byte{1, 2, 3}); err == nil {
		t.Fatal("parseStats accepted a short payload")
	}
}

// FuzzFrameDecode drives the frame parser with mutated wire bytes:
// truncated length prefixes and headers, oversized length claims,
// mid-payload EOFs. The decoders sit on the trust boundary between
// processes, so every malformed input must produce an error — never a
// panic, an out-of-range read, or an allocation beyond the data actually
// present. Accepted frames must re-encode to the exact consumed bytes.
func FuzzFrameDecode(f *testing.F) {
	valid := AppendFrame(nil, Frame{Op: OpData, Seq: 7, Src: 1, Dst: 2, Payload: []byte("codec payload bytes")})
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:3]...))               // truncated length prefix
	f.Add(append([]byte(nil), valid[:FrameOverhead-2]...)) // truncated header
	f.Add(append([]byte(nil), valid[:len(valid)-3]...))    // mid-payload EOF
	oversized := append([]byte(nil), valid...)
	oversized[0], oversized[1], oversized[2], oversized[3] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(oversized) // hostile length prefix
	f.Add(AppendFrame(valid[:len(valid):len(valid)], Frame{Op: OpStats, Src: 4, Payload: appendStats(nil, Stats{})}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// ParseFrame: walk as many frames as the input holds; each
		// accepted frame must reserialize byte-exactly.
		rest := data
		for {
			fr, n, err := ParseFrame(rest)
			if err != nil {
				break
			}
			if n < FrameOverhead || n > len(rest) {
				t.Fatalf("ParseFrame consumed %d of %d bytes", n, len(rest))
			}
			if got := AppendFrame(nil, fr); !bytes.Equal(got, rest[:n]) {
				t.Fatalf("re-encode of an accepted frame diverged from the wire bytes")
			}
			if fr.Op == OpStats {
				_, _ = parseStats(fr.Payload)
			}
			rest = rest[n:]
		}

		// ReadFrame: same stream through the io.Reader path; must
		// terminate with io.EOF or a decode error, never panic.
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			fr, err := ReadFrame(br)
			if err != nil {
				break
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("ReadFrame returned a %d-byte payload", len(fr.Payload))
			}
		}
	})
}
