package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered frames from the pool's reader goroutines
// and lets the test block until an expected count arrived.
type collector struct {
	mu     sync.Mutex
	frames []Frame
	grew   chan struct{}
}

func newCollector() *collector {
	return &collector{grew: make(chan struct{}, 1)}
}

func (c *collector) onData(f Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.mu.Unlock()
	select {
	case c.grew <- struct{}{}:
	default:
	}
}

func (c *collector) waitFor(t *testing.T, n int) []Frame {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.frames)
		c.mu.Unlock()
		if got >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]Frame(nil), c.frames...)
		}
		select {
		case <-c.grew:
		case <-deadline:
			t.Fatalf("timed out waiting for deliveries: have %d, want %d", got, n)
		}
	}
}

// TestPoolRoundTrip spawns a real two-worker fleet (re-exec over Unix
// sockets), routes frames between four ranks — same-shard, cross-shard,
// and self-addressed — and checks that every payload comes back intact
// and that the shutdown stats reports obey the pool's conservation
// invariants.
func TestPoolRoundTrip(t *testing.T) {
	const workers = 2
	col := newCollector()
	errc := make(chan error, 8)
	pool, err := StartPool(t.TempDir(), workers, col.onData, func(err error) { errc <- err })
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			pool.Kill()
		}
	}()

	// Every ordered (src, dst) pair over 4 ranks, each with a distinct
	// payload. Ranks 0,2 live on worker 0 and ranks 1,3 on worker 1, so
	// the set covers same-shard, cross-shard, and src==dst routing.
	type sent struct {
		f Frame
	}
	var sends []sent
	var wantSentBytes, wantInterBytes uint64
	seq := uint32(0)
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			payload := []byte(fmt.Sprintf("payload %d->%d %s", src, dst, bytes.Repeat([]byte{byte(seq)}, src+dst)))
			f := Frame{Op: OpData, Seq: seq, Src: uint16(src), Dst: uint16(dst), Payload: payload}
			sends = append(sends, sent{f})
			wantSentBytes += uint64(FrameSize(len(payload)))
			if src%workers != dst%workers {
				wantInterBytes += uint64(FrameSize(len(payload)))
			}
			seq++
		}
	}
	for _, s := range sends {
		if err := pool.Send(s.f); err != nil {
			t.Fatal(err)
		}
	}

	delivered := col.waitFor(t, len(sends))
	byKey := make(map[uint32]Frame, len(delivered))
	for _, f := range delivered {
		if _, dup := byKey[f.Seq]; dup {
			t.Fatalf("seq %d delivered twice", f.Seq)
		}
		byKey[f.Seq] = f
	}
	for _, s := range sends {
		got, ok := byKey[s.f.Seq]
		if !ok {
			t.Fatalf("seq %d never delivered", s.f.Seq)
		}
		if got.Src != s.f.Src || got.Dst != s.f.Dst || !bytes.Equal(got.Payload, s.f.Payload) {
			t.Fatalf("seq %d corrupted in flight: got src=%d dst=%d %q, want src=%d dst=%d %q",
				s.f.Seq, got.Src, got.Dst, got.Payload, s.f.Src, s.f.Dst, s.f.Payload)
		}
	}

	stats, err := pool.Shutdown()
	killed = true
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-errc:
		t.Fatalf("pool reported an error during a clean run: %v", err)
	default:
	}

	if stats.SentFrames != uint64(len(sends)) || stats.DeliveredFrames != uint64(len(sends)) {
		t.Errorf("frames: sent %d delivered %d, want %d each", stats.SentFrames, stats.DeliveredFrames, len(sends))
	}
	if stats.SentBytes != wantSentBytes {
		t.Errorf("SentBytes = %d, want %d", stats.SentBytes, wantSentBytes)
	}
	if stats.DeliveredBytes != stats.SentBytes {
		t.Errorf("DeliveredBytes = %d, want SentBytes = %d", stats.DeliveredBytes, stats.SentBytes)
	}
	if stats.InterWorkerBytes != wantInterBytes {
		t.Errorf("InterWorkerBytes = %d, want %d", stats.InterWorkerBytes, wantInterBytes)
	}
	if len(stats.Workers) != workers {
		t.Fatalf("got %d worker reports, want %d", len(stats.Workers), workers)
	}
	var routed, read, written uint64
	for i, ws := range stats.Workers {
		t.Logf("worker %d: read=%d written=%d routed=%d", i, ws.BytesRead, ws.BytesWritten, ws.FramesRouted)
		routed += ws.FramesRouted
		read += ws.BytesRead
		written += ws.BytesWritten
	}
	// Conservation: every sent frame is routed exactly once; worker reads
	// are parent sends plus the inter-worker hop's receive side; worker
	// writes are parent deliveries plus the inter-worker hop's send side.
	if routed != stats.SentFrames {
		t.Errorf("sum FramesRouted = %d, want SentFrames = %d", routed, stats.SentFrames)
	}
	if read != stats.SentBytes+stats.InterWorkerBytes {
		t.Errorf("sum BytesRead = %d, want SentBytes+InterWorkerBytes = %d", read, stats.SentBytes+stats.InterWorkerBytes)
	}
	if written != stats.DeliveredBytes+stats.InterWorkerBytes {
		t.Errorf("sum BytesWritten = %d, want DeliveredBytes+InterWorkerBytes = %d", written, stats.DeliveredBytes+stats.InterWorkerBytes)
	}
}

// TestPoolKill verifies the abort path reaps the fleet: after Kill, both
// worker processes are gone and their sockets closed, with no error
// callback from the forced teardown.
func TestPoolKill(t *testing.T) {
	errc := make(chan error, 8)
	pool, err := StartPool(t.TempDir(), 2, func(Frame) {}, func(err error) { errc <- err })
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Send(Frame{Op: OpData, Src: 0, Dst: 1, Payload: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	pool.Kill()
	for _, pp := range pool.procs {
		select {
		case <-pp.waitDone:
		case <-time.After(5 * time.Second):
			t.Fatal("worker not reaped after Kill")
		}
	}
	select {
	case err := <-errc:
		t.Fatalf("Kill leaked an error callback: %v", err)
	default:
	}
}
