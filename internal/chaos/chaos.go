// Package chaos provides deterministic fault injection for the simulated
// cluster: straggler slowdowns, transient collective failures with bounded
// retry/backoff, and device crash/restart at an epoch boundary.
//
// Everything is derived from an explicit seed, so a fault plan is a pure
// function of its Spec: the same Spec produces the same straggler ranks,
// the same failure schedule and the same crash site on every run and on
// every transport backend. That keeps the repo's central invariant intact
// — fixed seed ⇒ bit-identical loss curves — because faults only ever
// charge simulated *time*; the numerics (payloads, reductions, RNG
// streams) are never perturbed, and a crash is recovered by replaying the
// doomed epoch from a checkpoint rather than by diverging.
package chaos

import (
	"fmt"
	"strings"

	"repro/internal/timing"
)

// Spec is the user-facing declarative fault specification. The zero value
// injects nothing. Validate fills defaults for enabled fault families.
type Spec struct {
	// Seed derives straggler selection, the failure schedule and the
	// crash site. Independent of the training seed: the same cluster
	// weather can be replayed across different training runs. 0 means 1.
	Seed uint64 `json:"seed,omitempty"`

	// Stragglers is how many devices the plan slows down (0 = none).
	Stragglers int `json:"stragglers,omitempty"`
	// SlowFactor multiplies a compute-bound straggler's local work
	// (>= 1; 0 defaults to 4 when stragglers are enabled without any
	// factor, else to 1).
	SlowFactor float64 `json:"slow_factor,omitempty"`
	// LinkFactor multiplies a bandwidth-bound straggler's outgoing link
	// cost θ (>= 1; 0 = 1). When both factors are configured, chosen
	// stragglers alternate between the two bottleneck types.
	LinkFactor float64 `json:"link_factor,omitempty"`

	// FailRate is the probability a charged collective operation fails
	// transiently and must be retried (0 = never, must be < 1).
	FailRate float64 `json:"fail_rate,omitempty"`
	// MaxRetries bounds the consecutive failures of one operation; the
	// deterministic planner always draws within the budget, so a retried
	// operation eventually succeeds. 0 defaults to 3 when FailRate > 0.
	MaxRetries int `json:"max_retries,omitempty"`
	// Backoff is the base retry backoff in simulated seconds, doubled per
	// consecutive failure and charged to the device clock as Idle.
	// 0 defaults to 0.05 when FailRate > 0.
	Backoff float64 `json:"backoff_s,omitempty"`

	// CrashEpoch k (>= 1) makes one seed-chosen device crash at the end
	// of epoch k, before the epoch's results are committed; the run
	// restores every device's epoch-(k-1) checkpoint and replays the
	// epoch. 0 disables crashes.
	CrashEpoch int `json:"crash_epoch,omitempty"`
	// RestartPenalty is the simulated downtime (seconds) the crashed
	// device pays to restart from its checkpoint. 0 defaults to 5 when
	// CrashEpoch > 0.
	RestartPenalty float64 `json:"restart_penalty_s,omitempty"`
}

// Enabled reports whether the spec injects any fault at all.
func (s Spec) Enabled() bool {
	return s.Stragglers > 0 || s.FailRate > 0 || s.CrashEpoch > 0
}

// Validate fills defaults for zero-valued fields of enabled fault
// families and sanity-checks the ranges.
func (s *Spec) Validate() error {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Stragglers < 0 {
		return fmt.Errorf("chaos: stragglers must be >= 0, got %d", s.Stragglers)
	}
	if s.Stragglers > 0 && s.SlowFactor == 0 && s.LinkFactor == 0 {
		s.SlowFactor = 4
	}
	if s.SlowFactor == 0 {
		s.SlowFactor = 1
	}
	if s.LinkFactor == 0 {
		s.LinkFactor = 1
	}
	if s.SlowFactor < 1 {
		return fmt.Errorf("chaos: slow factor must be >= 1, got %v", s.SlowFactor)
	}
	if s.LinkFactor < 1 {
		return fmt.Errorf("chaos: link factor must be >= 1, got %v", s.LinkFactor)
	}
	if s.FailRate < 0 || s.FailRate >= 1 {
		return fmt.Errorf("chaos: fail rate %v outside [0,1)", s.FailRate)
	}
	if s.FailRate > 0 {
		if s.MaxRetries == 0 {
			s.MaxRetries = 3
		}
		if s.Backoff == 0 {
			s.Backoff = 0.05
		}
	}
	if s.MaxRetries < 0 {
		return fmt.Errorf("chaos: max retries must be >= 0, got %d", s.MaxRetries)
	}
	if s.Backoff < 0 {
		return fmt.Errorf("chaos: backoff must be >= 0, got %v", s.Backoff)
	}
	if s.CrashEpoch < 0 {
		return fmt.Errorf("chaos: crash epoch must be >= 0, got %d", s.CrashEpoch)
	}
	if s.CrashEpoch > 0 && s.RestartPenalty == 0 {
		s.RestartPenalty = 5
	}
	if s.RestartPenalty < 0 {
		return fmt.Errorf("chaos: restart penalty must be >= 0, got %v", s.RestartPenalty)
	}
	return nil
}

// FaultPlan is a Spec materialized for a concrete device count: which
// ranks straggle (and how), which rank crashes and when. Plans are
// immutable once built and safe to share across devices and runs.
type FaultPlan struct {
	// Spec is the validated specification the plan was derived from.
	Spec Spec
	// Parts is the device count the plan was materialized for.
	Parts int
	// Slowdown[r] multiplies rank r's local work between collectives
	// (1 = no slowdown).
	Slowdown []float64
	// LinkSlow[r] multiplies rank r's outgoing link cost θ (1 = normal).
	LinkSlow []float64
	// CrashRank is the device that crashes, or -1 when no crash is
	// scheduled.
	CrashRank int
	// CrashEpoch is the epoch index at whose end CrashRank crashes
	// (meaningful only when CrashRank >= 0; epochs past the run's budget
	// simply never crash).
	CrashEpoch int
}

// NewPlan materializes spec for parts devices. The result is a pure
// function of (spec, parts).
func NewPlan(spec Spec, parts int) (*FaultPlan, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("chaos: plan needs parts >= 1, got %d", parts)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &FaultPlan{
		Spec:      spec,
		Parts:     parts,
		Slowdown:  make([]float64, parts),
		LinkSlow:  make([]float64, parts),
		CrashRank: -1,
	}
	for r := range p.Slowdown {
		p.Slowdown[r] = 1
		p.LinkSlow[r] = 1
	}
	if n := spec.Stragglers; n > 0 {
		if n > parts {
			n = parts
		}
		ranks := pickRanks(spec.Seed, parts, n)
		comp, link := spec.SlowFactor > 1, spec.LinkFactor > 1
		for i, r := range ranks {
			switch {
			case comp && link:
				// Heterogeneous stragglers: alternate the bottleneck so a
				// cluster can hold both a compute-bound and a
				// bandwidth-bound slow device at once — the blocking
				// backend pays both on every collective, the staleness
				// bound decouples them.
				if i%2 == 0 {
					p.Slowdown[r] = spec.SlowFactor
				} else {
					p.LinkSlow[r] = spec.LinkFactor
				}
			case link:
				p.LinkSlow[r] = spec.LinkFactor
			default:
				p.Slowdown[r] = spec.SlowFactor
			}
		}
	}
	if spec.CrashEpoch > 0 {
		p.CrashRank = int(mix(spec.Seed, 0x63726173680a, 0) % uint64(parts))
		p.CrashEpoch = spec.CrashEpoch
	}
	return p, nil
}

// StragglerCount returns how many ranks the plan slows down in either
// dimension.
func (p *FaultPlan) StragglerCount() int {
	n := 0
	for r := range p.Slowdown {
		if p.Slowdown[r] > 1 || p.LinkSlow[r] > 1 {
			n++
		}
	}
	return n
}

// Failures returns how many consecutive transient failures the op-th
// charged collective on rank suffers before succeeding (0 = clean). It is
// a pure function of (Spec.Seed, rank, op): both transport backends issue
// the same per-device collective sequence, so the schedule is identical
// across backends by construction.
func (p *FaultPlan) Failures(rank, op int) int {
	if p.Spec.FailRate <= 0 || p.Spec.MaxRetries <= 0 {
		return 0
	}
	h := mix(p.Spec.Seed, 0xfa11ed+uint64(rank), uint64(op))
	if float64(h>>11)/(1<<53) >= p.Spec.FailRate {
		return 0
	}
	// Failed: draw the failure count within the retry budget, so the
	// schedule never aborts a run (an unbounded-failure mode would be a
	// different contract; the planner models recoverable blips).
	return 1 + int(mix(p.Spec.Seed, 0x7e781e5+uint64(rank), uint64(op))%uint64(p.Spec.MaxRetries))
}

// ApplyToModel returns a cost model with every bandwidth-bound
// straggler's outgoing links slowed by its LinkSlow factor, materializing
// PairTheta from model (nil = timing.Default()). When the plan has no
// link stragglers, model is returned unchanged — both transport backends
// must derive their model through this one path so their clocks agree.
func (p *FaultPlan) ApplyToModel(model *timing.CostModel) *timing.CostModel {
	hasLink := false
	for _, f := range p.LinkSlow {
		if f > 1 {
			hasLink = true
			break
		}
	}
	if !hasLink {
		return model
	}
	if model == nil {
		model = timing.Default()
	}
	derived := *model
	theta := make([][]float64, p.Parts)
	for s := range theta {
		theta[s] = make([]float64, p.Parts)
		for d := range theta[s] {
			theta[s][d] = model.Theta(s, d) * p.LinkSlow[s]
		}
	}
	derived.PairTheta = theta
	return &derived
}

// String summarizes the materialized plan for logs and examples.
func (p *FaultPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos plan (seed %d, %d devices):", p.Spec.Seed, p.Parts)
	none := true
	for r := range p.Slowdown {
		if p.Slowdown[r] > 1 {
			fmt.Fprintf(&b, " rank %d compute ×%g;", r, p.Slowdown[r])
			none = false
		}
		if p.LinkSlow[r] > 1 {
			fmt.Fprintf(&b, " rank %d links ×%g;", r, p.LinkSlow[r])
			none = false
		}
	}
	if p.Spec.FailRate > 0 {
		fmt.Fprintf(&b, " transient failures p=%g (≤%d retries, backoff %gs);",
			p.Spec.FailRate, p.Spec.MaxRetries, p.Spec.Backoff)
		none = false
	}
	if p.CrashRank >= 0 {
		fmt.Fprintf(&b, " rank %d crashes at epoch %d (restart %gs);",
			p.CrashRank, p.CrashEpoch, p.Spec.RestartPenalty)
		none = false
	}
	if none {
		b.WriteString(" no faults")
	}
	return strings.TrimSuffix(b.String(), ";")
}

// pickRanks returns n distinct ranks in [0, parts), chosen by a
// deterministic seed-keyed Fisher–Yates pass.
func pickRanks(seed uint64, parts, n int) []int {
	perm := make([]int, parts)
	for i := range perm {
		perm[i] = i
	}
	for i := parts - 1; i > 0; i-- {
		j := int(mix(seed, 0x5742a661e5, uint64(i)) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:n]
}

// mix folds its arguments through splitmix64 into one well-distributed
// 64-bit hash.
func mix(vals ...uint64) uint64 {
	h := uint64(0x517cc1b727220a95)
	for _, v := range vals {
		h = splitmix(h ^ splitmix(v))
	}
	return h
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
