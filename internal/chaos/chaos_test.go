package chaos

import (
	"reflect"
	"testing"

	"repro/internal/timing"
)

func TestPlanDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Stragglers: 2, SlowFactor: 3, LinkFactor: 5,
		FailRate: 0.3, CrashEpoch: 4}
	a, err := NewPlan(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec produced different plans:\n%+v\n%+v", a, b)
	}
	for op := 0; op < 100; op++ {
		for r := 0; r < 8; r++ {
			if a.Failures(r, op) != b.Failures(r, op) {
				t.Fatalf("failure schedule diverged at rank %d op %d", r, op)
			}
		}
	}
}

func TestPlanSeedSensitivity(t *testing.T) {
	spec := Spec{Seed: 1, Stragglers: 2, SlowFactor: 3}
	a, _ := NewPlan(spec, 16)
	spec.Seed = 2
	b, _ := NewPlan(spec, 16)
	if reflect.DeepEqual(a.Slowdown, b.Slowdown) {
		t.Fatalf("straggler selection ignored the seed: %v", a.Slowdown)
	}
}

func TestPlanStragglerAssignment(t *testing.T) {
	p, err := NewPlan(Spec{Seed: 7, Stragglers: 2, SlowFactor: 3, LinkFactor: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.StragglerCount(); got != 2 {
		t.Fatalf("StragglerCount = %d, want 2", got)
	}
	// Both factors configured: one compute-bound and one bandwidth-bound
	// straggler, on distinct ranks.
	var comp, link int
	for r := range p.Slowdown {
		if p.Slowdown[r] > 1 {
			comp++
			if p.Slowdown[r] != 3 {
				t.Fatalf("rank %d slowdown %v, want 3", r, p.Slowdown[r])
			}
			if p.LinkSlow[r] > 1 {
				t.Fatalf("rank %d got both bottleneck types", r)
			}
		}
		if p.LinkSlow[r] > 1 {
			link++
			if p.LinkSlow[r] != 5 {
				t.Fatalf("rank %d link slow %v, want 5", r, p.LinkSlow[r])
			}
		}
	}
	if comp != 1 || link != 1 {
		t.Fatalf("got %d compute-bound and %d bandwidth-bound stragglers, want 1 and 1", comp, link)
	}
}

func TestPlanStragglersCappedAtParts(t *testing.T) {
	p, err := NewPlan(Spec{Seed: 3, Stragglers: 10, SlowFactor: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.StragglerCount(); got != 3 {
		t.Fatalf("StragglerCount = %d, want all 3 devices", got)
	}
}

func TestFailuresBoundedAndRateZero(t *testing.T) {
	p, _ := NewPlan(Spec{Seed: 9, FailRate: 0.9, MaxRetries: 2}, 4)
	sawFail := false
	for op := 0; op < 200; op++ {
		for r := 0; r < 4; r++ {
			f := p.Failures(r, op)
			if f < 0 || f > 2 {
				t.Fatalf("Failures(%d,%d) = %d outside [0, MaxRetries=2]", r, op, f)
			}
			if f > 0 {
				sawFail = true
			}
		}
	}
	if !sawFail {
		t.Fatal("fail rate 0.9 produced no failures over 800 draws")
	}
	clean, _ := NewPlan(Spec{Seed: 9, Stragglers: 1}, 4)
	for op := 0; op < 50; op++ {
		if clean.Failures(0, op) != 0 {
			t.Fatal("plan without FailRate injected a failure")
		}
	}
}

func TestCrashSite(t *testing.T) {
	p, err := NewPlan(Spec{Seed: 5, CrashEpoch: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrashRank < 0 || p.CrashRank >= 4 {
		t.Fatalf("CrashRank %d outside [0,4)", p.CrashRank)
	}
	if p.CrashEpoch != 3 {
		t.Fatalf("CrashEpoch %d, want 3", p.CrashEpoch)
	}
	if p.Spec.RestartPenalty != 5 {
		t.Fatalf("default restart penalty %v, want 5", p.Spec.RestartPenalty)
	}
	none, _ := NewPlan(Spec{Seed: 5, Stragglers: 1}, 4)
	if none.CrashRank != -1 {
		t.Fatalf("plan without CrashEpoch scheduled a crash at rank %d", none.CrashRank)
	}
}

func TestApplyToModel(t *testing.T) {
	p, err := NewPlan(Spec{Seed: 2, Stragglers: 1, LinkFactor: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	slow := -1
	for r, f := range p.LinkSlow {
		if f > 1 {
			slow = r
		}
	}
	if slow < 0 {
		t.Fatal("no link straggler materialized")
	}
	base := timing.Default()
	derived := p.ApplyToModel(nil)
	if derived == nil {
		t.Fatal("ApplyToModel(nil) returned nil with a link straggler present")
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			want := base.Theta(s, d)
			if s == slow {
				want *= 4
			}
			if got := derived.Theta(s, d); got != want {
				t.Fatalf("theta(%d,%d) = %v, want %v", s, d, got, want)
			}
		}
	}
	// The base model must be untouched, and a link-free plan must return
	// its input unchanged (identity matters for clock parity).
	if base.PairTheta != nil {
		t.Fatal("ApplyToModel mutated its input model")
	}
	compOnly, _ := NewPlan(Spec{Seed: 2, Stragglers: 1, SlowFactor: 3}, 4)
	if got := compOnly.ApplyToModel(base); got != base {
		t.Fatal("plan without link stragglers must return the model unchanged")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Stragglers: -1},
		{Stragglers: 1, SlowFactor: 0.5},
		{Stragglers: 1, LinkFactor: 0.5},
		{FailRate: -0.1},
		{FailRate: 1},
		{FailRate: 0.5, MaxRetries: -1},
		{FailRate: 0.5, Backoff: -1},
		{CrashEpoch: -1},
		{CrashEpoch: 1, RestartPenalty: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
	var zero Spec
	if zero.Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero spec must validate: %v", err)
	}
	if _, err := NewPlan(Spec{}, 0); err == nil {
		t.Fatal("NewPlan accepted parts = 0")
	}
}
