package tensor

import "math"

// RNG is a small, fast, deterministic xoshiro256**-based pseudo-random
// generator. Every stochastic component in the reproduction (weight init,
// graph generation, stochastic rounding, dropout) draws from an explicitly
// seeded RNG so experiments are replayable.
type RNG struct {
	s [4]uint64
	// cached second normal from Box-Muller
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state (cannot happen with splitmix64, but cheap to guard).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform sample in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform sample in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal sample (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Split derives an independent generator; used to give each device or
// subsystem its own stream without sharing mutable state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// RNGState is a snapshot of a generator's full state, including the
// cached Box-Muller half. Restoring it replays the stream bit for bit —
// crash-recovery checkpoints rely on that to keep replayed epochs
// identical to the run they roll back.
type RNGState struct {
	S        [4]uint64
	HasGauss bool
	Gauss    float64
}

// State snapshots the generator.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, HasGauss: r.hasGauss, Gauss: r.gauss}
}

// SetState restores a snapshot taken with State.
func (r *RNG) SetState(st RNGState) {
	r.s = st.S
	r.hasGauss = st.HasGauss
	r.gauss = st.Gauss
}

// FillUniform fills m with uniform samples in [lo, hi).
func (m *Matrix) FillUniform(r *RNG, lo, hi float32) {
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + span*r.Float32()
	}
}

// FillNormal fills m with Gaussian samples N(mean, std²).
func (m *Matrix) FillNormal(r *RNG, mean, std float32) {
	for i := range m.Data {
		m.Data[i] = mean + std*float32(r.NormFloat64())
	}
}

// XavierInit fills m with Glorot-uniform samples for a fanIn×fanOut weight.
func (m *Matrix) XavierInit(r *RNG, fanIn, fanOut int) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	m.FillUniform(r, -limit, limit)
}
