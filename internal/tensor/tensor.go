// Package tensor provides dense float32 matrices and the parallel numeric
// kernels used throughout the AdaQP reproduction: blocked GEMM, transposed
// GEMM variants, elementwise maps, row reductions and deterministic random
// initialization.
//
// All matrices are row-major. Kernels split work across goroutines by row
// blocks; results are bit-for-bit deterministic for a fixed GOMAXPROCS-free
// partitioning because each goroutine writes a disjoint row range.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies o's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(o *Matrix) {
	mustSameShape("CopyFrom", m, o)
	copy(m.Data, o.Data)
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// parallelizable reports whether parallelRows would actually fan out for
// this many rows. Kernels check it BEFORE building their closure: a
// closure passed to parallelRows always heap-escapes (the go statement
// leaks it), so the sequential path must call the range body directly to
// stay allocation-free.
func parallelizable(rows int) bool {
	// Below 256 rows the goroutine spawn (one closure + stack per worker,
	// every call) costs more than the row loop it splits; real-dataset
	// shapes are thousands of rows, well past the gate.
	return runtime.GOMAXPROCS(0) > 1 && rows >= 256
}

// parallelRows runs fn over [0, rows) split into contiguous chunks, one per
// worker. fn must only touch its own row range.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || !parallelizable(rows) {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a × b (shapes m×k and k×n).
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, overwriting out.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	if !parallelizable(a.Rows) {
		matMulRange(out, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulRange(out, a, b, lo, hi) })
}

func matMulRange(out, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		orow := out.Data[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		// ikj loop order: stream through b rows for cache locality.
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			axpy(orow, brow, av)
		}
	}
}

// axpy computes dst += alpha * src with 4-way unrolling.
func axpy(dst, src []float32, alpha float32) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulT returns a × bᵀ (shapes m×k and n×k → m×n).
func MatMulT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes out = a × bᵀ, overwriting out.
func MatMulTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dim mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: MatMulTInto shape mismatch")
	}
	if !parallelizable(a.Rows) {
		matMulTRange(out, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulTRange(out, a, b, lo, hi) })
}

func matMulTRange(out, a, b *Matrix, lo, hi int) {
	k := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			orow[j] = dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// TMatMul returns aᵀ × b (shapes k×m and k×n → m×n).
func TMatMul(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes out = aᵀ × b, overwriting out (zeroed first, since
// the kernel accumulates).
func TMatMulInto(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dim mismatch (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: TMatMulInto shape mismatch")
	}
	out.Zero()
	if !parallelizable(a.Cols) {
		tMatMulRange(out, a, b, 0, a.Cols)
		return
	}
	// Split over columns of a (rows of the output) so goroutines stay disjoint.
	parallelRows(a.Cols, func(lo, hi int) { tMatMulRange(out, a, b, lo, hi) })
}

func tMatMulRange(out, a, b *Matrix, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i := lo; i < hi; i++ {
			if av := arow[i]; av != 0 {
				axpy(out.Data[i*b.Cols:(i+1)*b.Cols], brow, av)
			}
		}
	}
}

func dot(a, b []float32) float32 {
	var s float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	return dot(a, b)
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("Add", a, b)
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// AddInPlace computes m += o.
func (m *Matrix) AddInPlace(o *Matrix) {
	mustSameShape("AddInPlace", m, o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// SubInPlace computes m -= o.
func (m *Matrix) SubInPlace(o *Matrix) {
	mustSameShape("SubInPlace", m, o)
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("Sub", a, b)
	out := a.Clone()
	out.SubInPlace(b)
	return out
}

// Scale multiplies every element by alpha, in place.
func (m *Matrix) Scale(alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AXPY computes m += alpha * o.
func (m *Matrix) AXPY(alpha float32, o *Matrix) {
	mustSameShape("AXPY", m, o)
	axpy(m.Data, o.Data, alpha)
}

// Hadamard returns the elementwise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	mustSameShape("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// HadamardInPlace computes m ⊙= o.
func (m *Matrix) HadamardInPlace(o *Matrix) {
	mustSameShape("HadamardInPlace", m, o)
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// Apply maps fn over every element, in place.
func (m *Matrix) Apply(fn func(float32) float32) {
	for i, v := range m.Data {
		m.Data[i] = fn(v)
	}
}

// Map returns a new matrix with fn applied to every element.
func (m *Matrix) Map(fn func(float32) float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = fn(v)
	}
	return out
}

// RowSlice returns a new matrix holding rows [lo, hi) of m (copied).
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: RowSlice [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// GatherRows returns a new matrix whose i-th row is m's row idx[i].
func (m *Matrix) GatherRows(idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// ScatterAddRows adds src's row i into m's row idx[i].
func (m *Matrix) ScatterAddRows(idx []int, src *Matrix) {
	if len(idx) != src.Rows || m.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	for i, r := range idx {
		axpy(m.Row(r), src.Row(i), 1)
	}
}

// ConcatCols returns [a | b] (horizontal concatenation).
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: ConcatCols row mismatch")
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// SplitCols splits m into its first aCols columns and the remainder.
func (m *Matrix) SplitCols(aCols int) (*Matrix, *Matrix) {
	if aCols < 0 || aCols > m.Cols {
		panic("tensor: SplitCols out of range")
	}
	a := New(m.Rows, aCols)
	b := New(m.Rows, m.Cols-aCols)
	for i := 0; i < m.Rows; i++ {
		copy(a.Row(i), m.Row(i)[:aCols])
		copy(b.Row(i), m.Row(i)[aCols:])
	}
	return a, b
}

// Sum returns the sum of all elements (accumulated in float64).
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// FrobeniusNorm returns sqrt(Σ x²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns max |x| over all elements.
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// MinMax returns the minimum and maximum element of a vector.
// Returns (0, 0) for an empty slice.
func MinMax(v []float32) (mn, mx float32) {
	if len(v) == 0 {
		return 0, 0
	}
	mn, mx = v[0], v[0]
	for _, x := range v[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

// ArgMaxRow returns the column index of the largest element in row i.
func (m *Matrix) ArgMaxRow(i int) int {
	row := m.Row(i)
	best, bv := 0, row[0]
	for j := 1; j < len(row); j++ {
		if row[j] > bv {
			bv = row[j]
			best = j
		}
	}
	return best
}

// Equal reports elementwise equality within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i])-float64(b.Data[i])) > tol {
			return false
		}
	}
	return true
}
