package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero")
		}
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set mismatch")
	}
	r := m.Row(1)
	r[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// matMulNaive is the reference implementation for property tests.
func matMulNaive(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func randomMatrix(rng *RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.FillUniform(rng, -2, 2)
	return m
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a, b := randomMatrix(rng, m, k), randomMatrix(rng, k, n)
		got, want := MatMul(a, b), matMulNaive(a, b)
		if !Equal(got, want, 1e-3) {
			t.Fatalf("trial %d (%dx%dx%d): MatMul diverges from naive", trial, m, k, n)
		}
	}
}

func TestMatMulTAndTMatMulViaTranspose(t *testing.T) {
	rng := NewRNG(11)
	for trial := 0; trial < 15; trial++ {
		m, k, n := 1+rng.Intn(30), 1+rng.Intn(30), 1+rng.Intn(30)
		a, b := randomMatrix(rng, m, k), randomMatrix(rng, n, k)
		if !Equal(MatMulT(a, b), MatMul(a, b.Transpose()), 1e-3) {
			t.Fatalf("trial %d: MatMulT != A·Bᵀ", trial)
		}
		c := randomMatrix(rng, k, m)
		d := randomMatrix(rng, k, n)
		if !Equal(TMatMul(c, d), MatMul(c.Transpose(), d), 1e-3) {
			t.Fatalf("trial %d: TMatMul != Aᵀ·B", trial)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := NewRNG(seed)
		m := randomMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(20))
		return Equal(m.Transpose().Transpose(), m, 0)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleProperties(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		a, b := randomMatrix(rng, r, c), randomMatrix(rng, r, c)
		// (a+b)-b == a
		s := Add(a, b)
		s.SubInPlace(b)
		if !Equal(s, a, 1e-5) {
			return false
		}
		// a*2 == a+a
		d := a.Clone()
		d.Scale(2)
		return Equal(d, Add(a, a), 1e-5)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHadamardCommutes(t *testing.T) {
	rng := NewRNG(3)
	a, b := randomMatrix(rng, 8, 5), randomMatrix(rng, 8, 5)
	if !Equal(Hadamard(a, b), Hadamard(b, a), 0) {
		t.Fatal("Hadamard must commute")
	}
}

func TestAXPY(t *testing.T) {
	rng := NewRNG(5)
	a, b := randomMatrix(rng, 6, 7), randomMatrix(rng, 6, 7)
	want := Add(a, b)
	got := a.Clone()
	got.AXPY(1, b)
	if !Equal(got, want, 1e-6) {
		t.Fatal("AXPY(1) != Add")
	}
}

func TestGatherScatterRows(t *testing.T) {
	rng := NewRNG(9)
	m := randomMatrix(rng, 10, 4)
	idx := []int{3, 3, 0, 9}
	g := m.GatherRows(idx)
	for i, r := range idx {
		for j := 0; j < 4; j++ {
			if g.At(i, j) != m.At(r, j) {
				t.Fatalf("gather mismatch at (%d,%d)", i, j)
			}
		}
	}
	dst := New(10, 4)
	dst.ScatterAddRows([]int{2, 2}, FromSlice(2, 4, []float32{1, 1, 1, 1, 2, 2, 2, 2}))
	if dst.At(2, 0) != 3 {
		t.Fatalf("scatter-add should accumulate duplicates: got %v", dst.At(2, 0))
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := NewRNG(13)
	a, b := randomMatrix(rng, 5, 3), randomMatrix(rng, 5, 4)
	cat := ConcatCols(a, b)
	if cat.Cols != 7 {
		t.Fatalf("concat cols %d", cat.Cols)
	}
	a2, b2 := cat.SplitCols(3)
	if !Equal(a, a2, 0) || !Equal(b, b2, 0) {
		t.Fatal("concat/split round trip failed")
	}
}

func TestRowSliceCopies(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	s := m.RowSlice(1, 3)
	s.Set(0, 0, 99)
	if m.At(1, 0) == 99 {
		t.Fatal("RowSlice must copy")
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, -2, 3, -4})
	if m.Sum() != -2 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if math.Abs(m.FrobeniusNorm()-want) > 1e-9 {
		t.Fatalf("Frobenius = %v want %v", m.FrobeniusNorm(), want)
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := MinMax([]float32{3, -1, 7, 0})
	if mn != -1 || mx != 7 {
		t.Fatalf("MinMax = %v, %v", mn, mx)
	}
	mn, mx = MinMax(nil)
	if mn != 0 || mx != 0 {
		t.Fatal("empty MinMax should be zero")
	}
}

func TestArgMaxRow(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 5, 2, -1, -5, -2})
	if m.ArgMaxRow(0) != 1 || m.ArgMaxRow(1) != 0 {
		t.Fatal("ArgMaxRow wrong")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float32{1, 2, 3, 4, 5}, []float32{1, 1, 1, 1, 1}) != 15 {
		t.Fatal("Dot wrong")
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(2, 2), New(2, 3), 1) {
		t.Fatal("shapes differ")
	}
}
