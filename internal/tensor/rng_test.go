package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds should diverge, %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := NewRNG(seed)
		for i := 0; i < 50; i++ {
			f := rng.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	rng := NewRNG(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += rng.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	rng := NewRNG(17)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := rng.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) should hit every value in 1000 draws, hit %d", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(23)
	p := rng.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	rng := NewRNG(31)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams should differ")
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := NewRNG(3)
	m := New(64, 32)
	m.XavierInit(rng, 64, 32)
	limit := float32(math.Sqrt(6.0 / 96.0))
	for _, v := range m.Data {
		if v < -limit || v >= limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
	// Not all zero.
	if m.MaxAbs() == 0 {
		t.Fatal("Xavier should not be all-zero")
	}
}

func TestFillNormalStats(t *testing.T) {
	rng := NewRNG(8)
	m := New(300, 300)
	m.FillNormal(rng, 2, 0.5)
	mean := m.Sum() / float64(len(m.Data))
	if math.Abs(mean-2) > 0.02 {
		t.Fatalf("FillNormal mean %v", mean)
	}
}
