package core

import (
	"fmt"
	"sync"

	"repro/internal/bitassign"
	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// The Adaptive Bit-width Assigner (paper §3.3, Fig. 6). Each device traces
// the value ranges of the messages it sends (step 1); the traces are
// gathered at the master (rank 0, step 2), which builds one bi-objective
// problem per (layer, direction) and solves them in parallel (step 3); the
// resulting width tables are scattered back and installed on both the
// sending and receiving sides of every pair (step 4).

// assignState is the per-device assigner bookkeeping.
type assignState struct {
	lg     *partition.LocalGraph
	layers int
	dims   []int // dims[l] = dimension of layer-l messages (layer input)

	// alphaSq[slot] = Σ_{v ∈ N_T(k)} α²_{k,v}: the receiver-side factor of
	// β (Theorem 3) for each of this device's halo slots. Static.
	alphaSq []float64

	// Traced (max−min)² per sent message, refreshed on tracing epochs:
	// fwdRange2[l][dst][j] for forward sends (wire order SendTo[dst]);
	// bwdRange2[l][src][j] for backward sends (wire order RecvFrom[src]).
	fwdRange2 [][][]float64
	bwdRange2 [][][]float64

	// Current width tables, per layer.
	fwdW []*widthTable
	bwdW []*widthTable
}

func newAssignState(cfg *Config, lg *partition.LocalGraph, inDim int) *assignState {
	st := &assignState{lg: lg, layers: cfg.Layers, dims: messageDims(cfg, inDim)}
	st.alphaSq = make([]float64, lg.NumHalo)
	for u := 0; u < lg.NumLocal; u++ {
		ws := lg.Adj.EdgeWeights(u)
		for k, v := range lg.Adj.Neighbors(u) {
			if int(v) >= lg.NumLocal {
				w := float32(1)
				if ws != nil {
					w = ws[k]
				}
				st.alphaSq[int(v)-lg.NumLocal] += float64(w) * float64(w)
			}
		}
	}
	st.fwdRange2 = make([][][]float64, cfg.Layers)
	st.bwdRange2 = make([][][]float64, cfg.Layers)
	st.fwdW = make([]*widthTable, cfg.Layers)
	st.bwdW = make([]*widthTable, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		st.fwdRange2[l] = emptyRanges(lg, true)
		st.bwdRange2[l] = emptyRanges(lg, false)
		st.fwdW[l] = newWidthTable(lg, true, quant.B8)
		st.bwdW[l] = newWidthTable(lg, false, quant.B8)
	}
	return st
}

func emptyRanges(lg *partition.LocalGraph, fwd bool) [][]float64 {
	out := make([][]float64, lg.Parts)
	for d := range out {
		n := len(lg.SendTo[d])
		if !fwd {
			n = len(lg.RecvFrom[d])
		}
		out[d] = make([]float64, n)
	}
	return out
}

// traceForward records (max−min)² of each row this device sends at layer l.
func (st *assignState) traceForward(l int, xLocal *tensor.Matrix) {
	for q := range st.fwdRange2[l] {
		for j, r := range st.lg.SendTo[q] {
			mn, mx := tensor.MinMax(xLocal.Row(int(r)))
			d := float64(mx - mn)
			st.fwdRange2[l][q][j] = d * d
		}
	}
}

// traceBackward records (max−min)² of each halo-gradient row at layer l.
func (st *assignState) traceBackward(l int, dxFull *tensor.Matrix) {
	for p := range st.bwdRange2[l] {
		for j, s := range st.lg.RecvFrom[p] {
			mn, mx := tensor.MinMax(dxFull.Row(int(s) + st.lg.NumLocal))
			d := float64(mx - mn)
			st.bwdRange2[l][p][j] = d * d
		}
	}
}

// Wire messages (binary format in assigner_wire.go).

type traceMsg struct {
	Rank int
	// RecvAlpha[src][j] = Σα² for halo slots RecvFrom[src][j].
	RecvAlpha [][]float64
	// Fwd[l][dst][j], Bwd[l][src][j]: traced range².
	Fwd [][][]float64
	Bwd [][][]float64
}

type widthMsg struct {
	// FwdSend[l][dst][j], FwdRecv[l][src][j], BwdSend[l][dst][j],
	// BwdRecv[l][src][j].
	FwdSend, FwdRecv, BwdSend, BwdRecv [][][]quant.BitWidth
}

// runAssignment executes the 4-step protocol. Every device must call it;
// widths tables are updated in place. Master compute time is charged to
// timing.Assign; gather/scatter communication is charged by the
// collectives; non-master devices block (Idle) until results arrive —
// exactly the paper's "blocks the current training worker".
func runAssignment(dev Transport, cfg *Config, st *assignState) error {
	n := dev.Size()
	report := traceMsg{Rank: dev.Rank(), Fwd: st.fwdRange2, Bwd: st.bwdRange2}
	report.RecvAlpha = make([][]float64, n)
	for p := 0; p < n; p++ {
		as := make([]float64, len(st.lg.RecvFrom[p]))
		for j, slot := range st.lg.RecvFrom[p] {
			as[j] = st.alphaSq[slot]
		}
		report.RecvAlpha[p] = as
	}
	gathered := dev.GatherBytes(0, encodeTrace(&report))

	var scattered [][]byte
	if dev.Rank() == 0 {
		reports := make([]*traceMsg, n)
		for r, b := range gathered {
			var m traceMsg
			if err := decodeTrace(b, &m); err != nil {
				return fmt.Errorf("core: decoding trace from rank %d: %w", r, err)
			}
			reports[r] = &m
		}
		msgs, solveCost := solveAllProblems(dev, cfg, st, reports)
		dev.Clock().Advance(timing.Assign, solveCost)
		scattered = make([][]byte, n)
		for r := range msgs {
			scattered[r] = encodeWidths(msgs[r])
		}
	}
	mine := dev.ScatterBytes(0, scattered)
	var wm widthMsg
	if err := decodeWidths(mine, &wm); err != nil {
		return fmt.Errorf("core: rank %d decoding widths: %w", dev.Rank(), err)
	}
	for l := 0; l < st.layers; l++ {
		st.fwdW[l] = &widthTable{send: wm.FwdSend[l], recv: wm.FwdRecv[l]}
		st.bwdW[l] = &widthTable{send: wm.BwdSend[l], recv: wm.BwdRecv[l]}
	}
	return nil
}

// solveAllProblems builds and solves one Problem per (layer, direction) on
// the master, in parallel goroutines (the paper's thread pool, step 3),
// and packages per-device width tables. Returns the simulated solve cost.
func solveAllProblems(dev Transport, cfg *Config, st *assignState, reports []*traceMsg) ([]*widthMsg, timing.Seconds) {
	n := len(reports)
	model := dev.Model()
	theta := make([]float64, n*n)
	gamma := make([]float64, n*n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			theta[s*n+d] = model.Theta(s, d)
			gamma[s*n+d] = model.Gamma()
		}
	}

	type solved struct {
		layer  int
		fwd    bool
		widths map[int][]quant.BitWidth // pair → per-slot widths
		cost   timing.Seconds
	}
	var wg sync.WaitGroup
	results := make(chan solved, 2*st.layers)
	launch := func(layer int, fwd bool) {
		defer wg.Done()
		dim := st.dims[layer]
		var msgs []bitassign.Message
		for src := 0; src < n; src++ {
			var ranges [][]float64
			if fwd {
				ranges = reports[src].Fwd[layer]
			} else {
				ranges = reports[src].Bwd[layer]
			}
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				for j, r2 := range ranges[dst] {
					beta := float64(dim) * r2 / 6
					if fwd {
						// Receiver-side Σα² factor: dst's halo slots fed
						// by src, wire position j.
						beta *= reports[dst].RecvAlpha[src][j]
					}
					// Backward scatter-adds with unit coefficients (α was
					// applied on the sender inside the transposed
					// aggregation), so Σα² = 1 there.
					msgs = append(msgs, bitassign.Message{
						Pair: src*n + dst, Slot: j, Dim: dim, Beta: beta,
					})
				}
			}
		}
		prob := bitassign.NewProblem(msgs, cfg.GroupSize, theta, gamma, cfg.Lambda)
		widths := prob.Solve()
		// Simulated solver cost: greedy move loop is O(groups² · pairs)
		// objective evaluations in the worst case; charge a per-evaluation
		// constant calibrated to the paper's ~5% wall-clock overhead.
		cost := timing.Seconds(1e-3 + 5e-8*float64(len(prob.Groups)*len(prob.Groups)))
		results <- solved{layer: layer, fwd: fwd, widths: prob.ExpandToSlots(widths), cost: cost}
	}
	for l := 0; l < st.layers; l++ {
		wg.Add(1)
		go launch(l, true)
		if l > 0 { // layer 0 has no backward exchange
			wg.Add(1)
			go launch(l, false)
		}
	}
	wg.Wait()
	close(results)

	out := make([]*widthMsg, n)
	for r := 0; r < n; r++ {
		wm := &widthMsg{
			FwdSend: emptyWidthGrid(st.layers, n), FwdRecv: emptyWidthGrid(st.layers, n),
			BwdSend: emptyWidthGrid(st.layers, n), BwdRecv: emptyWidthGrid(st.layers, n),
		}
		// Default sizes/widths for slots the solver did not cover
		// (all-constant rows trace to β=0 but still occupy slots — they
		// are covered; this is belt-and-braces for empty pairs).
		out[r] = wm
	}
	var totalCost timing.Seconds
	for s := range results {
		totalCost += s.cost
		for pair, ws := range s.widths {
			src, dst := pair/n, pair%n
			if s.fwd {
				out[src].FwdSend[s.layer][dst] = ws
				out[dst].FwdRecv[s.layer][src] = ws
			} else {
				out[src].BwdSend[s.layer][dst] = ws
				out[dst].BwdRecv[s.layer][src] = ws
			}
		}
	}
	// Fill any missing tables with sizes from the reports so width tables
	// always match wire sizes.
	for r := 0; r < n; r++ {
		for l := 0; l < st.layers; l++ {
			for d := 0; d < n; d++ {
				fixWidths(&out[r].FwdSend[l][d], len(reports[r].Fwd[l][d]))
				fixWidths(&out[r].FwdRecv[l][d], len(reports[d].Fwd[l][r]))
				fixWidths(&out[r].BwdSend[l][d], len(reports[r].Bwd[l][d]))
				fixWidths(&out[r].BwdRecv[l][d], len(reports[d].Bwd[l][r]))
			}
		}
	}
	return out, totalCost
}

func emptyWidthGrid(layers, n int) [][][]quant.BitWidth {
	g := make([][][]quant.BitWidth, layers)
	for l := range g {
		g[l] = make([][]quant.BitWidth, n)
	}
	return g
}

func fixWidths(ws *[]quant.BitWidth, want int) {
	if len(*ws) == want {
		return
	}
	*ws = quant.UniformWidths(want, quant.B8)
}

// pairDeterministicWidths derives a width table both sides of a pair can
// compute independently — used by the uniform-random ablation
// (AdaQPRandom), where no master scatter happens. The stream is seeded by
// (seed, period index, layer, direction, src, dst) so sender and receiver
// agree exactly.
func pairDeterministicWidths(seed uint64, period, layer int, fwd bool, src, dst, n int) *tensor.RNG {
	h := seed
	mix := func(x uint64) {
		h ^= x + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	mix(uint64(period + 1))
	mix(uint64(layer + 1))
	if fwd {
		mix(3)
	} else {
		mix(5)
	}
	mix(uint64(src + 1))
	mix(uint64(dst + 1))
	return tensor.NewRNG(h)
}

// installRandomWidths fills st's tables with the uniform-random sampling
// scheme of Table 6, consistently on both endpoints of every pair.
func (st *assignState) installRandomWidths(seed uint64, periodIdx, parts, rank int) {
	for l := 0; l < st.layers; l++ {
		for d := 0; d < parts; d++ {
			if d == rank {
				continue
			}
			st.fwdW[l].send[d] = quant.RandomWidths(len(st.lg.SendTo[d]),
				pairDeterministicWidths(seed, periodIdx, l, true, rank, d, parts))
			st.fwdW[l].recv[d] = quant.RandomWidths(len(st.lg.RecvFrom[d]),
				pairDeterministicWidths(seed, periodIdx, l, true, d, rank, parts))
			st.bwdW[l].send[d] = quant.RandomWidths(len(st.lg.RecvFrom[d]),
				pairDeterministicWidths(seed, periodIdx, l, false, rank, d, parts))
			st.bwdW[l].recv[d] = quant.RandomWidths(len(st.lg.SendTo[d]),
				pairDeterministicWidths(seed, periodIdx, l, false, d, rank, parts))
		}
	}
}

// installUniformWidths sets every message's width to b (AdaQPUniform).
func (st *assignState) installUniformWidths(b quant.BitWidth) {
	for l := 0; l < st.layers; l++ {
		st.fwdW[l] = newWidthTable(st.lg, true, b)
		st.bwdW[l] = newWidthTable(st.lg, false, b)
	}
}
