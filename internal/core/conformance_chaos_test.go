package core

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// TestTransportChaosConformance runs every registered backend through the
// chaos-mode conformance suite at two cluster sizes.
func TestTransportChaosConformance(t *testing.T) {
	for _, name := range TransportNames() {
		f, err := LookupTransport(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{2, 4} {
			for _, v := range ConformTransportChaos(f, parts) {
				t.Errorf("%s parts=%d: %v", name, parts, v)
			}
		}
	}
}

// lossParity compares everything except the byte ledger (a crashed run's
// doomed epoch genuinely re-moves bytes) and the clocks.
func lossParity(t *testing.T, label string, ref, got *metrics.RunResult) {
	t.Helper()
	cmp := *got
	cmp.BytesMoved = ref.BytesMoved
	if desc := runDivergence(ref, &cmp, false); desc != "" {
		t.Errorf("%s: faulted run diverged from fault-free (%s)", label, desc)
	}
}

// TestChaosSlowdownDeterminism pins the fault-injection contract on both
// backends: a slowdown-only plan leaves losses, accuracy and the byte
// ledger bit-identical to the fault-free run, repeated runs are
// bit-identical including clocks, and wall-clock strictly grows.
func TestChaosSlowdownDeterminism(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	spec := chaos.Spec{Seed: 3, Stragglers: 2, SlowFactor: 3, LinkFactor: 2}
	ref := confTrain(t, dep, confTrainConfig(CodecFP32))
	for _, tr := range TransportNames() {
		cfg := confTrainConfig(CodecFP32)
		cfg.Transport = tr
		cfg.Faults = spec
		a := confTrain(t, dep, cfg)
		b := confTrain(t, dep, cfg)
		if desc := runDivergence(a, b, true); desc != "" {
			t.Errorf("%s: two identical faulted runs diverged (%s)", tr, desc)
		}
		if desc := runDivergence(ref, a, false); desc != "" {
			t.Errorf("%s: slowdown-only faults changed the results (%s)", tr, desc)
		}
		if a.WallClock <= ref.WallClock {
			t.Errorf("%s: faulted wall-clock %v not above fault-free %v", tr, a.WallClock, ref.WallClock)
		}
		if a.Faults.Stragglers != 2 {
			t.Errorf("%s: reported %d stragglers, want 2", tr, a.Faults.Stragglers)
		}
	}
	// The async backend's staleness relaxation must not disturb the fault
	// schedule: losses stay equal at positive staleness too.
	cfg := confTrainConfig(CodecFP32)
	cfg.Transport = TransportShardedAsync
	cfg.TransportStaleness = 4
	cfg.Faults = spec
	lossParity(t, "sharded staleness=4", ref, confTrain(t, dep, cfg))
}

// TestChaosTransientRetries: transient failures charge retries without
// touching results, and the deterministic failure schedule counts the same
// on every backend.
func TestChaosTransientRetries(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	spec := chaos.Spec{Seed: 9, FailRate: 0.3, MaxRetries: 2, Backoff: 0.01}
	ref := confTrain(t, dep, confTrainConfig(CodecFP32))
	var retries []int64
	for _, tr := range TransportNames() {
		cfg := confTrainConfig(CodecFP32)
		cfg.Transport = tr
		cfg.Faults = spec
		got := confTrain(t, dep, cfg)
		if desc := runDivergence(ref, got, false); desc != "" {
			t.Errorf("%s: transient failures changed the results (%s)", tr, desc)
		}
		if got.Faults.Retries == 0 {
			t.Errorf("%s: fail rate 0.3 over a full run scheduled no retries", tr)
		}
		if got.Faults.RetryTime <= 0 {
			t.Errorf("%s: %d retries charged no time", tr, got.Faults.Retries)
		}
		retries = append(retries, got.Faults.Retries)
	}
	for i := 1; i < len(retries); i++ {
		if retries[i] != retries[0] {
			t.Errorf("backends disagree on the retry count: %v (schedule must be backend-invariant)", retries)
		}
	}
}

// TestChaosCrashRecovery: a scheduled crash replays the doomed epoch bit
// for bit on both backends — including through ef-quant's checkpointed
// error-feedback residuals — and counts exactly one crash.
func TestChaosCrashRecovery(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	spec := chaos.Spec{Seed: 5, CrashEpoch: 3, RestartPenalty: 50}
	for _, codec := range []string{CodecFP32, CodecEFQuant} {
		ref := confTrain(t, dep, confTrainConfig(codec))
		for _, tr := range TransportNames() {
			cfg := confTrainConfig(codec)
			cfg.Transport = tr
			cfg.Faults = spec
			got := confTrain(t, dep, cfg)
			lossParity(t, tr+"/"+codec, ref, got)
			if got.Faults.Crashes != 1 {
				t.Errorf("%s/%s: counted %d crashes, want 1", tr, codec, got.Faults.Crashes)
			}
			if got.Faults.RecoveryTime != 50 {
				t.Errorf("%s/%s: recovery time %v, want the restart penalty 50", tr, codec, got.Faults.RecoveryTime)
			}
		}
		cfg := confTrainConfig(codec)
		cfg.Transport = TransportShardedAsync
		cfg.TransportStaleness = 4
		cfg.Faults = spec
		lossParity(t, "sharded staleness=4/"+codec, ref, confTrain(t, dep, cfg))
	}
}

// TestChaosCrashRejectsUncheckpointableCodec: a stateful codec without
// checkpoint support cannot replay a crashed epoch; scheduling a crash
// with one must fail loudly instead of silently diverging.
func TestChaosCrashRejectsUncheckpointableCodec(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	cfg := confTrainConfig(CodecDelta)
	cfg.Faults = chaos.Spec{Seed: 5, CrashEpoch: 3}
	_, err := TrainDeployed(dep, cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("crash plan with stateful uncheckpointable codec: got err %v, want checkpoint-support rejection", err)
	}
}

// ---- deliberately broken transports: chaos mode must catch each class
// of under-fault contract violation ----

// corruptPayloadDev flips a byte of every received all2all payload.
type corruptPayloadDev struct{ Transport }

func (d corruptPayloadDev) RingAll2All(p [][]byte) [][]byte {
	recv := d.Transport.RingAll2All(p)
	for _, b := range recv {
		if len(b) > 0 {
			b[0] ^= 0xff
		}
	}
	return recv
}

// doubleSendDev moves every all2all payload twice, doubling the ledger.
type doubleSendDev struct{ Transport }

func (d doubleSendDev) RingAll2All(p [][]byte) [][]byte {
	dup := make([][]byte, len(p))
	for i, b := range p {
		if b != nil {
			dup[i] = append([]byte(nil), b...)
		}
	}
	d.Transport.RingAll2All(dup)
	return d.Transport.RingAll2All(p)
}

// lateCorruptDev perturbs allreduce results only once the simulated clock
// passes a threshold no clean tiny run reaches — the corruption triggers
// exclusively after a crash's restart penalty inflates the clocks, so only
// the crash-recovery check can see it.
type lateCorruptDev struct{ Transport }

func (d lateCorruptDev) AllReduceSum(ms []*tensor.Matrix) {
	d.Transport.AllReduceSum(ms)
	if d.Clock().Now() > 500 {
		for _, m := range ms {
			if len(m.Data) > 0 {
				m.Data[0] += 1
			}
		}
	}
}

func TestChaosConformanceCatchesBrokenTransports(t *testing.T) {
	cases := []struct {
		name      string
		factory   RuntimeFactory
		wantCheck string
	}{
		{"corrupted payloads", brokenFactory(func(d Transport) Transport { return corruptPayloadDev{d} }), "chaos-delivery"},
		{"recycled buffers", brokenFactory(func(d Transport) Transport { return &scratchDev{Transport: d} }), "chaos-ownership"},
		{"no-op barrier", brokenFactory(func(d Transport) Transport { return noBarrierDev{d} }), "chaos-clock-parity"},
		{"uncharged all2all", brokenFactory(func(d Transport) Transport { return unchargedDev{d} }), "chaos-retry-charge"},
		{"double-moved payloads", brokenFactory(func(d Transport) Transport { return doubleSendDev{d} }), "chaos-byte-accounting"},
		{"post-restart corruption", brokenFactory(func(d Transport) Transport { return lateCorruptDev{d} }), "chaos-crash-recovery"},
	}
	for _, tc := range cases {
		vs := ConformTransportChaos(tc.factory, 4)
		found := false
		for _, v := range vs {
			if strings.HasPrefix(v.Check, tc.wantCheck) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: chaos conformance missed the violation (want a %q check); got %v", tc.name, tc.wantCheck, vs)
		}
	}
}

// TestFaultPlanLinkSlowdownChargesMore pins that link stragglers actually
// pay on the wire: a link-slowed plan's wall-clock exceeds the same plan
// with links intact.
func TestFaultPlanLinkSlowdownChargesMore(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	run := func(link float64) timing.Seconds {
		cfg := confTrainConfig(CodecFP32)
		cfg.Faults = chaos.Spec{Seed: 4, Stragglers: 2, SlowFactor: 1.5, LinkFactor: link}
		return confTrain(t, dep, cfg).WallClock
	}
	if slow, fast := run(8), run(1); slow <= fast {
		t.Errorf("link-slowed wall-clock %v not above link-intact %v", slow, fast)
	}
}
