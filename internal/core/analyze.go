package core

import (
	"repro/internal/cluster"
	"repro/internal/quant"
	"repro/internal/timing"
)

// DeviceOverlap is one device's analytical per-epoch timing decomposition,
// used by Table 2 (central computation vs 2-bit marginal communication) and
// Fig. 3 (computation of all nodes vs marginal nodes only).
type DeviceOverlap struct {
	Device int
	// CommSeconds is the time this device spends moving quantized
	// marginal-node messages per epoch (its own links, summed over layers
	// and both passes).
	CommSeconds timing.Seconds
	// CentralComp / MarginalComp are the per-epoch computation shares of
	// central and marginal nodes; TotalComp = CentralComp + MarginalComp.
	CentralComp  timing.Seconds
	MarginalComp timing.Seconds
	TotalComp    timing.Seconds
}

// AnalyzeOverlap computes, without training, each device's per-epoch
// communication time at uniform bit-width b and its central/marginal
// computation split — the measurements behind the paper's §2.2 motivation
// (Tables 2, Fig. 3): even at 2-bit, communication exceeds central
// computation, so the overlap hides the latter completely.
func AnalyzeOverlap(dep *Deployment, cfg Config, b quant.BitWidth, model *timing.CostModel) []DeviceOverlap {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if model == nil {
		model = timing.Default()
	}
	ds := dep.Dataset
	parts := len(dep.Locals)
	dims := make([]int, cfg.Layers)
	dims[0] = ds.Features.Cols
	for l := 1; l < cfg.Layers; l++ {
		dims[l] = cfg.Hidden
	}
	// Per-epoch ring-all2all time at width b: L forward exchanges plus
	// L−1 backward exchanges, each paid round by round with the slowest
	// pair setting the round's pace (the straggler effect of §2.2). All
	// devices advance together through rounds, so this is charged to every
	// device; per-device variation then comes from its own pair times.
	var ringComm timing.Seconds
	ownComm := make([]timing.Seconds, parts)
	for l := 0; l < cfg.Layers; l++ {
		for _, fwd := range []bool{true, false} {
			if !fwd && l == 0 {
				continue
			}
			bytes := make([][]int, parts)
			for src, lg := range dep.Locals {
				bytes[src] = make([]int, parts)
				for dst := 0; dst < parts; dst++ {
					if dst == src {
						continue
					}
					rows := len(lg.SendTo[dst])
					if !fwd {
						rows = len(lg.RecvFrom[dst])
					}
					if rows > 0 {
						bytes[src][dst] = quant.WireSize(rows, dims[l], b)
					}
				}
			}
			ringComm += cluster.All2AllTime(model, bytes)
			for src := range bytes {
				for dst, by := range bytes[src] {
					ownComm[src] += model.TransferTime(src, dst, by)
				}
			}
		}
	}

	out := make([]DeviceOverlap, parts)
	for rank, lg := range dep.Locals {
		dm := newDeviceModel(&cfg, lg, ds.Features.Cols, ds.NumClasses, model)
		o := DeviceOverlap{Device: rank}
		for _, c := range dm.costs {
			o.CentralComp += c.fwdCentral + c.bwdCentral
			o.MarginalComp += c.fwdMarginal + c.bwdMarginal
		}
		// The device is busy for the synchronized ring duration; weight
		// slightly by its own link load so per-device texture survives.
		o.CommSeconds = (ringComm + ownComm[rank]) / 2
		o.TotalComp = o.CentralComp + o.MarginalComp
		out[rank] = o
	}
	return out
}

// PairBytesFirstLayer returns the full-precision bytes each device pair
// transfers in the first GNN layer's forward pass — Fig. 2's measurement.
func PairBytesFirstLayer(dep *Deployment) [][]int {
	n := len(dep.Locals)
	dim := dep.Dataset.Features.Cols
	out := make([][]int, n)
	for src, lg := range dep.Locals {
		out[src] = make([]int, n)
		for dst := range lg.SendTo {
			if dst != src {
				out[src][dst] = 4 * dim * len(lg.SendTo[dst])
			}
		}
	}
	return out
}
