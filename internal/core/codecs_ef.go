package core

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// ---- ef-quant: uniform quantization with error feedback ----
//
// The standard competitor to adaptive assignment (EF-SGD / 1-bit-Adam
// lineage): every message is quantized at one fixed width, but the
// quantization error of each epoch is carried as a residual and added to
// the next epoch's message before quantizing, so the error telescopes
// instead of accumulating. The sender de-quantizes its own stream to
// compute the exact error the receiver sees, which keeps both ends
// consistent without extra traffic.
//
// Wire format per destination: the quant.QuantizeRows stream (per row:
// [Zero float32][Scale float32][packed codes]) at Config.UniformBits.
// The schedule is sequential (no AdaQP overlap): compression competitors
// are modeled as drop-in replacements for the fp32 exchange.

type efQuantCodec struct {
	bits quant.BitWidth
	// fwdResid[l][q] carries the accumulated quantization error of the
	// rows this device sends to q at layer l (wire order SendTo[q]);
	// bwdResid[l][p] covers the backward sends (wire order RecvFrom[p]).
	fwdResid [][]*tensor.Matrix
	bwdResid [][]*tensor.Matrix
}

func newEFQuantCodec(env *CodecEnv) (MessageCodec, error) {
	if !env.Cfg.UniformBits.Packable() {
		return nil, fmt.Errorf("core: ef-quant requires a packable bit-width (2|4|8), got %d (set UniformBits)", env.Cfg.UniformBits)
	}
	lg := env.Graph()
	dims := messageDims(env.Cfg, env.InDim)
	c := &efQuantCodec{
		bits:     env.Cfg.UniformBits,
		fwdResid: make([][]*tensor.Matrix, env.Cfg.Layers),
		bwdResid: make([][]*tensor.Matrix, env.Cfg.Layers),
	}
	for l := 0; l < env.Cfg.Layers; l++ {
		c.fwdResid[l] = make([]*tensor.Matrix, lg.Parts)
		c.bwdResid[l] = make([]*tensor.Matrix, lg.Parts)
		for q := 0; q < lg.Parts; q++ {
			if n := len(lg.SendTo[q]); n > 0 {
				c.fwdResid[l][q] = tensor.New(n, dims[l])
			}
			// Layer 0 has no backward exchange (the trainer returns before
			// the codec is called), so its residuals would be dead weight.
			if n := len(lg.RecvFrom[q]); n > 0 && l > 0 {
				c.bwdResid[l][q] = tensor.New(n, dims[l])
			}
		}
	}
	return c, nil
}

func (c *efQuantCodec) Name() string { return CodecEFQuant }

// Stateful: the residuals are genuine cross-epoch state — replacing an
// instance mid-run would silently drop the carried error.
func (c *efQuantCodec) Stateful() bool { return true }

// encodeEF quantizes rows idx of x plus the carried residual, then
// updates the residual to the new quantization error (corrected minus
// the receiver's reconstruction). The returned stream comes from the
// arena; ownership passes to the transport.
func (c *efQuantCodec) encodeEF(a *Arena, x *tensor.Matrix, idx []int32, resid *tensor.Matrix, rng *tensor.RNG) ([]byte, error) {
	corrected := a.GetMat(len(idx), x.Cols)
	gatherRowsInto(corrected, x, idx)
	corrected.AddInPlace(resid)
	stream := quant.AppendQuantizedRows(
		a.GetBuf(quant.WireSize(corrected.Rows, corrected.Cols, c.bits)),
		corrected, nil, c.bits, rng)
	recon := a.GetMat(corrected.Rows, corrected.Cols)
	if err := quant.DequantizeRows(stream, recon, nil, recon.Rows, c.bits); err != nil {
		return nil, err
	}
	for i := range resid.Data {
		resid.Data[i] = corrected.Data[i] - recon.Data[i]
	}
	a.PutMat(recon)
	a.PutMat(corrected)
	return stream, nil
}

func (c *efQuantCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	lg, dev := env.Graph, env.Dev
	n := dev.Size()
	model := dev.Model()
	// Send-side kernels run twice over every element: quantize, then the
	// error-feedback self-dequantization that measures the residual.
	dev.Clock().Advance(timing.Quant, model.QuantTime(2*wireElems(lg.SendTo, h.Cols)))
	a := env.Scratch
	payloads := a.Payloads(n)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		buf, err := c.encodeEF(a, h, lg.SendTo[q], c.fwdResid[l][q], dev.Rand())
		if err != nil {
			return err
		}
		payloads[q] = buf
	}
	recv := dev.RingAll2All(payloads)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		idx := env.HaloIdx(p)
		if err := quant.DequantizeRows(recv[p], xFull, idx, len(idx), c.bits); err != nil {
			return fmt.Errorf("ef-quant: rank %d from %d: %w", dev.Rank(), p, err)
		}
	}
	a.ReleaseAll(recv)
	dev.Clock().Advance(timing.Quant, model.QuantTime(wireElems(lg.RecvFrom, xFull.Cols)))
	dev.Clock().Advance(timing.Comp, env.ForwardCosts(l).Total)
	return nil
}

func (c *efQuantCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	lg, dev := env.Graph, env.Dev
	n := dev.Size()
	model := dev.Model()
	dev.Clock().Advance(timing.Comp, env.BackwardCosts(l).Total)
	dev.Clock().Advance(timing.Quant, model.QuantTime(2*wireElems(lg.RecvFrom, dxFull.Cols)))
	a := env.Scratch
	payloads := a.Payloads(n)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		buf, err := c.encodeEF(a, dxFull, env.HaloIdx(p), c.bwdResid[l][p], dev.Rand())
		if err != nil {
			return err
		}
		payloads[p] = buf
	}
	recv := dev.RingAll2All(payloads)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		tmp := a.GetMat(len(lg.SendTo[q]), dxLocal.Cols)
		if err := quant.DequantizeRows(recv[q], tmp, nil, tmp.Rows, c.bits); err != nil {
			return fmt.Errorf("ef-quant: rank %d grads from %d: %w", dev.Rank(), q, err)
		}
		scatterAddRows32(dxLocal, lg.SendTo[q], tmp)
		a.PutMat(tmp)
	}
	a.ReleaseAll(recv)
	dev.Clock().Advance(timing.Quant, model.QuantTime(wireElems(lg.SendTo, dxLocal.Cols)))
	return nil
}

func (c *efQuantCodec) EpochEnd(*ExchangeEnv, int) error { return nil }

// efCheckpoint is a deep copy of the carried residuals, keyed by the same
// [layer][peer] layout as the live state.
type efCheckpoint struct {
	fwd, bwd [][][]float32
}

func copyResid(resid [][]*tensor.Matrix) [][][]float32 {
	out := make([][][]float32, len(resid))
	for l, row := range resid {
		out[l] = make([][]float32, len(row))
		for q, m := range row {
			if m != nil {
				out[l][q] = append([]float32(nil), m.Data...)
			}
		}
	}
	return out
}

func restoreResid(resid [][]*tensor.Matrix, saved [][][]float32) {
	for l, row := range resid {
		for q, m := range row {
			if m != nil {
				copy(m.Data, saved[l][q])
			}
		}
	}
}

// CheckpointState/RestoreCheckpoint make ef-quant crash-recoverable: the
// residuals are the only cross-epoch state, so a deep copy suffices.
func (c *efQuantCodec) CheckpointState() any {
	return &efCheckpoint{fwd: copyResid(c.fwdResid), bwd: copyResid(c.bwdResid)}
}

func (c *efQuantCodec) RestoreCheckpoint(state any) {
	cp := state.(*efCheckpoint)
	restoreResid(c.fwdResid, cp.fwd)
	restoreResid(c.bwdResid, cp.bwd)
}

// ForwardErrorBound: at epoch 0 the residual is zero, so the decode error
// is plain uniform quantization — one level S = (mx−mn)/(2^b−1).
func (c *efQuantCodec) ForwardErrorBound(mn, mx float32, _ int) float64 {
	return float64(mx-mn) / float64(c.bits.Levels())
}

func (c *efQuantCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	out := make([]int, lg.Parts)
	for q := range out {
		out[q] = quant.WireSize(len(lg.SendTo[q]), dim, c.bits)
	}
	return out
}
