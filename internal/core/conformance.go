package core

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// This file is the executable form of the Transport contract (see
// transport.go): every registered backend — and any future out-of-tree one
// — must pass ConformTransport before training results on it can be
// trusted. The checks treat package cluster's documented semantics as the
// specification: collective payload delivery, receiver buffer ownership,
// simulated clock charging (Comm/Idle split), byte accounting, and the
// silence of the Raw* metrics sideband, plus a scripted run compared
// field-by-field against the in-process reference.

// Violation is one conformance failure: Check names the contract clause
// ("barrier-clock", "payload-ownership", ...), Detail says what diverged.
type Violation struct {
	Check  string
	Detail string
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// vioCollector accumulates violations from concurrent device bodies.
type vioCollector struct {
	mu sync.Mutex
	v  []Violation
}

func (c *vioCollector) addf(check, format string, args ...any) {
	c.mu.Lock()
	c.v = append(c.v, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	c.mu.Unlock()
}

// ConformTransport verifies a runtime backend against the synchronous
// (staleness-0) Transport collective contract with parts devices, using
// the default cost model. It returns nil when the backend conforms; each
// Violation pinpoints a contract clause the backend broke. parts >= 2 is
// required to exercise cross-device traffic.
func ConformTransport(f RuntimeFactory, parts int) []Violation {
	if parts < 2 {
		return []Violation{{Check: "setup", Detail: fmt.Sprintf("conformance needs parts >= 2, got %d", parts)}}
	}
	col := &vioCollector{}
	checkBarrier(f, parts, col)
	checkRingAll2All(f, parts, col)
	checkAllReduce(f, parts, col)
	checkGather(f, parts, col)
	checkScatter(f, parts, col)
	checkBroadcast(f, parts, col)
	checkSplitBroadcast(f, parts, col)
	checkSplitScatter(f, parts, col)
	checkOverlapCharge(f, parts, col)
	checkRawSideband(f, parts, col)
	checkReferenceParity(f, parts, col)
	return col.v
}

// runBody runs body on a fresh runtime from f, recording a runtime-error
// violation instead of propagating failures.
func runBody(f RuntimeFactory, parts int, col *vioCollector, body func(Transport) error) Runtime {
	rt := f(TransportSpec{Parts: parts})
	if err := rt.Run(1, body); err != nil {
		col.addf("runtime-error", "%v", err)
	}
	return rt
}

// skew advances each device's clock by a rank-dependent compute time so
// the checks can observe how the collective aligns stragglers.
func skew(dev Transport) (own, max timing.Seconds) {
	own = timing.Seconds(dev.Rank() + 1)
	dev.Clock().Advance(timing.Comp, own)
	return own, timing.Seconds(dev.Size())
}

// checkBarrier: all devices must rendezvous (no device passes before every
// device arrived) and align clocks to the slowest arrival, charging the
// gap to Idle.
func checkBarrier(f RuntimeFactory, parts int, col *vioCollector) {
	var arrived int32
	runBody(f, parts, col, func(dev Transport) error {
		own, max := skew(dev)
		// Wall-clock stagger makes a non-rendezvousing barrier observable:
		// early ranks would pass while late ranks have not yet arrived.
		time.Sleep(time.Duration(dev.Rank()) * 2 * time.Millisecond)
		atomic.AddInt32(&arrived, 1)
		dev.Barrier()
		if got := atomic.LoadInt32(&arrived); got != int32(parts) {
			col.addf("barrier-rendezvous", "rank %d passed the barrier having observed %d/%d arrivals", dev.Rank(), got, parts)
		}
		if now := dev.Clock().Now(); now != max {
			col.addf("barrier-clock", "rank %d clock %v after barrier, want alignment to slowest arrival %v", dev.Rank(), now, max)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("barrier-clock", "rank %d charged %v to Idle, want the straggler gap %v", dev.Rank(), idle, max-own)
		}
		return nil
	})
}

// ringSizes returns deterministic, pairwise-distinct payload sizes.
func ringSizes(parts int) [][]int {
	sizes := make([][]int, parts)
	for s := range sizes {
		sizes[s] = make([]int, parts)
		for d := range sizes[s] {
			if s != d {
				sizes[s][d] = 32*(s+1) + 8*(d+1)
			}
		}
	}
	return sizes
}

// pattern fills a deterministic, (src,dst,round)-tagged payload.
func pattern(n, src, dst, round int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(src*31 + dst*13 + round*7 + i)
	}
	return buf
}

// checkRingAll2All: payload delivery, receiver buffer ownership across
// calls, the round-by-round Comm charge, entry Idle alignment, and byte
// accounting.
func checkRingAll2All(f RuntimeFactory, parts int, col *vioCollector) {
	sizes := ringSizes(parts)
	perCall := cluster.All2AllTime(timing.Default(), sizes)
	rt := runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, max := skew(dev)
		makePayloads := func(round int) [][]byte {
			p := make([][]byte, parts)
			for q := range p {
				if q != r {
					p[q] = pattern(sizes[r][q], r, q, round)
				}
			}
			return p
		}
		first := dev.RingAll2All(makePayloads(0))
		for p := 0; p < parts; p++ {
			if p == r {
				if first[p] != nil {
					col.addf("all2all-payload", "rank %d received a non-nil self payload", r)
				}
				continue
			}
			if !bytes.Equal(first[p], pattern(sizes[p][r], p, r, 0)) {
				col.addf("all2all-payload", "rank %d received wrong payload from %d", r, p)
			}
		}
		if comm := dev.Clock().Spent(timing.Comm); comm != perCall {
			col.addf("all2all-clock-charge", "rank %d charged %v to Comm, want the ring schedule's %v", r, comm, perCall)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("all2all-clock-charge", "rank %d charged %v to Idle, want the entry-wait gap %v", r, idle, max-own)
		}
		// Ownership: the buffers returned by the first call belong to this
		// device now — a second collective must not recycle them.
		snapshot := make([][]byte, parts)
		for p, b := range first {
			snapshot[p] = append([]byte(nil), b...)
		}
		second := dev.RingAll2All(makePayloads(1))
		for p := 0; p < parts; p++ {
			if p == r {
				continue
			}
			if !bytes.Equal(first[p], snapshot[p]) {
				col.addf("payload-ownership", "rank %d's buffer from %d was overwritten by a later collective", r, p)
			}
			if !bytes.Equal(second[p], pattern(sizes[p][r], p, r, 1)) {
				col.addf("all2all-payload", "rank %d received wrong second-round payload from %d", r, p)
			}
		}
		return nil
	})
	moved := rt.BytesMoved()
	for s := range moved {
		for d := range moved[s] {
			if moved[s][d] != int64(2*sizes[s][d]) {
				col.addf("byte-accounting", "pair (%d,%d) recorded %d bytes, want %d", s, d, moved[s][d], 2*sizes[s][d])
			}
		}
	}
}

// checkAllReduce: deterministic rank-ordered sums identical on every
// device, charged per the ring-allreduce formula.
func checkAllReduce(f RuntimeFactory, parts int, col *vioCollector) {
	const rows, cols = 3, 4
	fill := func(rank int) []float32 {
		data := make([]float32, rows*cols)
		for i := range data {
			data[i] = float32(rank*len(data)+i+1) / 3
		}
		return data
	}
	// The contract sums in rank order, so the expected bits come from the
	// same left-to-right accumulation.
	want := fill(0)
	for r := 1; r < parts; r++ {
		for i, v := range fill(r) {
			want[i] += v
		}
	}
	model := timing.Default()
	bytesPer := rows * cols * 4
	runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, max := skew(dev)
		m := tensor.New(rows, cols)
		copy(m.Data, fill(r))
		dev.AllReduceSum([]*tensor.Matrix{m})
		for i, v := range m.Data {
			if v != want[i] {
				col.addf("allreduce-value", "rank %d element %d = %v, want rank-ordered sum %v", r, i, v, want[i])
				break
			}
		}
		frac := 2 * float64(parts-1) / float64(parts)
		wantComm := timing.Seconds(frac*float64(bytesPer)*model.Theta(r, (r+1)%parts)) +
			timing.Seconds(2*float64(parts-1)*model.Gamma())
		if comm := dev.Clock().Spent(timing.Comm); comm != wantComm {
			col.addf("allreduce-clock-charge", "rank %d charged %v to Comm, want ring-allreduce %v", r, comm, wantComm)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("allreduce-clock-charge", "rank %d charged %v to Idle, want %v", r, idle, max-own)
		}
		return nil
	})
}

// checkGather: root collects every payload, non-roots return nil, every
// device charges the slowest incoming transfer, senders are accounted.
func checkGather(f RuntimeFactory, parts int, col *vioCollector) {
	root := parts - 1
	model := timing.Default()
	size := func(r int) int { return 24 * (r + 1) }
	var wantComm timing.Seconds
	for src := 0; src < parts; src++ {
		if src == root {
			continue
		}
		if t := model.TransferTime(src, root, size(src)); t > wantComm {
			wantComm = t
		}
	}
	rt := runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, max := skew(dev)
		out := dev.GatherBytes(root, pattern(size(r), r, root, 0))
		if r == root {
			for src := 0; src < parts; src++ {
				if out == nil || !bytes.Equal(out[src], pattern(size(src), src, root, 0)) {
					col.addf("gather-payload", "root %d holds wrong payload from %d", root, src)
				}
			}
		} else if out != nil {
			col.addf("gather-payload", "non-root rank %d received a gather result", r)
		}
		if comm := dev.Clock().Spent(timing.Comm); comm != wantComm {
			col.addf("gather-clock-charge", "rank %d charged %v to Comm, want slowest incoming transfer %v", r, comm, wantComm)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("gather-clock-charge", "rank %d charged %v to Idle, want %v", r, idle, max-own)
		}
		return nil
	})
	moved := rt.BytesMoved()
	for s := range moved {
		for d := range moved[s] {
			want := int64(0)
			if s != root && d == root {
				want = int64(size(s))
			}
			if moved[s][d] != want {
				col.addf("byte-accounting", "gather pair (%d,%d) recorded %d bytes, want %d", s, d, moved[s][d], want)
			}
		}
	}
}

// checkScatter: each device receives exactly its slice from root, charged
// as the slowest outgoing transfer.
func checkScatter(f RuntimeFactory, parts int, col *vioCollector) {
	root := parts / 2
	model := timing.Default()
	size := func(d int) int { return 16 * (d + 2) }
	var wantComm timing.Seconds
	for dst := 0; dst < parts; dst++ {
		if dst == root {
			continue
		}
		if t := model.TransferTime(root, dst, size(dst)); t > wantComm {
			wantComm = t
		}
	}
	rt := runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, max := skew(dev)
		var payloads [][]byte
		if r == root {
			payloads = make([][]byte, parts)
			for dst := range payloads {
				payloads[dst] = pattern(size(dst), root, dst, 2)
			}
		}
		out := dev.ScatterBytes(root, payloads)
		if !bytes.Equal(out, pattern(size(r), root, r, 2)) {
			col.addf("scatter-payload", "rank %d received a wrong scatter slice from %d", r, root)
		}
		if comm := dev.Clock().Spent(timing.Comm); comm != wantComm {
			col.addf("scatter-clock-charge", "rank %d charged %v to Comm, want slowest outgoing transfer %v", r, comm, wantComm)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("scatter-clock-charge", "rank %d charged %v to Idle, want %v", r, idle, max-own)
		}
		return nil
	})
	// The reference deliberately leaves scatter out of the byte ledger
	// (its payloads are root-authored control state, not device traffic);
	// backends must match, or BytesMoved diverges across transports.
	moved := rt.BytesMoved()
	for s := range moved {
		for d := range moved[s] {
			if moved[s][d] != 0 {
				col.addf("byte-accounting", "scatter pair (%d,%d) recorded %d bytes, want 0 (scatter is not byte-accounted)", s, d, moved[s][d])
			}
		}
	}
}

// checkBroadcast: every device ends with root's payload and charges the
// sequential-broadcast total; root's sends are byte-accounted.
func checkBroadcast(f RuntimeFactory, parts int, col *vioCollector) {
	root := 1 % parts
	model := timing.Default()
	const size = 80
	var wantComm timing.Seconds
	for dst := 0; dst < parts; dst++ {
		if dst != root {
			wantComm += model.TransferTime(root, dst, size)
		}
	}
	rt := runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, max := skew(dev)
		var payload []byte
		if r == root {
			payload = pattern(size, root, root, 3)
		}
		out := dev.BroadcastBytes(root, payload)
		if !bytes.Equal(out, pattern(size, root, root, 3)) {
			col.addf("broadcast-payload", "rank %d received a wrong broadcast payload from %d", r, root)
		}
		if comm := dev.Clock().Spent(timing.Comm); comm != wantComm {
			col.addf("broadcast-clock-charge", "rank %d charged %v to Comm, want sequential broadcast %v", r, comm, wantComm)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("broadcast-clock-charge", "rank %d charged %v to Idle, want %v", r, idle, max-own)
		}
		return nil
	})
	moved := rt.BytesMoved()
	for s := range moved {
		for d := range moved[s] {
			want := int64(0)
			if s == root && d != root {
				want = size
			}
			if moved[s][d] != want {
				col.addf("byte-accounting", "broadcast pair (%d,%d) recorded %d bytes, want %d", s, d, moved[s][d], want)
			}
		}
	}
}

// checkSplitBroadcast: a split-phase broadcast whose Wait immediately
// follows Start must be indistinguishable from the blocking collective —
// same payload, same Comm/Idle charges bit for bit, nothing recorded as
// Overlap (no compute ran inside the window), same byte ledger.
func checkSplitBroadcast(f RuntimeFactory, parts int, col *vioCollector) {
	root := 1 % parts
	model := timing.Default()
	const size = 88
	var wantComm timing.Seconds
	for dst := 0; dst < parts; dst++ {
		if dst != root {
			wantComm += model.TransferTime(root, dst, size)
		}
	}
	rt := runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, max := skew(dev)
		var payload []byte
		if r == root {
			payload = pattern(size, root, root, 11)
		}
		out := dev.StartBroadcast(root, payload).Wait()
		if !bytes.Equal(out, pattern(size, root, root, 11)) {
			col.addf("split-payload", "rank %d received a wrong split-broadcast payload from %d", r, root)
		}
		if comm := dev.Clock().Spent(timing.Comm); comm != wantComm {
			col.addf("split-broadcast-charge", "rank %d charged %v to Comm, want the blocking sequential broadcast %v", r, comm, wantComm)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("split-broadcast-charge", "rank %d charged %v to Idle, want %v", r, idle, max-own)
		}
		if ov := dev.Clock().Spent(timing.Overlap); ov != 0 {
			col.addf("split-broadcast-charge", "rank %d recorded %v Overlap with no compute inside the window, want 0", r, ov)
		}
		return nil
	})
	moved := rt.BytesMoved()
	for s := range moved {
		for d := range moved[s] {
			want := int64(0)
			if s == root && d != root {
				want = size
			}
			if moved[s][d] != want {
				col.addf("byte-accounting", "split-broadcast pair (%d,%d) recorded %d bytes, want %d", s, d, moved[s][d], want)
			}
		}
	}
}

// checkSplitScatter: the scatter analogue of checkSplitBroadcast —
// immediate Wait equals the blocking charge (slowest outgoing transfer),
// no Overlap, and scatter stays out of the byte ledger.
func checkSplitScatter(f RuntimeFactory, parts int, col *vioCollector) {
	root := parts / 2
	model := timing.Default()
	size := func(d int) int { return 20 * (d + 2) }
	var wantComm timing.Seconds
	for dst := 0; dst < parts; dst++ {
		if dst == root {
			continue
		}
		if t := model.TransferTime(root, dst, size(dst)); t > wantComm {
			wantComm = t
		}
	}
	rt := runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, max := skew(dev)
		var payloads [][]byte
		if r == root {
			payloads = make([][]byte, parts)
			for dst := range payloads {
				payloads[dst] = pattern(size(dst), root, dst, 12)
			}
		}
		out := dev.StartScatter(root, payloads).Wait()
		if !bytes.Equal(out, pattern(size(r), root, r, 12)) {
			col.addf("split-payload", "rank %d received a wrong split-scatter slice from %d", r, root)
		}
		if comm := dev.Clock().Spent(timing.Comm); comm != wantComm {
			col.addf("split-scatter-charge", "rank %d charged %v to Comm, want the blocking slowest outgoing transfer %v", r, comm, wantComm)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != max-own {
			col.addf("split-scatter-charge", "rank %d charged %v to Idle, want %v", r, idle, max-own)
		}
		if ov := dev.Clock().Spent(timing.Overlap); ov != 0 {
			col.addf("split-scatter-charge", "rank %d recorded %v Overlap with no compute inside the window, want 0", r, ov)
		}
		return nil
	})
	moved := rt.BytesMoved()
	for s := range moved {
		for d := range moved[s] {
			if moved[s][d] != 0 {
				col.addf("byte-accounting", "split-scatter pair (%d,%d) recorded %d bytes, want 0 (scatter is not byte-accounted)", s, d, moved[s][d])
			}
		}
	}
}

// compareOverlapClock compares a device's clock to a reference clock that
// applied the canonical charging rule (timing.FinishDeferred) to the same
// schedule.
func compareOverlapClock(col *vioCollector, label string, dev Transport, ref *timing.Clock) {
	ck := dev.Clock()
	if ck.Now() != ref.Now() {
		col.addf("overlap-charge", "%s: rank %d clock %v, canonical schedule %v", label, dev.Rank(), ck.Now(), ref.Now())
	}
	for _, cat := range []timing.Category{timing.Comm, timing.Idle, timing.Overlap} {
		if ck.Spent(cat) != ref.Spent(cat) {
			col.addf("overlap-charge", "%s: rank %d charged %v to %v, canonical schedule %v", label, dev.Rank(), ck.Spent(cat), cat, ref.Spent(cat))
		}
	}
}

// checkOverlapCharge: compute issued between Start and Wait must hide the
// collective's latency — fully hidden windows charge nothing to Comm/Idle
// and record the window under Overlap; partially hidden windows charge
// only the uncovered tail. Expected values are produced by replaying each
// schedule through timing.FinishDeferred on a scratch clock, so equality
// is bitwise. Three schedules: full hide (with skewed ranks), partial
// hide, and two handles in flight waited FIFO.
func checkOverlapCharge(f RuntimeFactory, parts int, col *vioCollector) {
	model := timing.Default()
	const size = 96
	root := parts - 1
	var wire timing.Seconds
	for dst := 0; dst < parts; dst++ {
		if dst != root {
			wire += model.TransferTime(root, dst, size)
		}
	}
	align := timing.Seconds(parts) // slowest skewed rank's Start
	hide := align + 2*wire         // out-computes the window on every rank

	// Full hide: every rank computes past align+wire before waiting.
	runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		own, _ := skew(dev)
		var payload []byte
		if r == root {
			payload = pattern(size, root, root, 13)
		}
		p := dev.StartBroadcast(root, payload)
		dev.Clock().Advance(timing.Comp, hide)
		if out := p.Wait(); !bytes.Equal(out, pattern(size, root, root, 13)) {
			col.addf("split-payload", "rank %d received a wrong overlapped broadcast payload from %d", r, root)
		}
		ref := timing.NewClock()
		ref.Advance(timing.Comp, own)
		ref.Advance(timing.Comp, hide)
		timing.FinishDeferred(ref, own, align, wire)
		compareOverlapClock(col, "full-hide", dev, ref)
		return nil
	})

	// Partial hide: no skew, so every rank starts at 0 and computes half
	// the wire time — the tail must be charged to Comm, the covered half
	// recorded as Overlap.
	runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		var payload []byte
		if r == root {
			payload = pattern(size, root, root, 14)
		}
		p := dev.StartBroadcast(root, payload)
		dev.Clock().Advance(timing.Comp, wire/2)
		p.Wait()
		ref := timing.NewClock()
		ref.Advance(timing.Comp, wire/2)
		timing.FinishDeferred(ref, 0, 0, wire)
		compareOverlapClock(col, "partial-hide", dev, ref)
		return nil
	})

	// Two in flight, waited FIFO: both windows open before either closes.
	runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		var p0, p1 []byte
		if r == 0 {
			p0 = pattern(size, 0, 0, 15)
		}
		if r == 1%parts {
			p1 = pattern(size, 1%parts, 1%parts, 16)
		}
		h0 := dev.StartBroadcast(0, p0)
		h1 := dev.StartBroadcast(1%parts, p1)
		dev.Clock().Advance(timing.Comp, hide)
		got0, got1 := h0.Wait(), h1.Wait()
		if !bytes.Equal(got0, pattern(size, 0, 0, 15)) || !bytes.Equal(got1, pattern(size, 1%parts, 1%parts, 16)) {
			col.addf("split-payload", "rank %d received wrong payloads from two in-flight broadcasts", r)
		}
		var wire0, wire1 timing.Seconds
		for dst := 0; dst < parts; dst++ {
			if dst != 0 {
				wire0 += model.TransferTime(0, dst, size)
			}
			if dst != 1%parts {
				wire1 += model.TransferTime(1%parts, dst, size)
			}
		}
		ref := timing.NewClock()
		ref.Advance(timing.Comp, hide)
		timing.FinishDeferred(ref, 0, 0, wire0)
		timing.FinishDeferred(ref, 0, 0, wire1)
		compareOverlapClock(col, "two-in-flight", dev, ref)
		return nil
	})
}

// checkRawSideband: Raw* collectives move correct data but charge nothing
// — they model out-of-band metrics, not the system under study.
func checkRawSideband(f RuntimeFactory, parts int, col *vioCollector) {
	runBody(f, parts, col, func(dev Transport) error {
		r := dev.Rank()
		payloads := make([][]byte, parts)
		for q := range payloads {
			if q != r {
				payloads[q] = pattern(48, r, q, 4)
			}
		}
		recv := dev.RawAll2All(payloads)
		for p := 0; p < parts; p++ {
			if p != r && !bytes.Equal(recv[p], pattern(48, p, r, 4)) {
				col.addf("raw-payload", "rank %d received wrong RawAll2All payload from %d", r, p)
			}
		}
		all := dev.RawAllGather(pattern(8, r, r, 5))
		for p := 0; p < parts; p++ {
			if !bytes.Equal(all[p], pattern(8, p, p, 5)) {
				col.addf("raw-payload", "rank %d received wrong RawAllGather payload from %d", r, p)
			}
		}
		if now := dev.Clock().Now(); now != 0 {
			col.addf("raw-uncharged", "rank %d clock at %v after Raw* collectives, want 0 (metrics sideband)", r, now)
		}
		return nil
	})
}

// conformScript is a fixed mixed-collective workload; the candidate's
// clocks and byte matrix after running it must match the in-process
// reference exactly.
func conformScript(dev Transport) error {
	r, n := dev.Rank(), dev.Size()
	dev.Clock().Advance(timing.Comp, timing.Seconds(float64(r)*0.25))
	dev.Barrier()
	payloads := make([][]byte, n)
	for q := range payloads {
		if q != r {
			payloads[q] = pattern(16*(r+q+1), r, q, 6)
		}
	}
	dev.RingAll2All(payloads)
	m := tensor.New(4, 4)
	for i := range m.Data {
		m.Data[i] = float32(r + i)
	}
	dev.AllReduceSum([]*tensor.Matrix{m})
	dev.GatherBytes(0, pattern(64*(r+1), r, 0, 7))
	var sc [][]byte
	if r == n-1 {
		sc = make([][]byte, n)
		for dst := range sc {
			sc[dst] = pattern(32*(dst+1), r, dst, 8)
		}
	}
	dev.ScatterBytes(n-1, sc)
	var bc []byte
	if r == n/2 {
		bc = pattern(200, r, r, 9)
	}
	dev.BroadcastBytes(n/2, bc)
	// Split-phase section: a broadcast and a scatter with rank-dependent
	// compute inside each window, so the parity checks cover the
	// FinishDeferred charging (including Overlap) across backends.
	var sb []byte
	if r == 0 {
		sb = pattern(120, r, r, 17)
	}
	pb := dev.StartBroadcast(0, sb)
	dev.Clock().Advance(timing.Comp, timing.Seconds(float64(n-r)*0.125))
	pb.Wait()
	var sp [][]byte
	if r == n-1 {
		sp = make([][]byte, n)
		for dst := range sp {
			sp[dst] = pattern(24*(dst+2), r, dst, 18)
		}
	}
	ps := dev.StartScatter(n-1, sp)
	dev.Clock().Advance(timing.Comp, timing.Seconds(float64(r+1)*0.0625))
	ps.Wait()
	dev.RawAllGather(pattern(8, r, r, 10))
	return nil
}

// checkReferenceParity runs conformScript on the candidate and on the
// in-process reference and requires identical per-device simulated clocks
// (total and per category) and byte accounting.
func checkReferenceParity(f RuntimeFactory, parts int, col *vioCollector) {
	ref, err := LookupTransport(TransportInprocess)
	if err != nil {
		col.addf("reference-parity", "no in-process reference registered: %v", err)
		return
	}
	cand := runBody(f, parts, col, conformScript)
	want := runBody(ref, parts, col, conformScript)
	cats := []timing.Category{timing.Comm, timing.Comp, timing.Quant, timing.Idle, timing.Assign, timing.Overlap}
	for r := 0; r < parts; r++ {
		got, exp := cand.Clocks()[r], want.Clocks()[r]
		if got.Now() != exp.Now() {
			col.addf("reference-parity", "rank %d clock %v, reference %v (diff %g)", r, got.Now(), exp.Now(), math.Abs(float64(got.Now()-exp.Now())))
		}
		for _, cat := range cats {
			if got.Spent(cat) != exp.Spent(cat) {
				col.addf("reference-parity", "rank %d charged %v to %v, reference %v", r, got.Spent(cat), cat, exp.Spent(cat))
			}
		}
	}
	gotB, wantB := cand.BytesMoved(), want.BytesMoved()
	for s := range wantB {
		for d := range wantB[s] {
			if gotB[s][d] != wantB[s][d] {
				col.addf("reference-parity", "pair (%d,%d) moved %d bytes, reference %d", s, d, gotB[s][d], wantB[s][d])
			}
		}
	}
}
