package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// gnnLayer is one GNN layer on one device. GCN computes
// σ(LN(Â·X_full·W + b)); GraphSAGE computes σ(LN([X_self ‖ mean(X_nbr)]·W
// + b)). The last layer skips norm/activation/dropout and emits logits.
type gnnLayer struct {
	idx   int
	last  bool
	kind  ModelKind
	inDim int
	out   int

	lin  *nn.Linear
	ln   *nn.LayerNorm
	relu *nn.ReLU
	drop *nn.Dropout

	// saved activations for backward
	aggIn *tensor.Matrix // GCN: Â·X_full; SAGE: concat — the Linear input

	// steady-state scratch (shapes are fixed per device): the aggregation
	// output and the backward input-gradient block. Both are fully
	// (over)written on every use — SpMM overwrites, SpMMT zero-fills.
	agg    *tensor.Matrix
	dxFull *tensor.Matrix
}

func newGNNLayer(kind ModelKind, idx int, inDim, outDim int, last bool, dropout float32, rng *tensor.RNG) *gnnLayer {
	linIn := inDim
	if kind == GraphSAGE {
		linIn = 2 * inDim
	}
	l := &gnnLayer{
		idx: idx, last: last, kind: kind, inDim: inDim, out: outDim,
		lin: nn.NewLinear(layerName(idx), linIn, outDim, rng),
	}
	if !last {
		l.ln = nn.NewLayerNorm(layerName(idx), outDim)
		l.relu = &nn.ReLU{}
		l.drop = &nn.Dropout{P: dropout}
	}
	return l
}

func layerName(idx int) string {
	return fmt.Sprintf("layer%d", idx)
}

func (l *gnnLayer) params() []*nn.Param {
	ps := l.lin.Params()
	if l.ln != nil {
		ps = append(ps, l.ln.Params()...)
	}
	return ps
}

// forward consumes xFull ((numLocal+numHalo)×inDim with halo rows already
// filled) and returns the layer output over local rows.
func (l *gnnLayer) forward(lg *partition.LocalGraph, xFull *tensor.Matrix, rng *tensor.RNG, train bool) *tensor.Matrix {
	if l.agg == nil {
		l.agg = tensor.New(lg.NumLocal, l.inDim)
	}
	agg := l.agg
	lg.Adj.SpMM(agg, xFull)
	var linIn *tensor.Matrix
	if l.kind == GraphSAGE {
		self := xFull.RowSlice(0, lg.NumLocal)
		linIn = tensor.ConcatCols(self, agg)
	} else {
		linIn = agg
	}
	l.aggIn = linIn
	z := l.lin.Forward(linIn)
	if l.last {
		return z
	}
	h := l.ln.Forward(z)
	h = l.relu.Forward(h)
	return l.drop.Forward(h, rng, train)
}

// backward consumes the gradient of this layer's output over local rows and
// returns the gradient w.r.t. xFull (halo rows included; they are the
// "embedding gradients"/errors to ship back to their owners). When
// needInput is false (layer 0) the expensive input-gradient computation is
// skipped and nil is returned; weight gradients are always accumulated.
func (l *gnnLayer) backward(lg *partition.LocalGraph, dout *tensor.Matrix, needInput bool) *tensor.Matrix {
	dz := dout
	if !l.last {
		dz = l.drop.Backward(dz)
		dz = l.relu.Backward(dz)
		dz = l.ln.Backward(dz)
	}
	dLinIn := l.lin.Backward(dz)
	if !needInput {
		return nil
	}
	if l.dxFull == nil {
		l.dxFull = tensor.New(lg.NumLocal+lg.NumHalo, l.inDim)
	}
	dxFull := l.dxFull
	if l.kind == GraphSAGE {
		dSelf, dAgg := dLinIn.SplitCols(l.inDim)
		lg.Adj.SpMMT(dxFull, dAgg)
		for i := 0; i < lg.NumLocal; i++ {
			row := dxFull.Row(i)
			src := dSelf.Row(i)
			for j, v := range src {
				row[j] += v
			}
		}
	} else {
		lg.Adj.SpMMT(dxFull, dLinIn)
	}
	return dxFull
}

// layerCosts caches the simulated compute cost of one layer on one device,
// split into the central and marginal shares used by AdaQP's overlap
// schedule. The split is computed from per-row work: a row's aggregation
// cost is proportional to its edge count and its dense cost to the layer
// dims; central rows touch only local columns, so their computation can
// proceed while halo messages are in flight (§2.2).
type layerCosts struct {
	fwdTotal, fwdCentral, fwdMarginal timing.Seconds
	bwdTotal, bwdCentral, bwdMarginal timing.Seconds
}

func computeLayerCosts(lg *partition.LocalGraph, l *gnnLayer, model *timing.CostModel) layerCosts {
	nnzCentral, nnzMarginal := 0, 0
	for i := 0; i < lg.NumLocal; i++ {
		d := lg.Adj.Degree(i)
		if lg.Marginal[i] {
			nnzMarginal += d
		} else {
			nnzCentral += d
		}
	}
	nC, nM := len(lg.CentralRows), len(lg.MarginalRows)
	linIn := l.inDim
	if l.kind == GraphSAGE {
		linIn = 2 * l.inDim
	}
	rowFwd := func(nnz, rows int) timing.Seconds {
		t := model.SpMMTime(nnz, l.inDim)
		t += model.DenseTime(rows, linIn, l.out)
		if !l.last {
			t += model.ElementwiseTime(3 * rows * l.out)
		}
		return t
	}
	// Backward: two GEMMs (dW and d-input), the transposed aggregation,
	// and the activation/norm backward elementwise work.
	rowBwd := func(nnz, rows int) timing.Seconds {
		t := model.DenseTime(linIn, rows, l.out) // dW = Xᵀ·dZ
		t += model.DenseTime(rows, l.out, linIn) // dX = dZ·Wᵀ
		t += model.SpMMTime(nnz, l.inDim)
		if !l.last {
			t += model.ElementwiseTime(4 * rows * l.out)
		}
		return t
	}
	c := layerCosts{
		fwdCentral:  rowFwd(nnzCentral, nC),
		fwdMarginal: rowFwd(nnzMarginal, nM),
		bwdCentral:  rowBwd(nnzCentral, nC),
		bwdMarginal: rowBwd(nnzMarginal, nM),
	}
	c.fwdTotal = c.fwdCentral + c.fwdMarginal
	c.bwdTotal = c.bwdCentral + c.bwdMarginal
	return c
}

// deviceModel is the full L-layer model replica on one device. All devices
// construct it from the same seed, so initial weights are identical
// replicas, as in data-parallel training.
type deviceModel struct {
	kind   ModelKind
	layers []*gnnLayer
	costs  []layerCosts
	ps     []*nn.Param // cached params() result (the set is static)
}

func newDeviceModel(cfg *Config, lg *partition.LocalGraph, inDim, numClasses int, model *timing.CostModel) *deviceModel {
	rng := tensor.NewRNG(cfg.Seed) // identical on every device
	dm := &deviceModel{kind: cfg.Model}
	dims := make([]int, cfg.Layers+1)
	dims[0] = inDim
	for i := 1; i < cfg.Layers; i++ {
		dims[i] = cfg.Hidden
	}
	dims[cfg.Layers] = numClasses
	for i := 0; i < cfg.Layers; i++ {
		last := i == cfg.Layers-1
		l := newGNNLayer(cfg.Model, i, dims[i], dims[i+1], last, cfg.Dropout, rng)
		dm.layers = append(dm.layers, l)
		dm.costs = append(dm.costs, computeLayerCosts(lg, l, model))
	}
	return dm
}

func (dm *deviceModel) params() []*nn.Param {
	if dm.ps == nil {
		for _, l := range dm.layers {
			dm.ps = append(dm.ps, l.params()...)
		}
	}
	return dm.ps
}

func (dm *deviceModel) zeroGrads() {
	for _, p := range dm.params() {
		p.ZeroGrad()
	}
}
