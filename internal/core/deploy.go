package core

import (
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/tensor"
)

// Deployment is a dataset partitioned and wired for distributed training.
type Deployment struct {
	Dataset    *synthetic.Dataset
	Model      ModelKind
	Graph      *graph.CSR // model-prepared global graph (self-loops for GCN)
	Assignment *partition.Assignment
	Locals     []*partition.LocalGraph
	Stats      partition.Stats

	// shared caches run-shared state that depends only on the deployment's
	// topology (the SANCUS broadcast layout), so repeated runs over the
	// same deployment — experiments, the scheduler, benchmarks — build it
	// once instead of once per run.
	shared RunShared
}

// runShared returns the deployment-lifetime RunShared instance.
func (d *Deployment) runShared() *RunShared { return &d.shared }

// Deploy prepares the global graph for the model kind (GCN: self-loops +
// symmetric normalization; GraphSAGE: mean normalization), partitions it
// and builds the per-device local graphs with wire index sets.
func Deploy(ds *synthetic.Dataset, parts int, model ModelKind, strategy partition.Strategy) *Deployment {
	g := ds.Graph
	var norm graph.Norm
	if model == GCN {
		g = g.WithSelfLoops()
		norm = graph.NormSym
	} else {
		norm = graph.NormMean
	}
	a := partition.Partition(g, parts, strategy)
	lgs := partition.Build(g, a, norm)
	partition.WireSendSets(lgs)
	return &Deployment{
		Dataset:    ds,
		Model:      model,
		Graph:      g,
		Assignment: a,
		Locals:     lgs,
		Stats:      partition.ComputeStats(g, a, lgs),
	}
}

// localData is the per-device shard of features, labels and masks.
type localData struct {
	x          *tensor.Matrix
	labels     []int          // single-label
	y          *tensor.Matrix // multi-label targets
	train, val []bool
	test       []bool
}

func shardData(ds *synthetic.Dataset, lg *partition.LocalGraph) *localData {
	idx := make([]int, len(lg.GlobalID))
	for i, g := range lg.GlobalID {
		idx[i] = int(g)
	}
	ld := &localData{
		x:     ds.Features.GatherRows(idx),
		train: make([]bool, len(idx)),
		val:   make([]bool, len(idx)),
		test:  make([]bool, len(idx)),
	}
	for i, g := range idx {
		ld.train[i] = ds.TrainMask[g]
		ld.val[i] = ds.ValMask[g]
		ld.test[i] = ds.TestMask[g]
	}
	if ds.Task == synthetic.SingleLabel {
		ld.labels = make([]int, len(idx))
		for i, g := range idx {
			ld.labels[i] = int(ds.Labels.At(g, 0))
		}
	} else {
		ld.y = ds.Labels.GatherRows(idx)
	}
	return ld
}
