package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/tensor"
)

// This file is the executable form of the MessageCodec contract (see
// codec.go): every registered codec — and any out-of-tree one — must pass
// ConformCodec before training results moved through it can be trusted,
// mirroring what ConformTransport does for runtime backends. The checks:
//
//   - codec-roundtrip: an epoch-0 forward exchange must deliver every
//     halo row within the codec's declared per-element error bound
//     (LossyCodec), exactly for codecs that declare no loss.
//   - codec-byte-accounting: the transport's byte ledger after that
//     exchange must match the wire sizes the codec reports
//     (WireAccountant) — the numbers All2AllRoundTime and the paper's
//     wire-byte measurements are built from.
//   - codec-state-discipline: a codec that does not declare cross-epoch
//     state (StatefulCodec) must survive having its instance rebuilt at
//     every epoch boundary with a bit-identical loss curve, on both
//     transport backends.
//   - codec-reproducibility / codec-backend-parity: fixed-seed runs must
//     be bit-identical run-to-run on each backend, and across the
//     in-process and sharded-async backends at staleness 0.

// codecConformConfig is the small fixed training scenario the stateful
// checks run: 4 epochs so re-assignment periods, delta keyframes and
// SANCUS staleness bounds all trigger at least once.
func codecConformConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.Hidden = 16
	cfg.EvalEvery = 0
	cfg.ReassignPeriod = 2
	cfg.SancusMaxStale = 2
	cfg.DeltaKeyframeEvery = 2
	cfg.Seed = 7
	return cfg
}

// ConformCodec verifies a message codec (built by f, exactly as the
// trainer would build it) against the codec contract with parts devices
// on the "tiny" dataset. It returns nil when the codec conforms; each
// Violation pinpoints a contract clause it broke. parts >= 2 is required
// to exercise cross-device messages.
func ConformCodec(f CodecFactory, parts int) []Violation {
	if f == nil {
		return []Violation{{Check: "setup", Detail: "nil codec factory"}}
	}
	if parts < 2 {
		return []Violation{{Check: "setup", Detail: fmt.Sprintf("codec conformance needs parts >= 2, got %d", parts)}}
	}
	ds, err := synthetic.Load("tiny", synthetic.Scale(1))
	if err != nil {
		return []Violation{{Check: "setup", Detail: fmt.Sprintf("loading conformance dataset: %v", err)}}
	}
	dep := Deploy(ds, parts, GCN, partition.Block)
	cfg := codecConformConfig()
	if err := cfg.validate(); err != nil {
		return []Violation{{Check: "setup", Detail: err.Error()}}
	}
	col := &vioCollector{}
	checkCodecExchange(f, dep, cfg, col)
	checkCodecStateDiscipline(f, dep, cfg, col)
	checkCodecReproducibility(f, dep, cfg, col)
	return col.v
}

// probeValue is the deterministic feature pattern of the exchange check:
// any device can reconstruct the row a peer sent from (rank, row, col).
func probeValue(rank, row, col int) float32 {
	return float32(rank+1)*0.5 + float32(row)*0.0625 - float32(col)*0.03125
}

// checkCodecExchange runs one epoch-0, layer-0 forward exchange on the
// in-process reference backend and checks decode-of-encode error bounds
// and the byte ledger against the codec's declarations.
func checkCodecExchange(f CodecFactory, dep *Deployment, cfg Config, col *vioCollector) {
	codecExchangeCheck(f, dep, cfg, 8, probeValue, col)
}

// codecExchangeCheck is checkCodecExchange with the message dimension and
// feature pattern pluggable (the round-trip property tests drive it over
// boundary bit-widths and degenerate tensors).
func codecExchangeCheck(f CodecFactory, dep *Deployment, cfg Config, dim int, fill func(rank, row, col int) float32, col *vioCollector) {
	parts := dep.Assignment.Parts
	locals := dep.Locals
	runtimeFor, err := LookupTransport(TransportInprocess)
	if err != nil {
		col.addf("setup", "no in-process reference transport: %v", err)
		return
	}
	// Build every device's codec before the runtime starts: factories take
	// no transport, and a factory failing on only some ranks must become a
	// violation — not strand the surviving devices inside a collective.
	// (A Forward that fails asymmetrically *before entering its own
	// collective* cannot be survived by any harness: the codec has
	// desynchronized its own collective schedule. Symmetric failures are
	// reported cleanly below.)
	shared := &RunShared{}
	codecs := make([]MessageCodec, parts)
	declared := make([][]int, parts)
	for r := 0; r < parts; r++ {
		codec, err := f(&CodecEnv{Cfg: &cfg, Locals: locals, Rank: r, InDim: dim, Shared: shared})
		if err != nil {
			col.addf("codec-construction", "rank %d: building codec: %v", r, err)
			return
		}
		codecs[r] = codec
		if wa, ok := codec.(WireAccountant); ok {
			declared[r] = wa.ForwardWireSizes(locals[r], dim)
		} else {
			col.addf("codec-byte-accounting", "codec %q does not declare its wire sizes (implement WireAccountant)", codec.Name())
		}
	}
	rt := runtimeFor(TransportSpec{Parts: parts})
	var forwardFailed atomic.Bool
	err = rt.Run(cfg.Seed, func(dev Transport) error {
		r := dev.Rank()
		lg := locals[r]
		codec := codecs[r]
		h := tensor.New(lg.NumLocal, dim)
		for i := 0; i < lg.NumLocal; i++ {
			row := h.Row(i)
			for j := range row {
				row[j] = fill(r, i, j)
			}
		}
		xFull := tensor.New(lg.NumLocal+lg.NumHalo, dim)
		for i := 0; i < lg.NumLocal; i++ {
			copy(xFull.Row(i), h.Row(i))
		}
		// The arena is pre-poisoned: a codec that hands out pooled scratch
		// without overwriting it fails the round-trip bound loudly.
		env := &ExchangeEnv{Dev: dev, Graph: lg, Cfg: &cfg, Scratch: dirtyArena(dim), costs: make([]layerCosts, cfg.Layers)}
		if err := codec.Forward(env, 0, 0, h, xFull); err != nil {
			forwardFailed.Store(true)
			col.addf("codec-roundtrip", "rank %d epoch-0 forward failed: %v", r, err)
			return nil
		}
		lossy, isLossy := codec.(LossyCodec)
		for p := 0; p < parts; p++ {
			if p == r {
				continue
			}
			for j, slot := range lg.RecvFrom[p] {
				srcRow := int(locals[p].SendTo[r][j])
				want := make([]float32, dim)
				for c := range want {
					want[c] = fill(p, srcRow, c)
				}
				mn, mx := tensor.MinMax(want)
				var lim float64
				if isLossy {
					lim = lossy.ForwardErrorBound(mn, mx, dim)
				}
				lim += 1e-6
				got := xFull.Row(lg.NumLocal + int(slot))
				for c := range want {
					if diff := math.Abs(float64(got[c] - want[c])); diff > lim {
						col.addf("codec-roundtrip",
							"rank %d decoded halo slot %d col %d as %v, want %v within ±%g (sent by rank %d row %d)",
							r, slot, c, got[c], want[c], lim, p, srcRow)
						break
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		col.addf("codec-runtime-error", "%v", err)
		return
	}
	if forwardFailed.Load() {
		// The ledger reflects an aborted exchange; comparing it against the
		// declared sizes would bury the real failure in spurious
		// byte-accounting violations.
		return
	}
	moved := rt.BytesMoved()
	for s := 0; s < parts; s++ {
		if declared[s] == nil {
			continue // missing WireAccountant already reported
		}
		if len(declared[s]) != parts {
			col.addf("codec-byte-accounting", "rank %d declared %d destination sizes, want %d", s, len(declared[s]), parts)
			continue
		}
		for d := 0; d < parts; d++ {
			if moved[s][d] != int64(declared[s][d]) {
				col.addf("codec-byte-accounting", "pair (%d,%d) moved %d bytes, codec declared %d", s, d, moved[s][d], declared[s][d])
			}
		}
	}
}

// rebuildEachEpoch wraps f so the built codec is replaced by a fresh
// instance after every EpochEnd — the probe behind the state-discipline
// check.
func rebuildEachEpoch(f CodecFactory) CodecFactory {
	return func(env *CodecEnv) (MessageCodec, error) {
		inner, err := f(env)
		if err != nil {
			return nil, err
		}
		return &epochSwappedCodec{f: f, env: env, inner: inner}, nil
	}
}

type epochSwappedCodec struct {
	f     CodecFactory
	env   *CodecEnv
	inner MessageCodec
}

func (c *epochSwappedCodec) Name() string { return c.inner.Name() }

func (c *epochSwappedCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	return c.inner.Forward(env, epoch, l, h, xFull)
}

func (c *epochSwappedCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	return c.inner.Backward(env, epoch, l, dxFull, dxLocal)
}

func (c *epochSwappedCodec) EpochEnd(env *ExchangeEnv, epoch int) error {
	if err := c.inner.EpochEnd(env, epoch); err != nil {
		return err
	}
	fresh, err := c.f(c.env)
	if err != nil {
		return err
	}
	c.inner = fresh
	return nil
}

// checkCodecStateDiscipline enforces statelessness-or-declared-state: a
// codec that does not declare cross-epoch state must be swap-invariant —
// rebuilding its instances at every epoch boundary must not change the
// loss curve — on both transport backends.
func checkCodecStateDiscipline(f CodecFactory, dep *Deployment, cfg Config, col *vioCollector) {
	probe, err := f(&CodecEnv{
		Cfg: &cfg, Locals: dep.Locals, Rank: 0,
		InDim: dep.Dataset.Features.Cols, Shared: &RunShared{},
	})
	if err != nil {
		col.addf("codec-construction", "building an instance failed: %v", err)
		return
	}
	if sc, ok := probe.(StatefulCodec); ok && sc.Stateful() {
		return // declared state: instance swaps are allowed to diverge
	}
	for _, tr := range []string{TransportInprocess, TransportShardedAsync} {
		refCfg := cfg
		refCfg.Transport = tr
		refCfg.codecFactory = f
		ref, err := TrainDeployed(dep, refCfg, nil)
		if err != nil {
			col.addf("codec-state-discipline", "%s: training failed: %v", tr, err)
			continue
		}
		swapCfg := refCfg
		swapCfg.codecFactory = rebuildEachEpoch(f)
		swapped, err := TrainDeployed(dep, swapCfg, nil)
		if err != nil {
			col.addf("codec-state-discipline", "%s: training with per-epoch instance rebuilds failed: %v", tr, err)
			continue
		}
		if desc := runDivergence(ref, swapped, false); desc != "" {
			col.addf("codec-state-discipline",
				"%s: undeclared cross-epoch state — rebuilding instances at epoch boundaries changed the run (%s); declare it via StatefulCodec", tr, desc)
		}
	}
}

// checkCodecReproducibility requires fixed-seed bit-reproducibility on
// each backend and bit-identical cross-backend parity at staleness 0.
func checkCodecReproducibility(f CodecFactory, dep *Deployment, cfg Config, col *vioCollector) {
	train := func(tr string) (*metrics.RunResult, error) {
		c := cfg
		c.Transport = tr
		c.codecFactory = f
		return TrainDeployed(dep, c, nil)
	}
	var ref *metrics.RunResult
	for _, tr := range []string{TransportInprocess, TransportShardedAsync} {
		a, err := train(tr)
		if err != nil {
			col.addf("codec-reproducibility", "%s: training failed: %v", tr, err)
			return
		}
		b, err := train(tr)
		if err != nil {
			col.addf("codec-reproducibility", "%s: training failed: %v", tr, err)
			return
		}
		if desc := runDivergence(a, b, true); desc != "" {
			col.addf("codec-reproducibility", "%s: two identical fixed-seed runs diverged (%s)", tr, desc)
		}
		if tr == TransportInprocess {
			ref = a
		} else if ref != nil {
			if desc := runDivergence(ref, a, true); desc != "" {
				col.addf("codec-backend-parity", "in-process vs %s at staleness 0 diverged (%s)", tr, desc)
			}
		}
	}
}

// runDivergence describes the first bitwise difference between two runs,
// or returns "" when they match. withTime additionally compares the
// simulated clocks (guaranteed across backends only at staleness 0).
func runDivergence(a, b *metrics.RunResult, withTime bool) string {
	if len(a.Epochs) != len(b.Epochs) {
		return fmt.Sprintf("%d epoch records vs %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if a.Epochs[i].Loss != b.Epochs[i].Loss {
			return fmt.Sprintf("epoch %d loss %v vs %v", i, a.Epochs[i].Loss, b.Epochs[i].Loss)
		}
		va, vb := a.Epochs[i].ValAcc, b.Epochs[i].ValAcc
		if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
			return fmt.Sprintf("epoch %d val %v vs %v", i, va, vb)
		}
		if withTime && a.Epochs[i].SimTime != b.Epochs[i].SimTime {
			return fmt.Sprintf("epoch %d sim time %v vs %v", i, a.Epochs[i].SimTime, b.Epochs[i].SimTime)
		}
	}
	if a.FinalTest != b.FinalTest {
		return fmt.Sprintf("final test %v vs %v", a.FinalTest, b.FinalTest)
	}
	for s := range a.BytesMoved {
		for d := range a.BytesMoved[s] {
			if a.BytesMoved[s][d] != b.BytesMoved[s][d] {
				return fmt.Sprintf("pair (%d,%d) moved %d bytes vs %d", s, d, a.BytesMoved[s][d], b.BytesMoved[s][d])
			}
		}
	}
	if withTime && a.WallClock != b.WallClock {
		return fmt.Sprintf("wall clock %v vs %v", a.WallClock, b.WallClock)
	}
	return ""
}
