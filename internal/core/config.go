// Package core implements the paper's training systems: the Vanilla
// synchronous baseline, AdaQP (adaptive message quantization +
// central/marginal computation–communication parallelization), the
// uniform-bit-width ablations, and the staleness-based comparison systems
// PipeGCN and SANCUS — all running on the in-process cluster runtime with
// real numerics and simulated device/network timing.
package core

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/quant"
)

// ModelKind selects the GNN architecture.
type ModelKind int

const (
	// GCN uses self-loops + symmetric normalization (Kipf & Welling).
	GCN ModelKind = iota
	// GraphSAGE uses mean aggregation concatenated with the self
	// embedding (full-batch, Hamilton et al.).
	GraphSAGE
)

func (m ModelKind) String() string {
	if m == GraphSAGE {
		return "GraphSAGE"
	}
	return "GCN"
}

// ParseModelKind is the inverse of ModelKind.String, also accepting the
// CLI short forms ("gcn", "sage"), case-insensitively.
func ParseModelKind(s string) (ModelKind, error) {
	switch strings.ToLower(s) {
	case "gcn":
		return GCN, nil
	case "graphsage", "sage":
		return GraphSAGE, nil
	}
	return 0, fmt.Errorf("core: unknown model kind %q (want gcn or sage)", s)
}

// Method selects the training system.
type Method int

const (
	// Vanilla is synchronous full-precision full-graph training (§2.2).
	Vanilla Method = iota
	// AdaQP is the paper's system: adaptive quantization + overlap.
	AdaQP
	// AdaQPUniform quantizes every message at Config.UniformBits with
	// AdaQP's overlap (used for Table 2's 2-bit measurement).
	AdaQPUniform
	// AdaQPRandom samples each message's width uniformly from {2,4,8}
	// (Table 6's "Uniform" sampling scheme ablation).
	AdaQPRandom
	// PipeGCN overlaps communication with computation across iterations
	// using one-epoch-stale boundary messages (Wan et al., 2022b).
	PipeGCN
	// SANCUS avoids communication via sequential broadcasts skipped under
	// a staleness bound, with historical embeddings in between (Peng et
	// al., 2022).
	SANCUS
)

func (m Method) String() string {
	switch m {
	case Vanilla:
		return "Vanilla"
	case AdaQP:
		return "AdaQP"
	case AdaQPUniform:
		return "AdaQP-uniform"
	case AdaQPRandom:
		return "AdaQP-random"
	case PipeGCN:
		return "PipeGCN"
	case SANCUS:
		return "SANCUS"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists every training system in declaration order.
func Methods() []Method {
	return []Method{Vanilla, AdaQP, AdaQPUniform, AdaQPRandom, PipeGCN, SANCUS}
}

// ParseMethod is the inverse of Method.String, also accepting the CLI
// short forms ("uniform", "random"), case-insensitively.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(s) {
	case "vanilla":
		return Vanilla, nil
	case "adaqp":
		return AdaQP, nil
	case "adaqp-uniform", "uniform":
		return AdaQPUniform, nil
	case "adaqp-random", "random":
		return AdaQPRandom, nil
	case "pipegcn":
		return PipeGCN, nil
	case "sancus":
		return SANCUS, nil
	}
	return 0, fmt.Errorf("core: unknown method %q (want one of %v)", s, Methods())
}

// Config holds everything one training run needs. Defaults follow the
// paper's unified hyper-parameters (Appendix B): 3 layers, hidden 256,
// LayerNorm, Adam lr 0.01, dropout per dataset, λ = 0.5.
type Config struct {
	Model  ModelKind
	Method Method

	Layers  int // number of GNN layers
	Hidden  int // hidden dimension
	LR      float32
	Dropout float32
	Epochs  int

	// EvalEvery controls how often validation accuracy is recorded
	// (test accuracy is always computed at the end). 0 disables.
	EvalEvery int

	// AdaQP knobs (§5.5): message group size, λ of Eqn. 12, and the
	// bit-width re-assignment period in epochs.
	GroupSize      int
	Lambda         float64
	ReassignPeriod int

	// UniformBits is the width used by AdaQPUniform (and by the ef-quant
	// codec, whose error-feedback residual requires a packable width).
	UniformBits quant.BitWidth

	// TopKDensity is the fraction of each row's entries the topk codec
	// keeps, in (0, 1]. 0 selects the default 0.1.
	TopKDensity float64

	// DeltaKeyframeEvery is how often (in epochs) the delta codec ships a
	// full-precision keyframe instead of a quantized residual against the
	// previous epoch's payload. 0 selects the default 10.
	DeltaKeyframeEvery int

	// SANCUS staleness: a device re-broadcasts its boundary embeddings
	// when their relative drift exceeds SancusDrift, or at the latest
	// every SancusMaxStale epochs.
	SancusDrift    float64
	SancusMaxStale int

	// Seed drives weight init, dropout, stochastic rounding and the
	// random-width ablation.
	Seed uint64

	// Codec overrides the message codec the run uses. Empty selects the
	// Method's default (see CodecForMethod); any name registered with
	// RegisterCodec is accepted.
	Codec string

	// codecFactory, when non-nil, builds the run's codec instances
	// directly, bypassing the registry lookup. It is the codec-conformance
	// harness's seam: ConformCodec trains candidate codecs — including
	// deliberately broken ones — without registering them.
	codecFactory CodecFactory

	// Transport selects the runtime backend registered with
	// RegisterTransport. Empty selects the in-process cluster.
	Transport string

	// TransportWorkers bounds how many devices execute concurrently on
	// transports that multiplex devices onto a worker pool (sharded-async).
	// 0 means one worker per available CPU.
	TransportWorkers int

	// TransportStaleness is how many collective operations a device may
	// run ahead of the slowest straggler on async transports. 0 keeps
	// lockstep semantics, bit-identical to the in-process cluster.
	TransportStaleness int

	// TransportOverlap switches the trainer's exchange hot loop to the
	// split-phase collective schedule: all of an exchange's sends are
	// started before any is consumed, so central-graph compute runs inside
	// the wire window and hidden latency is recorded under
	// timing.Overlap instead of charged to Comm/Idle. Payload routing is
	// unchanged, so fixed-seed loss curves stay bit-identical to the
	// blocking schedule; only the simulated clocks improve. Off by
	// default.
	TransportOverlap bool

	// TransportSocketDir roots the per-run Unix-domain socket directories
	// of socket-backed transports (proc-sharded). Empty uses the system
	// temp directory; in-memory backends ignore it.
	TransportSocketDir string

	// transportFactory, when non-nil, builds the run's runtime directly,
	// bypassing the registry lookup. It is the transport-conformance
	// harness's seam, mirroring codecFactory: chaos-mode conformance
	// trains candidate backends — including deliberately broken stubs —
	// without registering them.
	transportFactory RuntimeFactory

	// isolateArena makes the run use throwaway scratch arenas instead of
	// the process-wide recycled pool. Conformance training runs over
	// candidate transports set it: a backend that violates buffer
	// ownership would otherwise release aliased buffers into the shared
	// pool and corrupt every later run in the process.
	isolateArena bool

	// Faults declares the run's injected faults (stragglers, transient
	// collective failures, crash/restart). The zero value injects
	// nothing. Faults charge simulated time only, so the loss curve
	// stays bit-identical to the fault-free run with the same Seed.
	Faults chaos.Spec

	// EpochHook, when non-nil, receives each epoch's record as training
	// progresses (called once per epoch, from the rank-0 device goroutine,
	// after the codec's end-of-epoch protocol). It must not start another
	// run on the same Deployment.
	EpochHook func(metrics.EpochStat)
}

// DefaultConfig returns the paper's unified training configuration.
func DefaultConfig() Config {
	return Config{
		Model:              GCN,
		Method:             Vanilla,
		Layers:             3,
		Hidden:             256,
		LR:                 0.01,
		Dropout:            0.5,
		Epochs:             200,
		EvalEvery:          5,
		GroupSize:          100,
		Lambda:             0.5,
		ReassignPeriod:     50,
		UniformBits:        quant.B2,
		TopKDensity:        0.1,
		DeltaKeyframeEvery: 10,
		SancusDrift:        0.05,
		SancusMaxStale:     8,
		Seed:               1,
	}
}

// Validate fills defaults for zero-valued fields and sanity-checks the
// configuration, including that the selected codec and transport are
// registered.
func (c *Config) Validate() error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.Codec != "" {
		if _, err := LookupCodec(c.Codec); err != nil {
			return err
		}
	}
	if c.Transport != "" {
		if _, err := LookupTransport(c.Transport); err != nil {
			return err
		}
	}
	return nil
}

// validate fills defaults for zero-valued fields and sanity-checks.
func (c *Config) validate() error {
	if c.Layers <= 0 {
		c.Layers = 3
	}
	if c.Hidden <= 0 {
		c.Hidden = 256
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 100
	}
	if c.Lambda < 0 || c.Lambda > 1 {
		return fmt.Errorf("core: lambda %v outside [0,1]", c.Lambda)
	}
	if c.ReassignPeriod <= 0 {
		c.ReassignPeriod = 50
	}
	if c.UniformBits == 0 {
		c.UniformBits = quant.B2
	}
	if !c.UniformBits.Valid() {
		return fmt.Errorf("core: invalid uniform bit-width %d", c.UniformBits)
	}
	if c.TopKDensity == 0 {
		c.TopKDensity = 0.1
	}
	if !(c.TopKDensity > 0 && c.TopKDensity <= 1) { // also rejects NaN
		return fmt.Errorf("core: top-k density %v outside (0,1]", c.TopKDensity)
	}
	if c.DeltaKeyframeEvery == 0 {
		c.DeltaKeyframeEvery = 10
	}
	if c.DeltaKeyframeEvery < 0 {
		return fmt.Errorf("core: delta keyframe period must be >= 1, got %d", c.DeltaKeyframeEvery)
	}
	if c.SancusDrift <= 0 {
		c.SancusDrift = 0.05
	}
	if c.SancusMaxStale <= 0 {
		c.SancusMaxStale = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TransportWorkers < 0 {
		return fmt.Errorf("core: transport workers must be >= 0, got %d", c.TransportWorkers)
	}
	if c.TransportStaleness < 0 {
		return fmt.Errorf("core: transport staleness must be >= 0, got %d", c.TransportStaleness)
	}
	if c.Faults.Enabled() {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}
