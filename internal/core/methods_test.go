package core

import (
	"math"
	"testing"

	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/synthetic"
	"repro/internal/timing"
)

// byteBound model: negligible latency so byte volumes drive all timing
// comparisons in these tests.
func byteBound() *timing.CostModel {
	m := timing.Default()
	m.Latency = 1e-9
	return m
}

func TestSancusMovesFewerBytesThanVanilla(t *testing.T) {
	// SANCUS skips broadcasts under its staleness bound and never sends
	// backward messages, so its total traffic must be well below Vanilla's.
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 3, GCN, partition.Block)
	van, err := TrainDeployed(dep, tinyConfig(Vanilla), byteBound())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(SANCUS)
	cfg.SancusMaxStale = 6
	san, err := TrainDeployed(dep, cfg, byteBound())
	if err != nil {
		t.Fatal(err)
	}
	vb, sb := totalBytes(van.BytesMoved), totalBytes(san.BytesMoved)
	// SANCUS eliminates backward traffic and skips stale broadcasts, but
	// each broadcast redundantly ships the full boundary union to every
	// peer (all2all ships only what each peer needs), so the net saving is
	// partial — the same trade-off that makes SANCUS's *time* worse than
	// ring all2all in the paper despite being "communication-avoiding".
	if sb >= vb {
		t.Fatalf("SANCUS should move fewer bytes than Vanilla: %d vs %d", sb, vb)
	}
}

func TestSancusBroadcastsOnEveryRefreshBound(t *testing.T) {
	// With MaxStale=1 SANCUS degenerates to broadcasting every epoch; with
	// a huge drift threshold and large MaxStale it broadcasts rarely. The
	// rarely-broadcasting run must move strictly fewer bytes.
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 3, GCN, partition.Block)
	fresh := tinyConfig(SANCUS)
	fresh.SancusMaxStale = 1
	stale := tinyConfig(SANCUS)
	stale.SancusMaxStale = 100
	stale.SancusDrift = 1e9
	rf, err := TrainDeployed(dep, fresh, byteBound())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := TrainDeployed(dep, stale, byteBound())
	if err != nil {
		t.Fatal(err)
	}
	fb, sb := totalBytes(rf.BytesMoved), totalBytes(rs.BytesMoved)
	if sb >= fb {
		t.Fatalf("stale SANCUS moved %d bytes, fresh %d", sb, fb)
	}
	// The always-stale run still trains (epoch 0 broadcast seeds caches).
	last := rs.Epochs[len(rs.Epochs)-1]
	if math.IsNaN(last.Loss) || math.IsInf(last.Loss, 0) {
		t.Fatal("stale SANCUS produced non-finite loss")
	}
}

func TestPipeGCNMatchesVanillaLossAtEpochZero(t *testing.T) {
	// PipeGCN's epoch 0 is a synchronous full-precision epoch, so its
	// first loss must equal Vanilla's exactly; staleness kicks in later
	// and the trajectories may diverge.
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 3, GraphSAGE, partition.Block)
	cfgV := tinyConfig(Vanilla)
	cfgV.Model = GraphSAGE
	cfgV.Dropout = 0
	cfgP := tinyConfig(PipeGCN)
	cfgP.Model = GraphSAGE
	cfgP.Dropout = 0
	van, err := TrainDeployed(dep, cfgV, nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := TrainDeployed(dep, cfgP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(van.Epochs[0].Loss - pipe.Epochs[0].Loss); d > 1e-9 {
		t.Fatalf("epoch-0 losses differ by %v (PipeGCN must be synchronous at epoch 0)", d)
	}
}

func TestPipeGCNOverlapReducesEpochTime(t *testing.T) {
	// After the synchronous first epoch, PipeGCN overlaps communication
	// with computation, so its simulated time must undercut Vanilla's on
	// the same deployment.
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 4, GraphSAGE, partition.Block)
	cfgV := tinyConfig(Vanilla)
	cfgV.Model = GraphSAGE
	cfgP := tinyConfig(PipeGCN)
	cfgP.Model = GraphSAGE
	van, err := TrainDeployed(dep, cfgV, nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := TrainDeployed(dep, cfgP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.WallClock >= van.WallClock {
		t.Fatalf("PipeGCN wall-clock %.4fs should undercut Vanilla %.4fs", pipe.WallClock, van.WallClock)
	}
}

func TestUniformBitsOrderTraffic(t *testing.T) {
	// 2-bit < 4-bit < 8-bit < full precision in total bytes moved.
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 3, GCN, partition.Block)
	var prev int64 = -1
	for _, b := range []quant.BitWidth{quant.B2, quant.B4, quant.B8} {
		cfg := tinyConfig(AdaQPUniform)
		cfg.UniformBits = b
		res, err := TrainDeployed(dep, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		bytes := totalBytes(res.BytesMoved)
		if bytes <= prev {
			t.Fatalf("%d-bit moved %d bytes, not more than previous %d", b, bytes, prev)
		}
		prev = bytes
	}
	van, err := TrainDeployed(dep, tinyConfig(Vanilla), nil)
	if err != nil {
		t.Fatal(err)
	}
	if vb := totalBytes(van.BytesMoved); vb <= prev {
		t.Fatalf("full precision moved %d bytes, not more than 8-bit %d", vb, prev)
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Same config, same deployment → bit-identical losses and accuracy,
	// regardless of goroutine scheduling.
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 3, GCN, partition.Block)
	cfg := tinyConfig(AdaQP)
	a, err := TrainDeployed(dep, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainDeployed(dep, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].Loss != b.Epochs[i].Loss {
			t.Fatalf("epoch %d: losses differ (%v vs %v) — nondeterminism", i, a.Epochs[i].Loss, b.Epochs[i].Loss)
		}
	}
	if a.FinalTest != b.FinalTest {
		t.Fatalf("test accuracies differ: %v vs %v", a.FinalTest, b.FinalTest)
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 2, GCN, partition.Block)
	cfg1 := tinyConfig(Vanilla)
	cfg2 := tinyConfig(Vanilla)
	cfg2.Seed = 999
	a, err := TrainDeployed(dep, cfg1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainDeployed(dep, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epochs[0].Loss == b.Epochs[0].Loss {
		t.Fatal("different seeds should give different initial weights/losses")
	}
}

func TestAnalyzeOverlapConsistency(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 4, GCN, partition.Block)
	cfg := DefaultConfig()
	cfg.Hidden = 32
	rep := AnalyzeOverlap(dep, cfg, quant.B2, nil)
	if len(rep) != 4 {
		t.Fatalf("expected 4 device reports, got %d", len(rep))
	}
	for _, d := range rep {
		if d.TotalComp != d.CentralComp+d.MarginalComp {
			t.Fatalf("device %d: total != central+marginal", d.Device)
		}
		if d.TotalComp <= 0 || d.CommSeconds <= 0 {
			t.Fatalf("device %d: non-positive costs %+v", d.Device, d)
		}
	}
	// Higher width → more comm time.
	rep8 := AnalyzeOverlap(dep, cfg, quant.B8, nil)
	for i := range rep {
		if rep8[i].CommSeconds <= rep[i].CommSeconds {
			t.Fatalf("device %d: 8-bit comm %v not above 2-bit %v", i, rep8[i].CommSeconds, rep[i].CommSeconds)
		}
	}
}

func TestPairBytesFirstLayer(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 3, GCN, partition.Block)
	pairs := PairBytesFirstLayer(dep)
	dim := ds.Features.Cols
	for src, lg := range dep.Locals {
		for dst := range pairs[src] {
			want := 0
			if dst != src {
				want = 4 * dim * len(lg.SendTo[dst])
			}
			if pairs[src][dst] != want {
				t.Fatalf("pair %d→%d bytes %d, want %d", src, dst, pairs[src][dst], want)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Config{Lambda: 2}
	if err := cfg.validate(); err == nil {
		t.Fatal("lambda > 1 must be rejected")
	}
	cfg = Config{UniformBits: 3}
	if err := cfg.validate(); err == nil {
		t.Fatal("invalid bit-width must be rejected")
	}
	cfg = Config{}
	if err := cfg.validate(); err != nil {
		t.Fatalf("zero config should default cleanly: %v", err)
	}
	if cfg.Layers != 3 || cfg.Hidden != 256 || cfg.ReassignPeriod != 50 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestMethodAndModelStrings(t *testing.T) {
	for m, want := range map[Method]string{
		Vanilla: "Vanilla", AdaQP: "AdaQP", AdaQPUniform: "AdaQP-uniform",
		AdaQPRandom: "AdaQP-random", PipeGCN: "PipeGCN", SANCUS: "SANCUS",
	} {
		if m.String() != want {
			t.Fatalf("%d → %q", m, m.String())
		}
	}
	if GCN.String() != "GCN" || GraphSAGE.String() != "GraphSAGE" {
		t.Fatal("model strings")
	}
}

func TestEvalDoesNotChargeClock(t *testing.T) {
	// Two runs differing only in evaluation frequency must report the
	// same simulated wall-clock (metrics are out-of-band).
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 2, GCN, partition.Block)
	cfgNoEval := tinyConfig(Vanilla)
	cfgNoEval.EvalEvery = 0
	cfgEval := tinyConfig(Vanilla)
	cfgEval.EvalEvery = 1
	a, err := TrainDeployed(dep, cfgNoEval, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainDeployed(dep, cfgEval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.WallClock != b.WallClock {
		t.Fatalf("evaluation leaked into simulated time: %v vs %v", a.WallClock, b.WallClock)
	}
}
