package core

import (
	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// ---- fp32: full-precision ring all2all (Vanilla's scheme) ----

type fp32Codec struct{}

func newFP32Codec(*CodecEnv) (MessageCodec, error) { return fp32Codec{}, nil }

func (fp32Codec) Name() string { return CodecFP32 }

func (fp32Codec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	if err := exchangeHaloFP(env, h, xFull, false); err != nil {
		return err
	}
	env.Dev.Clock().Advance(timing.Comp, env.ForwardCosts(l).Total)
	return nil
}

func (fp32Codec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	env.Dev.Clock().Advance(timing.Comp, env.BackwardCosts(l).Total)
	return exchangeGradFP(env, dxFull, dxLocal)
}

func (fp32Codec) EpochEnd(*ExchangeEnv, int) error { return nil }

func (fp32Codec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	return fpAll2AllBytes(lg, dim)
}

// ---- shared quantized exchange with the overlap schedule ----

// quantState embeds the width tables and implements the quantized
// forward/backward exchanges under AdaQP's computation–communication
// overlap schedule. The three quantizing codecs differ only in how the
// tables are produced (uniform / random / adaptively assigned).
type quantState struct {
	st *assignState
}

func (q *quantState) forwardQ(env *ExchangeEnv, l int, h, xFull *tensor.Matrix) error {
	commDelta, err := exchangeHaloQ(env, q.st.fwdW[l], h, xFull)
	if err != nil {
		return err
	}
	fc := env.ForwardCosts(l)
	env.ChargeOverlap(fc.Central, fc.Marginal, commDelta)
	return nil
}

// forwardFP is the full-precision forward exchange under the overlap
// schedule (AdaQP's bootstrap epoch; the 32-bit passthrough).
func (q *quantState) forwardFP(env *ExchangeEnv, l int, h, xFull *tensor.Matrix) error {
	clock := env.Dev.Clock()
	before := clock.Spent(timing.Comm)
	if err := exchangeHaloFP(env, h, xFull, false); err != nil {
		return err
	}
	commDelta := clock.Spent(timing.Comm) - before
	fc := env.ForwardCosts(l)
	env.ChargeOverlap(fc.Central, fc.Marginal, commDelta)
	return nil
}

func (q *quantState) backwardQ(env *ExchangeEnv, l int, dxFull, dxLocal *tensor.Matrix) error {
	clock := env.Dev.Clock()
	bc := env.BackwardCosts(l)
	clock.Advance(timing.Comp, bc.Marginal)
	commDelta, err := exchangeGradQ(env, q.st.bwdW[l], dxFull, dxLocal)
	if err != nil {
		return err
	}
	if bc.Central > commDelta {
		clock.Advance(timing.Comp, bc.Central-commDelta)
	}
	return nil
}

func (q *quantState) backwardFP(env *ExchangeEnv, l int, dxFull, dxLocal *tensor.Matrix) error {
	clock := env.Dev.Clock()
	bc := env.BackwardCosts(l)
	clock.Advance(timing.Comp, bc.Marginal)
	before := clock.Spent(timing.Comm)
	if err := exchangeGradFP(env, dxFull, dxLocal); err != nil {
		return err
	}
	commDelta := clock.Spent(timing.Comm) - before
	if bc.Central > commDelta {
		clock.Advance(timing.Comp, bc.Central-commDelta)
	}
	return nil
}

// ---- uniform: every message at Config.UniformBits ----

type uniformCodec struct {
	quantState
	bits        quant.BitWidth
	passthrough bool // 32-bit: raw fp32 rows, overlap schedule intact
}

func newUniformCodec(env *CodecEnv) (MessageCodec, error) {
	c := &uniformCodec{bits: env.Cfg.UniformBits, passthrough: env.Cfg.UniformBits == quant.B32}
	if !c.passthrough {
		c.st = newAssignState(env.Cfg, env.Graph(), env.InDim)
		c.st.installUniformWidths(env.Cfg.UniformBits)
	}
	return c, nil
}

func (c *uniformCodec) Name() string { return CodecUniform }

func (c *uniformCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	if c.passthrough {
		return c.forwardFP(env, l, h, xFull)
	}
	return c.forwardQ(env, l, h, xFull)
}

func (c *uniformCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	if c.passthrough {
		return c.backwardFP(env, l, dxFull, dxLocal)
	}
	return c.backwardQ(env, l, dxFull, dxLocal)
}

func (c *uniformCodec) EpochEnd(*ExchangeEnv, int) error { return nil }

func (c *uniformCodec) ForwardErrorBound(mn, mx float32, _ int) float64 {
	if c.passthrough {
		return 0
	}
	return float64(mx-mn) / float64(c.bits.Levels())
}

func (c *uniformCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	if c.passthrough {
		return fpAll2AllBytes(lg, dim)
	}
	out := make([]int, lg.Parts)
	for q := range out {
		out[q] = quant.MixedSize(c.st.fwdW[0].send[q], dim)
	}
	return out
}

// ---- random: widths sampled uniformly from {2,4,8} per message ----

type randomCodec struct {
	quantState
	rank int
}

func newRandomCodec(env *CodecEnv) (MessageCodec, error) {
	c := &randomCodec{rank: env.Rank}
	c.st = newAssignState(env.Cfg, env.Graph(), env.InDim)
	c.st.installRandomWidths(env.Cfg.Seed, 0, len(env.Locals), env.Rank)
	return c, nil
}

func (c *randomCodec) Name() string { return CodecRandom }

func (c *randomCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	return c.forwardQ(env, l, h, xFull)
}

func (c *randomCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	return c.backwardQ(env, l, dxFull, dxLocal)
}

func (c *randomCodec) EpochEnd(env *ExchangeEnv, epoch int) error {
	if epoch > 0 && epoch%env.Cfg.ReassignPeriod == 0 {
		c.st.installRandomWidths(env.Cfg.Seed, epoch/env.Cfg.ReassignPeriod, env.Dev.Size(), c.rank)
	}
	return nil
}

// Stateful: the installed width tables depend on how many re-assignment
// periods have elapsed, so a rebuilt instance would rewind them.
func (c *randomCodec) Stateful() bool { return true }

// ForwardErrorBound: the sampled width can be as narrow as 2 bits.
func (c *randomCodec) ForwardErrorBound(mn, mx float32, _ int) float64 {
	return float64(mx-mn) / float64(quant.B2.Levels())
}

func (c *randomCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	out := make([]int, lg.Parts)
	for q := range out {
		out[q] = quant.MixedSize(c.st.fwdW[0].send[q], dim)
	}
	return out
}

// ---- adaptive: AdaQP's traced, bi-objectively assigned widths ----

type adaptiveCodec struct {
	quantState
}

func newAdaptiveCodec(env *CodecEnv) (MessageCodec, error) {
	c := &adaptiveCodec{}
	c.st = newAssignState(env.Cfg, env.Graph(), env.InDim)
	return c, nil
}

func (c *adaptiveCodec) Name() string { return CodecAdaptive }

// tracingEpoch reports whether this epoch's messages are traced for the
// assigner: the bootstrap epoch 0 (run at full precision) and the last
// epoch of each re-assignment period.
func (c *adaptiveCodec) tracingEpoch(env *ExchangeEnv, epoch int) bool {
	if epoch == 0 {
		return true
	}
	return (epoch+1)%env.Cfg.ReassignPeriod == 0
}

func (c *adaptiveCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	if c.tracingEpoch(env, epoch) {
		c.st.traceForward(l, h)
	}
	if epoch == 0 {
		// Bootstrap epoch: full precision while tracing (no widths assigned
		// yet), with the overlap schedule already active.
		return c.forwardFP(env, l, h, xFull)
	}
	return c.forwardQ(env, l, h, xFull)
}

func (c *adaptiveCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	if c.tracingEpoch(env, epoch) {
		c.st.traceBackward(l, dxFull)
	}
	if epoch == 0 {
		return c.backwardFP(env, l, dxFull, dxLocal)
	}
	return c.backwardQ(env, l, dxFull, dxLocal)
}

// EpochEnd re-solves the bi-objective assignment problem at each period
// boundary using the traces collected this epoch.
func (c *adaptiveCodec) EpochEnd(env *ExchangeEnv, epoch int) error {
	if !c.tracingEpoch(env, epoch) {
		return nil
	}
	return runAssignment(env.Dev, env.Cfg, c.st)
}

// Stateful: the solved width tables and collected traces live across
// epochs.
func (c *adaptiveCodec) Stateful() bool { return true }

// ForwardWireSizes: the epoch-0 bootstrap runs at full precision.
func (c *adaptiveCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	return fpAll2AllBytes(lg, dim)
}

// ---- pipegcn: cross-iteration pipelining with 1-epoch staleness ----

type pipegcnCodec struct {
	pipeHalo []*tensor.Matrix // per layer: last received halo block
	pipeGrad []*tensor.Matrix // per layer: last received remote gradients
}

func newPipeGCNCodec(env *CodecEnv) (MessageCodec, error) {
	return &pipegcnCodec{
		pipeHalo: make([]*tensor.Matrix, env.Cfg.Layers),
		pipeGrad: make([]*tensor.Matrix, env.Cfg.Layers),
	}, nil
}

func (c *pipegcnCodec) Name() string { return CodecPipeGCN }

func (c *pipegcnCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	lg, clock := env.Graph, env.Dev.Clock()
	fc := env.ForwardCosts(l)
	if epoch == 0 {
		if err := exchangeHaloFP(env, h, xFull, false); err != nil {
			return err
		}
		clock.Advance(timing.Comp, fc.Total)
		c.pipeHalo[l] = xFull.RowSlice(lg.NumLocal, xFull.Rows)
		return nil
	}
	// Use last epoch's halo block (1-epoch staleness) while the fresh
	// exchange overlaps with this epoch's computation.
	stale := c.pipeHalo[l]
	for i := 0; i < lg.NumHalo; i++ {
		copy(xFull.Row(lg.NumLocal+i), stale.Row(i))
	}
	// Receive the fresh halo into arena scratch (only its halo rows are
	// written and read), then double-buffer: the now-dead stale block
	// becomes next epoch's cache.
	fresh := env.Scratch.GetMat(xFull.Rows, xFull.Cols)
	before := clock.Spent(timing.Comm)
	if err := exchangeHaloFP(env, h, fresh, false); err != nil {
		return err
	}
	commDelta := clock.Spent(timing.Comm) - before
	for i := 0; i < lg.NumHalo; i++ {
		copy(stale.Row(i), fresh.Row(lg.NumLocal+i))
	}
	env.Scratch.PutMat(fresh)
	if fc.Total > commDelta {
		clock.Advance(timing.Comp, fc.Total-commDelta)
	}
	return nil
}

func (c *pipegcnCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	lg, clock := env.Graph, env.Dev.Clock()
	bc := env.BackwardCosts(l)
	if epoch == 0 {
		clock.Advance(timing.Comp, bc.Total)
		remote := tensor.New(lg.NumLocal, dxLocal.Cols)
		if err := exchangeGradFP(env, dxFull, remote); err != nil {
			return err
		}
		dxLocal.AddInPlace(remote)
		c.pipeGrad[l] = remote
		return nil
	}
	// Apply last epoch's remote gradients; ship fresh ones overlapped with
	// computation. After the add the old block is dead, so re-zero it
	// (exchangeGradFP scatter-adds) and receive in place — no new matrix.
	dxLocal.AddInPlace(c.pipeGrad[l])
	remote := c.pipeGrad[l]
	remote.Zero()
	before := clock.Spent(timing.Comm)
	if err := exchangeGradFP(env, dxFull, remote); err != nil {
		return err
	}
	commDelta := clock.Spent(timing.Comm) - before
	if bc.Total > commDelta {
		clock.Advance(timing.Comp, bc.Total-commDelta)
	}
	return nil
}

func (c *pipegcnCodec) EpochEnd(*ExchangeEnv, int) error { return nil }

// Stateful: the one-epoch-stale halo and gradient caches.
func (c *pipegcnCodec) Stateful() bool { return true }

// ForwardWireSizes: epoch 0 performs the plain full-precision exchange.
func (c *pipegcnCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	return fpAll2AllBytes(lg, dim)
}

// ---- sancus: staleness-bounded sequential broadcast ----

type sancusCodec struct {
	topo  *sancusTopology
	cache []*tensor.Matrix // per layer: cached halo rows
	last  []*tensor.Matrix // per layer: my boundary rows at last broadcast
	age   []int
}

func newSancusCodec(env *CodecEnv) (MessageCodec, error) {
	return &sancusCodec{
		topo:  env.Shared.sancusTopo(env.Locals),
		cache: make([]*tensor.Matrix, env.Cfg.Layers),
		last:  make([]*tensor.Matrix, env.Cfg.Layers),
		age:   make([]int, env.Cfg.Layers),
	}, nil
}

func (c *sancusCodec) Name() string { return CodecSancus }

func (c *sancusCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	overlap := env.Cfg.TransportOverlap
	if err := c.exchange(env, epoch, l, h, xFull, overlap); err != nil {
		return err
	}
	fc := env.ForwardCosts(l)
	if overlap {
		// The central share was charged inside the broadcast window by
		// exchange; only the halo-dependent marginal share remains.
		env.Dev.Clock().Advance(timing.Comp, fc.Marginal)
	} else {
		env.Dev.Clock().Advance(timing.Comp, fc.Total)
	}
	return nil
}

// Backward is communication-avoiding: historical remote embeddings are
// treated as constants, so no error messages are sent back.
func (c *sancusCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	env.Dev.Clock().Advance(timing.Comp, env.BackwardCosts(l).Total)
	return nil
}

func (c *sancusCodec) EpochEnd(*ExchangeEnv, int) error { return nil }

// Stateful: the historical embedding caches and per-layer broadcast ages.
func (c *sancusCodec) Stateful() bool { return true }

// ForwardWireSizes: at epoch 0 every device broadcasts its boundary rows
// (the union of its SendTo sets) to every peer.
func (c *sancusCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	out := make([]int, lg.Parts)
	n := len(c.topo.boundary[lg.Part])
	if n == 0 {
		return out
	}
	for d := range out {
		if d != lg.Part {
			out[d] = 4 * dim * n
		}
	}
	return out
}
