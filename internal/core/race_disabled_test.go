//go:build !race

package core

// raceEnabled gates exact allocation-count assertions; see
// race_enabled_test.go.
const raceEnabled = false
