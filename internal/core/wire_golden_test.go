package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/wire"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the wire-format golden fixtures in internal/wire/testdata")

const goldenDir = "../wire/testdata"

// goldenInput builds the deterministic 3×8 payload matrix every fixture
// encodes (one RNG stream for the values, a separate per-fixture stream
// for stochastic rounding so fixtures stay independent).
func goldenInput() (*tensor.Matrix, []int32) {
	x := tensor.New(3, 8)
	x.FillUniform(tensor.NewRNG(7), -1, 1)
	return x, []int32{0, 1, 2}
}

// mixedWidths returns a deterministic grouped-width vector led by b — the
// adaptive/random codecs' mixed wire layout with all packable groups
// present.
func mixedWidths(b quant.BitWidth) []quant.BitWidth {
	cycle := []quant.BitWidth{quant.B2, quant.B4, quant.B8}
	start := 0
	for i, w := range cycle {
		if w == b {
			start = i
		}
	}
	out := make([]quant.BitWidth, 3)
	for i := range out {
		out[i] = cycle[(start+i)%len(cycle)]
	}
	return out
}

// TestWireGoldenFrames pins the over-the-wire byte layout of every codec
// at every shipped bit-width: each fixture in internal/wire/testdata is a
// complete framed message (length prefix, header, codec payload) that the
// current encoders must reproduce byte-exactly and the current decoders
// must consume without error. A diff here means the wire format drifted —
// bump wire.Version rather than silently breaking cross-process or
// cross-build runs. Regenerate intentionally with -update-golden.
func TestWireGoldenFrames(t *testing.T) {
	x, idx := goldenInput()
	rows := []int32{0, 1, 2}

	// The delta codec's residual stream needs the keyframe's reference
	// state; build both payloads up front from one prev chain.
	var encPrev *tensor.Matrix
	deltaKey, err := encodeDelta(nil, x, idx, &encPrev, true, tensor.NewRNG(300))
	if err != nil {
		t.Fatalf("encodeDelta keyframe: %v", err)
	}
	x2 := x.Clone()
	x2.Apply(func(v float32) float32 { return v + 0.125 })
	deltaResid, err := encodeDelta(nil, x2, idx, &encPrev, false, tensor.NewRNG(301))
	if err != nil {
		t.Fatalf("encodeDelta residual: %v", err)
	}

	quantized := func(b quant.BitWidth, seed uint64) []byte {
		return quant.QuantizeRows(x, idx, b, tensor.NewRNG(seed))
	}
	mixed := func(b quant.BitWidth, seed uint64) []byte {
		p, err := quant.QuantizeMixed(x, idx, mixedWidths(b), tensor.NewRNG(seed))
		if err != nil {
			t.Fatalf("QuantizeMixed(%d): %v", b, err)
		}
		return p
	}
	dequantRows := func(b quant.BitWidth) func([]byte) error {
		return func(p []byte) error {
			return quant.DequantizeRows(p, tensor.New(3, 8), rows, len(rows), b)
		}
	}
	dequantMixed := func(b quant.BitWidth) func([]byte) error {
		return func(p []byte) error {
			return quant.DequantizeMixed(p, tensor.New(3, 8), rows, mixedWidths(b))
		}
	}
	fullRowsAt := func(order []int32) func([]byte) error {
		return func(p []byte) error {
			dst := tensor.New(3, 8)
			if err := bytesToRows(p, dst, order, 0); err != nil {
				return err
			}
			// Full-precision formats are lossless: require bit-exact values.
			if !bytes.Equal(rowsToBytes(dst, order), p) {
				t.Fatal("fp32 wire round-trip not bit-exact")
			}
			return nil
		}
	}
	fullRows := fullRowsAt(rows)

	cases := []struct {
		name    string
		payload []byte
		decode  func([]byte) error
	}{
		// Packed uniform streams (uniform codec wire format). B32 is not a
		// packed stream — at full precision every quantizing codec ships
		// the raw fp32 row passthrough, so *_b32 fixtures pin that layout.
		{"uniform_b2", quantized(quant.B2, 100), dequantRows(quant.B2)},
		{"uniform_b4", quantized(quant.B4, 101), dequantRows(quant.B4)},
		{"uniform_b8", quantized(quant.B8, 102), dequantRows(quant.B8)},
		{"uniform_b32", rowsToBytes(x, idx), fullRows},
		// Error-feedback codec ships the same packed stream layout (the
		// feedback state never crosses the wire).
		{"efquant_b2", quantized(quant.B2, 110), dequantRows(quant.B2)},
		{"efquant_b4", quantized(quant.B4, 111), dequantRows(quant.B4)},
		{"efquant_b8", quantized(quant.B8, 112), dequantRows(quant.B8)},
		{"efquant_b32", rowsToBytes(x2, idx), fullRows},
		// Adaptive codec: grouped mixed-width layout for packable widths,
		// fp32 passthrough at B32.
		{"adaptive_b2", mixed(quant.B2, 120), dequantMixed(quant.B2)},
		{"adaptive_b4", mixed(quant.B4, 121), dequantMixed(quant.B4)},
		{"adaptive_b8", mixed(quant.B8, 122), dequantMixed(quant.B8)},
		{"adaptive_b32", rowsToBytes(x, []int32{2, 1, 0}), fullRowsAt([]int32{2, 1, 0})},
		// Random-assignment codec shares the mixed grouped layout with a
		// different width vector per round; same wire grammar.
		{"random_b2", mixed(quant.B2, 130), dequantMixed(quant.B2)},
		{"random_b4", mixed(quant.B4, 131), dequantMixed(quant.B4)},
		{"random_b8", mixed(quant.B8, 132), dequantMixed(quant.B8)},
		{"random_b32", rowsToBytes(x2, []int32{1, 0, 2}), fullRowsAt([]int32{1, 0, 2})},
		// Full-precision row formats (inherently 32-bit): fp32 baseline,
		// pipegcn's stale exchange, sancus' broadcast all serialize rows
		// as little-endian float32.
		{"fp32_b32", rowsToBytes(x, idx), fullRows},
		{"pipegcn_b32", rowsToBytes(x2, idx), fullRows},
		{"sancus_b32", rowsToBytes(x.Map(func(v float32) float32 { return -v }), idx), fullRows},
		// Sparsification and delta formats carry their own headers.
		{"topk", encodeTopK(x, idx, 4), func(p []byte) error {
			return decodeTopK(p, tensor.New(3, 8), rows, 0, false)
		}},
		{"delta_key", deltaKey, func(p []byte) error {
			var prev *tensor.Matrix
			_, err := decodeDelta(dirtyArena(8), p, 3, 8, &prev, true)
			return err
		}},
		{"delta_resid", deltaResid, func(p []byte) error {
			var prev *tensor.Matrix
			if _, err := decodeDelta(dirtyArena(8), deltaKey, 3, 8, &prev, true); err != nil {
				return err
			}
			_, err := decodeDelta(dirtyArena(8), p, 3, 8, &prev, false)
			return err
		}},
	}

	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := wire.Frame{Op: wire.OpData, Seq: uint32(i), Src: 1, Dst: 2, Payload: tc.payload}
			framed := wire.AppendFrame(nil, f)
			path := filepath.Join(goldenDir, tc.name+".frame")
			if *updateGolden {
				if err := os.WriteFile(path, framed, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			committed, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden to generate): %v", err)
			}
			if !bytes.Equal(committed, framed) {
				t.Fatalf("wire format drifted: re-encoding %s produced %d bytes that differ from the %d committed; if intentional, bump wire.Version and regenerate with -update-golden",
					tc.name, len(framed), len(committed))
			}
			got, n, err := wire.ParseFrame(committed)
			if err != nil {
				t.Fatalf("ParseFrame: %v", err)
			}
			if n != len(committed) {
				t.Fatalf("frame consumed %d of %d fixture bytes", n, len(committed))
			}
			if got.Op != f.Op || got.Seq != f.Seq || got.Src != f.Src || got.Dst != f.Dst {
				t.Fatalf("frame header drifted: %+v", got)
			}
			if !bytes.Equal(got.Payload, tc.payload) {
				t.Fatal("framed payload differs from codec output")
			}
			if err := tc.decode(got.Payload); err != nil {
				t.Fatalf("decoder rejected its own golden payload: %v", err)
			}
		})
	}
}
