package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// ---- topk: magnitude top-k sparsification ----
//
// The sparsification competitor: each row ships only its k
// largest-magnitude entries (k = ⌈density·dim⌉); the receiver zero-fills
// the rest. Stateless — every epoch's selection is independent — so the
// codec is swap-invariant under the conformance suite's instance-rebuild
// check.
//
// Wire format per destination:
//
//	[uint32 k] then per row, in wire order:
//	    k × uint32 column indices (ascending) · k × float32 values
//
// The layout is fixed given (rows, k), and the decoder validates the
// header, the stream length and every index, so corrupted wire bytes
// error instead of panicking (see FuzzCodecDecode).

// topkK returns the per-row entry budget for dim columns at density.
func topkK(dim int, density float64) int {
	k := int(math.Ceil(density * float64(dim)))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// topkWireSize returns the exact encodeTopK stream size.
func topkWireSize(rows, k int) int { return 4 + rows*k*8 }

// topkWorse reports whether entry a ranks below entry b in the keep
// order: smaller magnitude, or equal magnitude with the higher column
// index (ties prefer the lower index, so the selection is deterministic).
func topkWorse(absA float64, idxA int, absB float64, idxB int) bool {
	if absA != absB {
		return absA < absB
	}
	return idxA > idxB
}

// topkSelect writes into keep the k column indices of row with the
// largest magnitudes, ascending. heapIdx/heapAbs are k-sized scratch for
// the min-heap of kept entries (root = worst kept), so selection is
// O(dim·log k) with no per-row allocation.
func topkSelect(row []float32, k int, heapIdx []int, heapAbs []float64, keep []int) []int {
	n := 0
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= n {
				return
			}
			m := l
			if r := l + 1; r < n && topkWorse(heapAbs[r], heapIdx[r], heapAbs[l], heapIdx[l]) {
				m = r
			}
			if topkWorse(heapAbs[i], heapIdx[i], heapAbs[m], heapIdx[m]) {
				return
			}
			heapIdx[i], heapIdx[m] = heapIdx[m], heapIdx[i]
			heapAbs[i], heapAbs[m] = heapAbs[m], heapAbs[i]
			i = m
		}
	}
	for i, v := range row {
		a := math.Abs(float64(v))
		switch {
		case n < k:
			heapIdx[n], heapAbs[n] = i, a
			n++
			for c := n - 1; c > 0; {
				p := (c - 1) / 2
				if !topkWorse(heapAbs[c], heapIdx[c], heapAbs[p], heapIdx[p]) {
					break
				}
				heapIdx[c], heapIdx[p] = heapIdx[p], heapIdx[c]
				heapAbs[c], heapAbs[p] = heapAbs[p], heapAbs[c]
				c = p
			}
		case k > 0 && topkWorse(heapAbs[0], heapIdx[0], a, i):
			heapIdx[0], heapAbs[0] = i, a
			siftDown(0)
		}
	}
	keep = append(keep[:0], heapIdx[:n]...)
	sort.Ints(keep)
	return keep
}

// encodeTopK serializes rows idx of x keeping each row's k
// largest-magnitude entries. Ties break toward the lower column index,
// and the kept indices are written in ascending order, so the stream is
// deterministic. Allocates its own scratch; the codec hot path uses
// topkCodec.encode with instance scratch and an arena buffer instead.
func encodeTopK(x *tensor.Matrix, idx []int32, k int) []byte {
	return (&topkCodec{}).encode(nil, x, idx, k)
}

// encode is encodeTopK with the codec's reusable selection scratch and an
// arena output buffer (every byte of which is overwritten).
func (c *topkCodec) encode(a *Arena, x *tensor.Matrix, idx []int32, k int) []byte {
	if cap(c.heapIdx) < k {
		c.heapIdx = make([]int, k)
		c.heapAbs = make([]float64, k)
		c.keep = make([]int, 0, k)
	}
	heapIdx, heapAbs := c.heapIdx[:k], c.heapAbs[:k]
	sz := topkWireSize(len(idx), k)
	out := a.GetBuf(sz)[:sz]
	binary.LittleEndian.PutUint32(out, uint32(k))
	off := 4
	for _, r := range idx {
		row := x.Row(int(r))
		c.keep = topkSelect(row, k, heapIdx, heapAbs, c.keep)
		for _, col := range c.keep {
			binary.LittleEndian.PutUint32(out[off:], uint32(col))
			off += 4
		}
		for _, col := range c.keep {
			binary.LittleEndian.PutUint32(out[off:], math.Float32bits(row[col]))
			off += 4
		}
	}
	return out
}

// decodeTopK decodes an encodeTopK stream into dst rows rows[i]+rowOffset.
// add=false overwrites each row (zeroing the dropped entries); add=true
// accumulates (the backward scatter-add).
func decodeTopK(buf []byte, dst *tensor.Matrix, rows []int32, rowOffset int, add bool) error {
	if len(buf) < 4 {
		return fmt.Errorf("core: topk stream is %d bytes, want at least the 4-byte header", len(buf))
	}
	k := int(binary.LittleEndian.Uint32(buf))
	if k > dst.Cols {
		return fmt.Errorf("core: topk k=%d exceeds row dimension %d", k, dst.Cols)
	}
	// The encoder clamps k to >= 1 whenever rows carry data, so a zero in
	// the header is corruption — accepting it would silently zero every
	// received halo row.
	if k == 0 && dst.Cols > 0 && len(rows) > 0 {
		return fmt.Errorf("core: topk stream header k=0 for %d-column rows", dst.Cols)
	}
	if want := topkWireSize(len(rows), k); len(buf) != want {
		return fmt.Errorf("core: topk stream is %d bytes, want %d (rows=%d k=%d)", len(buf), want, len(rows), k)
	}
	off := 4
	for _, r := range rows {
		row := dst.Row(int(r) + rowOffset)
		if !add {
			for j := range row {
				row[j] = 0
			}
		}
		vals := off + 4*k
		for i := 0; i < k; i++ {
			col := binary.LittleEndian.Uint32(buf[off+4*i:])
			if int(col) >= dst.Cols {
				return fmt.Errorf("core: topk column index %d out of range (dim %d)", col, dst.Cols)
			}
			v := math.Float32frombits(binary.LittleEndian.Uint32(buf[vals+4*i:]))
			if add {
				row[col] += v
			} else {
				row[col] = v
			}
		}
		off += 8 * k
	}
	return nil
}

type topkCodec struct {
	density float64
	// Reusable selection scratch (not cross-epoch state: contents never
	// influence results, so the codec stays swap-invariant).
	heapIdx []int
	heapAbs []float64
	keep    []int
}

func newTopKCodec(env *CodecEnv) (MessageCodec, error) {
	return &topkCodec{density: env.Cfg.TopKDensity}, nil
}

func (c *topkCodec) Name() string { return CodecTopK }

func (c *topkCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	lg, dev := env.Graph, env.Dev
	n := dev.Size()
	model := dev.Model()
	k := topkK(h.Cols, c.density)
	// Selection scans every candidate element; charge it like the
	// quantization kernels.
	dev.Clock().Advance(timing.Quant, model.QuantTime(wireElems(lg.SendTo, h.Cols)))
	a := env.Scratch
	payloads := a.Payloads(n)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		payloads[q] = c.encode(a, h, lg.SendTo[q], k)
	}
	recv := dev.RingAll2All(payloads)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		if err := decodeTopK(recv[p], xFull, lg.RecvFrom[p], lg.NumLocal, false); err != nil {
			return fmt.Errorf("topk: rank %d from %d: %w", dev.Rank(), p, err)
		}
	}
	a.ReleaseAll(recv)
	dev.Clock().Advance(timing.Quant, model.QuantTime(wireElems(lg.RecvFrom, xFull.Cols)))
	dev.Clock().Advance(timing.Comp, env.ForwardCosts(l).Total)
	return nil
}

func (c *topkCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	lg, dev := env.Graph, env.Dev
	n := dev.Size()
	model := dev.Model()
	k := topkK(dxFull.Cols, c.density)
	dev.Clock().Advance(timing.Comp, env.BackwardCosts(l).Total)
	dev.Clock().Advance(timing.Quant, model.QuantTime(wireElems(lg.RecvFrom, dxFull.Cols)))
	a := env.Scratch
	payloads := a.Payloads(n)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		payloads[p] = c.encode(a, dxFull, env.HaloIdx(p), k)
	}
	recv := dev.RingAll2All(payloads)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		if err := decodeTopK(recv[q], dxLocal, lg.SendTo[q], 0, true); err != nil {
			return fmt.Errorf("topk: rank %d grads from %d: %w", dev.Rank(), q, err)
		}
	}
	a.ReleaseAll(recv)
	dev.Clock().Advance(timing.Quant, model.QuantTime(wireElems(lg.SendTo, dxLocal.Cols)))
	return nil
}

func (c *topkCodec) EpochEnd(*ExchangeEnv, int) error { return nil }

// ForwardErrorBound: a dropped entry decodes to zero, so the per-element
// error is bounded by the row's largest magnitude.
func (c *topkCodec) ForwardErrorBound(mn, mx float32, _ int) float64 {
	return math.Max(math.Abs(float64(mn)), math.Abs(float64(mx)))
}

func (c *topkCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	k := topkK(dim, c.density)
	out := make([]int, lg.Parts)
	for q := range out {
		if n := len(lg.SendTo[q]); n > 0 {
			out[q] = topkWireSize(n, k)
		}
	}
	return out
}
