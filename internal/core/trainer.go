package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// ErrCanceled is returned by a training run stopped through its context.
// Cancellation is observed between epochs: the run finishes the epoch in
// flight, agrees on the stop across all devices (so no device is left
// waiting at a collective) and returns without final evaluation.
var ErrCanceled = errors.New("core: training run canceled")

// Train runs one full training job of cfg.Method over ds partitioned
// parts ways (LDG partitioner) and returns the measured result. model may
// be nil for the default V100/100Gbps calibration.
func Train(ds *synthetic.Dataset, parts int, cfg Config, model *timing.CostModel) (*metrics.RunResult, error) {
	dep := Deploy(ds, parts, cfg.Model, partition.Block)
	return TrainDeployed(dep, cfg, model)
}

// TrainDeployed is Train over an existing Deployment (lets experiments
// reuse one partitioning across methods, as the paper's comparisons do).
//
// The run is assembled from the two pluggable seams: cfg's message codec
// (defaulting per cfg.Method) moves boundary messages, and cfg's transport
// backend (defaulting to the in-process cluster) moves bytes.
func TrainDeployed(dep *Deployment, cfg Config, model *timing.CostModel) (*metrics.RunResult, error) {
	return TrainDeployedCtx(context.Background(), dep, cfg, model)
}

// TrainDeployedCtx is TrainDeployed under a cancellation context. When ctx
// is canceled the run stops at the next epoch boundary and returns
// ErrCanceled; a non-cancellable context (context.Background()) adds no
// per-epoch overhead and leaves results bit-identical to TrainDeployed.
func TrainDeployedCtx(ctx context.Context, dep *Deployment, cfg Config, model *timing.CostModel) (*metrics.RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	codecName := cfg.Codec
	factory := cfg.codecFactory
	if factory == nil {
		var err error
		if codecName == "" {
			codecName, err = CodecForMethod(cfg.Method)
			if err != nil {
				return nil, err
			}
		}
		factory, err = LookupCodec(codecName)
		if err != nil {
			return nil, err
		}
	}
	runtimeFor := cfg.transportFactory
	if runtimeFor == nil {
		transportName := cfg.Transport
		if transportName == "" {
			transportName = TransportInprocess
		}
		var err error
		runtimeFor, err = LookupTransport(transportName)
		if err != nil {
			return nil, err
		}
	}

	ds := dep.Dataset
	parts := dep.Assignment.Parts
	// Fault injection wraps the runtime centrally — the backend stays
	// fault-agnostic, and both backends derive their cost model (slowed
	// straggler links) through the same path.
	var plan *chaos.FaultPlan
	var fstats *faultStats
	if cfg.Faults.Enabled() {
		p, err := chaos.NewPlan(cfg.Faults, parts)
		if err != nil {
			return nil, err
		}
		plan, fstats = p, &faultStats{}
		runtimeFor = faultFactory(runtimeFor, plan, fstats)
	}
	rt := runtimeFor(TransportSpec{
		Parts:     parts,
		Model:     model,
		Workers:   cfg.TransportWorkers,
		Staleness: cfg.TransportStaleness,
		Overlap:   cfg.TransportOverlap,
		SocketDir: cfg.TransportSocketDir,
	})

	res := &metrics.RunResult{
		Dataset: ds.Name,
		Model:   cfg.Model.String(),
		Method:  cfg.Method.String(),
		Codec:   codecName,
		Parts:   parts,
	}
	denom := float64(synthetic.MaskedCount(ds.TrainMask))
	// Positive-class weight for multi-label BCE: with a handful of
	// positives among 100+ classes, unweighted BCE stalls in the trivial
	// all-negative solution for hundreds of epochs (the paper trains Yelp
	// and AmazonProducts for 1000+ epochs; our reduced budgets need the
	// standard neg/pos re-weighting instead).
	posWeight := 1.0
	if ds.Task == synthetic.MultiLabel {
		var pos float64
		for _, v := range ds.Labels.Data {
			if v > 0.5 {
				pos++
			}
		}
		if pos > 0 {
			posWeight = (float64(len(ds.Labels.Data)) - pos) / pos
		}
		if posWeight > 25 {
			posWeight = 25
		}
		if posWeight < 1 {
			posWeight = 1
		}
	}

	shared := dep.runShared()
	err := rt.Run(cfg.Seed, func(dev Transport) error {
		codec, err := factory(&CodecEnv{
			Cfg:    &cfg,
			Locals: dep.Locals,
			Rank:   dev.Rank(),
			InDim:  ds.Features.Cols,
			Shared: shared,
		})
		if err != nil {
			return err
		}
		w := &worker{
			ctx: ctx,
			dev: dev, cfg: &cfg, res: res,
			lg:        dep.Locals[dev.Rank()],
			task:      ds.Task,
			denom:     denom,
			posWeight: posWeight,
			codec:     codec,
			plan:      plan,
			fstats:    fstats,
		}
		w.ld = shardData(ds, w.lg)
		w.model = newDeviceModel(&cfg, w.lg, ds.Features.Cols, ds.NumClasses, dev.Model())
		w.opt = nn.NewAdam(cfg.LR)
		scratch := NewPooledArena()
		if cfg.isolateArena {
			scratch = NewArena()
		}
		w.env = &ExchangeEnv{Dev: dev, Graph: w.lg, Cfg: &cfg, Scratch: scratch, costs: w.model.costs}
		if !cfg.isolateArena {
			// Hand the arena — freelists intact — to the next run in this
			// process, so repeated runs stay warm without re-allocating.
			defer w.env.Scratch.Recycle()
		}
		return w.run()
	})
	if err != nil {
		return nil, err
	}

	for _, c := range rt.Clocks() {
		res.PerDevice = append(res.PerDevice, metrics.FromClock(c))
	}
	res.WallClock = timing.MaxSeconds(rt.Clocks())
	for _, b := range res.PerDevice {
		if b.Assign > res.AssignTime {
			res.AssignTime = b.Assign
		}
	}
	res.BytesMoved = rt.BytesMoved()
	if plan != nil {
		retries, retryTime, crashes, recoveryTime := fstats.snapshot()
		res.Faults = metrics.FaultStats{
			Stragglers:   plan.StragglerCount(),
			Retries:      retries,
			RetryTime:    retryTime,
			Crashes:      crashes,
			RecoveryTime: recoveryTime,
		}
	}
	return res, nil
}

// worker is the per-device training state.
type worker struct {
	ctx       context.Context
	dev       Transport
	cfg       *Config
	res       *metrics.RunResult
	lg        *partition.LocalGraph
	ld        *localData
	model     *deviceModel
	opt       *nn.Adam
	task      synthetic.Task
	denom     float64
	posWeight float64

	codec MessageCodec
	env   *ExchangeEnv

	// plan/fstats are non-nil only when the run injects faults; the
	// worker's part is the crash/restart protocol (crashAndRecover), the
	// rest lives in the transport wrapper (chaos_transport.go).
	plan   *chaos.FaultPlan
	fstats *faultStats

	// Steady-state scratch reused across epochs (shapes are static per
	// device): per-layer xFull/dxLocal blocks, the flat grads list handed
	// to AllReduceSum, and the cached parameter list.
	xFull   []*tensor.Matrix
	dxLocal []*tensor.Matrix
	grads   []*tensor.Matrix
}

func (w *worker) run() error {
	cfg := w.cfg
	if err := w.checkCrashSupport(); err != nil {
		return err
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if canceled := w.pollCancel(); canceled {
			return ErrCanceled
		}
		if w.plan != nil && w.plan.CrashRank >= 0 && epoch == w.plan.CrashEpoch {
			if err := w.crashAndRecover(epoch); err != nil {
				return err
			}
		}
		loss, err := w.trainEpoch(epoch)
		if err != nil {
			return fmt.Errorf("rank %d epoch %d: %w", w.dev.Rank(), epoch, err)
		}
		// Codec end-of-epoch protocol (e.g. AdaQP's bit-width re-assignment
		// at period boundaries, using the traces collected this epoch).
		if err := w.codec.EpochEnd(w.env, epoch); err != nil {
			return err
		}

		valAcc := math.NaN()
		if cfg.EvalEvery > 0 && (epoch%cfg.EvalEvery == 0 || epoch == cfg.Epochs-1) {
			var err error
			valAcc, err = w.evaluate(w.ld.val)
			if err != nil {
				return err
			}
		}
		w.dev.Barrier()
		if w.dev.Rank() == 0 {
			stat := metrics.EpochStat{
				Epoch: epoch, Loss: loss, ValAcc: valAcc,
				SimTime: w.dev.Clock().Now(),
			}
			w.res.Epochs = append(w.res.Epochs, stat)
			if cfg.EpochHook != nil {
				cfg.EpochHook(stat)
			}
		}
	}
	// Final metrics.
	test, err := w.evaluate(w.ld.test)
	if err != nil {
		return err
	}
	val, err := w.evaluate(w.ld.val)
	if err != nil {
		return err
	}
	if w.dev.Rank() == 0 {
		w.res.FinalTest = test
		w.res.FinalVal = val
	}
	return nil
}

// checkCrashSupport rejects, symmetrically on all ranks, fault plans that
// schedule a crash while the codec carries cross-epoch state it cannot
// checkpoint — restarting such a codec would silently diverge from the
// fault-free run instead of replaying it bit for bit.
func (w *worker) checkCrashSupport() error {
	if w.plan == nil || w.plan.CrashRank < 0 || w.plan.CrashEpoch >= w.cfg.Epochs {
		return nil
	}
	if sc, ok := w.codec.(StatefulCodec); ok && sc.Stateful() {
		if _, ok := w.codec.(CodecCheckpointer); !ok {
			return fmt.Errorf("core: codec %q carries cross-epoch state without checkpoint support; it cannot recover from the fault plan's crash at epoch %d", w.codec.Name(), w.plan.CrashEpoch)
		}
	}
	return nil
}

// crashAndRecover simulates the plan's device crash during this epoch:
// every device checkpoints its epoch-boundary state, runs the doomed
// attempt whose results the crash destroys, rolls back to the checkpoint,
// and the crashed rank pays the restart downtime before the cluster
// resynchronizes. The caller then re-runs the epoch — the replay is
// bit-identical to the attempt (same parameters, optimizer moments and RNG
// stream), so only the simulated clocks grow.
func (w *worker) crashAndRecover(epoch int) error {
	cp := w.checkpoint()
	if _, err := w.trainEpoch(epoch); err != nil {
		return fmt.Errorf("rank %d doomed epoch %d: %w", w.dev.Rank(), epoch, err)
	}
	w.restore(cp)
	if w.dev.Rank() == w.plan.CrashRank {
		penalty := timing.Seconds(w.plan.Spec.RestartPenalty)
		w.dev.Clock().Advance(timing.Idle, penalty)
		w.fstats.addCrash(penalty)
	}
	// Restart rendezvous: survivors absorb the crashed device's downtime
	// as Idle, exactly like any straggler wait.
	w.dev.Barrier()
	return nil
}

// deviceCheckpoint is one device's epoch-boundary training state: model
// parameters with their optimizer moments, the optimizer step count, the
// RNG stream position and — for checkpoint-capable stateful codecs — the
// codec's cross-epoch state.
type deviceCheckpoint struct {
	params   []nn.ParamCheckpoint
	step     int
	rng      tensor.RNGState
	codec    any
	hasCodec bool
}

func (w *worker) checkpoint() *deviceCheckpoint {
	cp := &deviceCheckpoint{step: w.opt.StepCount(), rng: w.dev.Rand().State()}
	for _, p := range w.model.params() {
		cp.params = append(cp.params, p.Checkpoint())
	}
	if c, ok := w.codec.(CodecCheckpointer); ok {
		cp.codec, cp.hasCodec = c.CheckpointState(), true
	}
	return cp
}

// restore rolls the device back to cp. Param.Restore copies data in place,
// so cached matrix pointers (w.grads, scratch blocks) stay valid.
func (w *worker) restore(cp *deviceCheckpoint) {
	for i, p := range w.model.params() {
		p.Restore(cp.params[i])
	}
	w.opt.SetStepCount(cp.step)
	w.dev.Rand().SetState(cp.rng)
	if cp.hasCodec {
		w.codec.(CodecCheckpointer).RestoreCheckpoint(cp.codec)
	}
}

// trainEpoch runs one synchronous training epoch and returns the global
// training loss.
func (w *worker) trainEpoch(epoch int) (float64, error) {
	w.model.zeroGrads()
	logits, err := w.forward(epoch, true)
	if err != nil {
		return 0, err
	}
	var loss float64
	var dlogits *tensor.Matrix
	if w.task == synthetic.SingleLabel {
		loss, dlogits = nn.SoftmaxCrossEntropyScaled(logits, w.ld.labels, w.ld.train, w.denom)
	} else {
		loss, dlogits = nn.SigmoidBCEWeighted(logits, w.ld.y, w.ld.train, w.denom, w.posWeight)
	}
	if err := w.backward(epoch, dlogits); err != nil {
		return 0, err
	}
	// Model-gradient synchronization (small relative to messages; §1 fn.1).
	if w.grads == nil {
		for _, p := range w.model.params() {
			w.grads = append(w.grads, p.Grad)
		}
	}
	w.dev.AllReduceSum(w.grads)
	w.opt.Step(w.model.params())
	return w.globalSum(loss), nil
}

// forward runs the layer loop. For train=true the codec's halo exchange
// and timing schedule applies; eval uses the uncharged raw exchange at
// full precision.
func (w *worker) forward(epoch int, train bool) (*tensor.Matrix, error) {
	cfg := w.cfg
	h := w.ld.x
	if w.xFull == nil {
		w.xFull = make([]*tensor.Matrix, cfg.Layers)
		for l := 0; l < cfg.Layers; l++ {
			w.xFull[l] = tensor.New(w.lg.NumLocal+w.lg.NumHalo, w.model.layers[l].inDim)
		}
	}
	for l := 0; l < cfg.Layers; l++ {
		lay := w.model.layers[l]
		// Per-layer scratch: local rows are re-copied and every halo row is
		// rewritten by the exchange, so reuse across epochs (and between
		// train and eval passes) is safe.
		xFull := w.xFull[l]
		for i := 0; i < w.lg.NumLocal; i++ {
			copy(xFull.Row(i), h.Row(i))
		}
		if !train {
			if err := exchangeHaloFP(w.env, h, xFull, true); err != nil {
				return nil, err
			}
			h = lay.forward(w.lg, xFull, w.dev.Rand(), false)
			continue
		}
		if err := w.codec.Forward(w.env, epoch, l, h, xFull); err != nil {
			return nil, err
		}
		h = lay.forward(w.lg, xFull, w.dev.Rand(), true)
	}
	return h, nil
}

// backward runs the reverse layer loop with the codec's gradient exchange.
func (w *worker) backward(epoch int, dlogits *tensor.Matrix) error {
	cfg := w.cfg
	d := dlogits
	for l := cfg.Layers - 1; l >= 0; l-- {
		lay := w.model.layers[l]
		needInput := l > 0
		dxFull := lay.backward(w.lg, d, needInput)
		if !needInput {
			// Layer 0 has no backward exchange on any codec.
			w.dev.Clock().Advance(timing.Comp, w.model.costs[l].bwdTotal)
			return nil
		}
		if w.dxLocal == nil {
			w.dxLocal = make([]*tensor.Matrix, cfg.Layers)
		}
		if w.dxLocal[l] == nil {
			w.dxLocal[l] = tensor.New(w.lg.NumLocal, dxFull.Cols)
		}
		dxLocal := w.dxLocal[l]
		for i := 0; i < w.lg.NumLocal; i++ {
			copy(dxLocal.Row(i), dxFull.Row(i))
		}
		if err := w.codec.Backward(w.env, epoch, l, dxFull, dxLocal); err != nil {
			return err
		}
		d = dxLocal
	}
	return nil
}

// pollCancel agrees across all devices whether the run's context has been
// canceled. Cancellation arrives asynchronously, so devices may observe it
// at different times; every device shares its local observation over the
// metrics sideband and the union decides, guaranteeing either all devices
// stop at this epoch boundary or none do (a device stopping alone would
// leave the others deadlocked at the next collective). Runs under a
// non-cancellable context skip the exchange entirely.
func (w *worker) pollCancel() bool {
	if w.ctx == nil || w.ctx.Done() == nil {
		return false
	}
	flag := []byte{0}
	if w.ctx.Err() != nil {
		flag[0] = 1
	}
	for _, b := range w.dev.RawAllGather(flag) {
		if len(b) > 0 && b[0] != 0 {
			return true
		}
	}
	return false
}

// globalSum sums a scalar across devices over the metrics sideband.
func (w *worker) globalSum(x float64) float64 {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
	all := w.dev.RawAllGather(buf)
	var sum float64
	for _, b := range all {
		sum += math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return sum
}

// evaluate computes accuracy (single-label) or micro-F1 (multi-label) over
// the masked local rows, aggregated globally. Uncharged (metrics sideband).
func (w *worker) evaluate(mask []bool) (float64, error) {
	logits, err := w.forward(-1, false)
	if err != nil {
		return 0, err
	}
	var counts [3]float64
	if w.task == synthetic.SingleLabel {
		for i := 0; i < logits.Rows; i++ {
			if !mask[i] {
				continue
			}
			counts[1]++
			if logits.ArgMaxRow(i) == w.ld.labels[i] {
				counts[0]++
			}
		}
	} else {
		for i := 0; i < logits.Rows; i++ {
			if !mask[i] {
				continue
			}
			lrow := logits.Row(i)
			trow := w.ld.y.Row(i)
			for j, z := range lrow {
				pred, actual := z > 0, trow[j] > 0.5
				switch {
				case pred && actual:
					counts[0]++ // tp
				case pred && !actual:
					counts[1]++ // fp
				case !pred && actual:
					counts[2]++ // fn
				}
			}
		}
	}
	buf := make([]byte, 24)
	for i, c := range counts {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(c))
	}
	all := w.dev.RawAllGather(buf)
	var tot [3]float64
	for _, b := range all {
		for i := range tot {
			tot[i] += math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	if w.task == synthetic.SingleLabel {
		if tot[1] == 0 {
			return 0, nil
		}
		return tot[0] / tot[1], nil
	}
	denom := 2*tot[0] + tot[1] + tot[2]
	if denom == 0 {
		return 0, nil
	}
	return 2 * tot[0] / denom, nil
}
