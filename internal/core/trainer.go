package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// Train runs one full training job of cfg.Method over ds partitioned
// parts ways (LDG partitioner) and returns the measured result. model may
// be nil for the default V100/100Gbps calibration.
func Train(ds *synthetic.Dataset, parts int, cfg Config, model *timing.CostModel) (*metrics.RunResult, error) {
	dep := Deploy(ds, parts, cfg.Model, partition.Block)
	return TrainDeployed(dep, cfg, model)
}

// TrainDeployed is Train over an existing Deployment (lets experiments
// reuse one partitioning across methods, as the paper's comparisons do).
func TrainDeployed(dep *Deployment, cfg Config, model *timing.CostModel) (*metrics.RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds := dep.Dataset
	parts := dep.Assignment.Parts
	clu := cluster.New(parts, model)

	res := &metrics.RunResult{
		Dataset: ds.Name,
		Model:   cfg.Model.String(),
		Method:  cfg.Method.String(),
		Parts:   parts,
	}
	denom := float64(synthetic.MaskedCount(ds.TrainMask))
	// Positive-class weight for multi-label BCE: with a handful of
	// positives among 100+ classes, unweighted BCE stalls in the trivial
	// all-negative solution for hundreds of epochs (the paper trains Yelp
	// and AmazonProducts for 1000+ epochs; our reduced budgets need the
	// standard neg/pos re-weighting instead).
	posWeight := 1.0
	if ds.Task == synthetic.MultiLabel {
		var pos float64
		for _, v := range ds.Labels.Data {
			if v > 0.5 {
				pos++
			}
		}
		if pos > 0 {
			posWeight = (float64(len(ds.Labels.Data)) - pos) / pos
		}
		if posWeight > 25 {
			posWeight = 25
		}
		if posWeight < 1 {
			posWeight = 1
		}
	}

	// SANCUS needs each device's boundary-union layout globally (static
	// topology metadata, exchanged once at startup in the real system).
	var sancus *sancusTopology
	if cfg.Method == SANCUS {
		sancus = buildSancusTopology(dep.Locals)
	}

	err := clu.Run(cfg.Seed, func(dev *cluster.Device) error {
		w := &worker{
			dev: dev, cfg: &cfg, clu: clu, res: res,
			lg:        dep.Locals[dev.Rank()],
			task:      ds.Task,
			denom:     denom,
			posWeight: posWeight,
			sancus:    sancus,
		}
		w.ld = shardData(ds, w.lg)
		w.model = newDeviceModel(&cfg, w.lg, ds.Features.Cols, ds.NumClasses, dev.Model())
		w.opt = nn.NewAdam(cfg.LR)
		if quantizedMethod(cfg.Method) {
			w.assign = newAssignState(&cfg, w.lg, ds.Features.Cols)
		}
		return w.run()
	})
	if err != nil {
		return nil, err
	}

	for _, c := range clu.Clocks() {
		res.PerDevice = append(res.PerDevice, metrics.FromClock(c))
	}
	res.WallClock = timing.MaxSeconds(clu.Clocks())
	for _, b := range res.PerDevice {
		if b.Assign > res.AssignTime {
			res.AssignTime = b.Assign
		}
	}
	res.BytesMoved = clu.BytesMoved()
	return res, nil
}

func quantizedMethod(m Method) bool {
	return m == AdaQP || m == AdaQPUniform || m == AdaQPRandom
}

// worker is the per-device training state.
type worker struct {
	dev       *cluster.Device
	cfg       *Config
	clu       *cluster.Cluster
	res       *metrics.RunResult
	lg        *partition.LocalGraph
	ld        *localData
	model     *deviceModel
	opt       *nn.Adam
	task      synthetic.Task
	denom     float64
	posWeight float64
	assign    *assignState

	// PipeGCN staleness buffers: per layer, last received halo block and
	// last received remote gradient contribution.
	pipeHalo []*tensor.Matrix
	pipeGrad []*tensor.Matrix

	// SANCUS state.
	sancus      *sancusTopology
	sancusCache []*tensor.Matrix // per layer: cached halo rows
	sancusLast  []*tensor.Matrix // per layer: my boundary rows at last broadcast
	sancusAge   []int
}

func (w *worker) run() error {
	cfg := w.cfg
	L := cfg.Layers
	switch cfg.Method {
	case PipeGCN:
		w.pipeHalo = make([]*tensor.Matrix, L)
		w.pipeGrad = make([]*tensor.Matrix, L)
	case SANCUS:
		w.sancusCache = make([]*tensor.Matrix, L)
		w.sancusLast = make([]*tensor.Matrix, L)
		w.sancusAge = make([]int, L)
	case AdaQPUniform:
		w.assign.installUniformWidths(cfg.UniformBits)
	case AdaQPRandom:
		w.assign.installRandomWidths(cfg.Seed, 0, w.dev.Size(), w.dev.Rank())
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		loss, err := w.trainEpoch(epoch)
		if err != nil {
			return fmt.Errorf("rank %d epoch %d: %w", w.dev.Rank(), epoch, err)
		}
		// AdaQP: re-solve the bi-objective problem at the period boundary
		// using the traces collected this epoch.
		if cfg.Method == AdaQP && w.isTracingEpoch(epoch) {
			if err := runAssignment(w.dev, cfg, w.assign); err != nil {
				return err
			}
		}
		if cfg.Method == AdaQPRandom && epoch > 0 && epoch%cfg.ReassignPeriod == 0 {
			w.assign.installRandomWidths(cfg.Seed, epoch/cfg.ReassignPeriod, w.dev.Size(), w.dev.Rank())
		}

		valAcc := math.NaN()
		if cfg.EvalEvery > 0 && (epoch%cfg.EvalEvery == 0 || epoch == cfg.Epochs-1) {
			var err error
			valAcc, err = w.evaluate(w.ld.val)
			if err != nil {
				return err
			}
		}
		w.dev.Barrier()
		if w.dev.Rank() == 0 {
			w.res.Epochs = append(w.res.Epochs, metrics.EpochStat{
				Epoch: epoch, Loss: loss, ValAcc: valAcc,
				SimTime: w.dev.Clock().Now(),
			})
		}
	}
	// Final metrics.
	test, err := w.evaluate(w.ld.test)
	if err != nil {
		return err
	}
	val, err := w.evaluate(w.ld.val)
	if err != nil {
		return err
	}
	if w.dev.Rank() == 0 {
		w.res.FinalTest = test
		w.res.FinalVal = val
	}
	return nil
}

// isTracingEpoch reports whether this epoch's messages were traced for the
// assigner: the bootstrap epoch 0 (run at full precision) and the last
// epoch of each re-assignment period.
func (w *worker) isTracingEpoch(epoch int) bool {
	if epoch == 0 {
		return true
	}
	return (epoch+1)%w.cfg.ReassignPeriod == 0
}

// trainEpoch runs one synchronous training epoch and returns the global
// training loss.
func (w *worker) trainEpoch(epoch int) (float64, error) {
	w.model.zeroGrads()
	logits, err := w.forward(epoch, true)
	if err != nil {
		return 0, err
	}
	var loss float64
	var dlogits *tensor.Matrix
	if w.task == synthetic.SingleLabel {
		loss, dlogits = nn.SoftmaxCrossEntropyScaled(logits, w.ld.labels, w.ld.train, w.denom)
	} else {
		loss, dlogits = nn.SigmoidBCEWeighted(logits, w.ld.y, w.ld.train, w.denom, w.posWeight)
	}
	if err := w.backward(epoch, dlogits); err != nil {
		return 0, err
	}
	// Model-gradient synchronization (small relative to messages; §1 fn.1).
	var grads []*tensor.Matrix
	for _, p := range w.model.params() {
		grads = append(grads, p.Grad)
	}
	w.dev.AllReduceSum(grads)
	w.opt.Step(w.model.params())
	return w.globalSum(loss), nil
}

// forward runs the layer loop. For train=true the method-specific halo
// exchange and timing schedule applies; eval uses the uncharged raw
// exchange at full precision.
func (w *worker) forward(epoch int, train bool) (*tensor.Matrix, error) {
	cfg := w.cfg
	h := w.ld.x
	for l := 0; l < cfg.Layers; l++ {
		lay := w.model.layers[l]
		xFull := tensor.New(w.lg.NumLocal+w.lg.NumHalo, lay.inDim)
		for i := 0; i < w.lg.NumLocal; i++ {
			copy(xFull.Row(i), h.Row(i))
		}
		if !train {
			if err := exchangeHaloFP(w.dev, w.lg, h, xFull, true); err != nil {
				return nil, err
			}
			h = lay.forward(w.lg, xFull, w.dev.RNG, false)
			continue
		}
		if err := w.forwardExchange(epoch, l, h, xFull); err != nil {
			return nil, err
		}
		h = lay.forward(w.lg, xFull, w.dev.RNG, true)
	}
	return h, nil
}

// forwardExchange fills xFull's halo rows per the method and charges the
// simulated schedule for layer l's forward stage.
func (w *worker) forwardExchange(epoch, l int, h, xFull *tensor.Matrix) error {
	cfg := w.cfg
	clock := w.dev.Clock()
	costs := w.model.costs[l]
	switch cfg.Method {
	case Vanilla:
		if err := exchangeHaloFP(w.dev, w.lg, h, xFull, false); err != nil {
			return err
		}
		clock.Advance(timing.Comp, costs.fwdTotal)

	case AdaQP, AdaQPUniform, AdaQPRandom:
		if cfg.Method == AdaQP && w.isTracingEpoch(epoch) {
			w.assign.traceForward(l, h)
		}
		if cfg.Method == AdaQP && epoch == 0 {
			// Bootstrap epoch: full precision while tracing (no widths
			// assigned yet), with the overlap schedule already active.
			before := clock.Spent(timing.Comm)
			if err := exchangeHaloFP(w.dev, w.lg, h, xFull, false); err != nil {
				return err
			}
			commDelta := clock.Spent(timing.Comm) - before
			w.chargeOverlap(costs.fwdCentral, costs.fwdMarginal, commDelta)
			return nil
		}
		commDelta, err := exchangeHaloQ(w.dev, w.lg, w.assign.fwdW[l], h, xFull)
		if err != nil {
			return err
		}
		w.chargeOverlap(costs.fwdCentral, costs.fwdMarginal, commDelta)

	case PipeGCN:
		if epoch == 0 {
			if err := exchangeHaloFP(w.dev, w.lg, h, xFull, false); err != nil {
				return err
			}
			clock.Advance(timing.Comp, costs.fwdTotal)
			w.pipeHalo[l] = xFull.RowSlice(w.lg.NumLocal, xFull.Rows)
			return nil
		}
		// Use last epoch's halo block (1-epoch staleness) while the fresh
		// exchange overlaps with this epoch's computation.
		stale := w.pipeHalo[l]
		for i := 0; i < w.lg.NumHalo; i++ {
			copy(xFull.Row(w.lg.NumLocal+i), stale.Row(i))
		}
		fresh := tensor.New(xFull.Rows, xFull.Cols)
		before := clock.Spent(timing.Comm)
		if err := exchangeHaloFP(w.dev, w.lg, h, fresh, false); err != nil {
			return err
		}
		commDelta := clock.Spent(timing.Comm) - before
		w.pipeHalo[l] = fresh.RowSlice(w.lg.NumLocal, fresh.Rows)
		if costs.fwdTotal > commDelta {
			clock.Advance(timing.Comp, costs.fwdTotal-commDelta)
		}

	case SANCUS:
		if err := w.sancusExchange(epoch, l, h, xFull); err != nil {
			return err
		}
		clock.Advance(timing.Comp, costs.fwdTotal)

	default:
		return fmt.Errorf("core: unsupported method %v", cfg.Method)
	}
	return nil
}

// chargeOverlap implements the Fig. 7 schedule: central-graph computation
// runs concurrently with marginal-graph communication (whose commDelta was
// already charged by the collective), then marginal computation follows.
func (w *worker) chargeOverlap(central, marginal, commDelta timing.Seconds) {
	clock := w.dev.Clock()
	if central > commDelta {
		clock.Advance(timing.Comp, central-commDelta)
	}
	clock.Advance(timing.Comp, marginal)
}

// backward runs the reverse layer loop with method-specific gradient
// exchange.
func (w *worker) backward(epoch int, dlogits *tensor.Matrix) error {
	cfg := w.cfg
	clock := w.dev.Clock()
	d := dlogits
	for l := cfg.Layers - 1; l >= 0; l-- {
		lay := w.model.layers[l]
		costs := w.model.costs[l]
		needInput := l > 0
		dxFull := lay.backward(w.lg, d, needInput)
		if !needInput {
			clock.Advance(timing.Comp, costs.bwdTotal)
			return nil
		}
		dxLocal := dxFull.RowSlice(0, w.lg.NumLocal)

		switch cfg.Method {
		case Vanilla:
			clock.Advance(timing.Comp, costs.bwdTotal)
			if err := exchangeGradFP(w.dev, w.lg, dxFull, dxLocal); err != nil {
				return err
			}

		case AdaQP, AdaQPUniform, AdaQPRandom:
			if cfg.Method == AdaQP && w.isTracingEpoch(epoch) {
				w.assign.traceBackward(l, dxFull)
			}
			clock.Advance(timing.Comp, costs.bwdMarginal)
			if cfg.Method == AdaQP && epoch == 0 {
				before := clock.Spent(timing.Comm)
				if err := exchangeGradFP(w.dev, w.lg, dxFull, dxLocal); err != nil {
					return err
				}
				commDelta := clock.Spent(timing.Comm) - before
				if costs.bwdCentral > commDelta {
					clock.Advance(timing.Comp, costs.bwdCentral-commDelta)
				}
			} else {
				commDelta, err := exchangeGradQ(w.dev, w.lg, w.assign.bwdW[l], dxFull, dxLocal)
				if err != nil {
					return err
				}
				if costs.bwdCentral > commDelta {
					clock.Advance(timing.Comp, costs.bwdCentral-commDelta)
				}
			}

		case PipeGCN:
			if epoch == 0 {
				clock.Advance(timing.Comp, costs.bwdTotal)
				remote := tensor.New(w.lg.NumLocal, dxLocal.Cols)
				if err := exchangeGradFP(w.dev, w.lg, dxFull, remote); err != nil {
					return err
				}
				dxLocal.AddInPlace(remote)
				w.pipeGrad[l] = remote
			} else {
				// Apply last epoch's remote gradients; ship fresh ones
				// overlapped with computation.
				dxLocal.AddInPlace(w.pipeGrad[l])
				remote := tensor.New(w.lg.NumLocal, dxLocal.Cols)
				before := clock.Spent(timing.Comm)
				if err := exchangeGradFP(w.dev, w.lg, dxFull, remote); err != nil {
					return err
				}
				commDelta := clock.Spent(timing.Comm) - before
				w.pipeGrad[l] = remote
				if costs.bwdTotal > commDelta {
					clock.Advance(timing.Comp, costs.bwdTotal-commDelta)
				}
			}

		case SANCUS:
			// Communication-avoiding: historical remote embeddings are
			// treated as constants, so no error messages are sent back.
			clock.Advance(timing.Comp, costs.bwdTotal)
		}
		d = dxLocal
	}
	return nil
}

// globalSum sums a scalar across devices over the metrics sideband.
func (w *worker) globalSum(x float64) float64 {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
	all := w.dev.RawAllGather(buf)
	var sum float64
	for _, b := range all {
		sum += math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return sum
}

// evaluate computes accuracy (single-label) or micro-F1 (multi-label) over
// the masked local rows, aggregated globally. Uncharged (metrics sideband).
func (w *worker) evaluate(mask []bool) (float64, error) {
	logits, err := w.forward(-1, false)
	if err != nil {
		return 0, err
	}
	var counts [3]float64
	if w.task == synthetic.SingleLabel {
		for i := 0; i < logits.Rows; i++ {
			if !mask[i] {
				continue
			}
			counts[1]++
			if logits.ArgMaxRow(i) == w.ld.labels[i] {
				counts[0]++
			}
		}
	} else {
		for i := 0; i < logits.Rows; i++ {
			if !mask[i] {
				continue
			}
			lrow := logits.Row(i)
			trow := w.ld.y.Row(i)
			for j, z := range lrow {
				pred, actual := z > 0, trow[j] > 0.5
				switch {
				case pred && actual:
					counts[0]++ // tp
				case pred && !actual:
					counts[1]++ // fp
				case !pred && actual:
					counts[2]++ // fn
				}
			}
		}
	}
	buf := make([]byte, 24)
	for i, c := range counts {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(c))
	}
	all := w.dev.RawAllGather(buf)
	var tot [3]float64
	for _, b := range all {
		for i := range tot {
			tot[i] += math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	if w.task == synthetic.SingleLabel {
		if tot[1] == 0 {
			return 0, nil
		}
		return tot[0] / tot[1], nil
	}
	denom := 2*tot[0] + tot[1] + tot[2]
	if denom == 0 {
		return 0, nil
	}
	return 2 * tot[0] / denom, nil
}
