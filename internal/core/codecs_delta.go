package core

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// ---- delta: residual encoding against the previous epoch's payload ----
//
// Messages evolve smoothly between epochs, so the residual against the
// previous payload spans a much smaller range than the payload itself and
// quantizes tightly. Every DeltaKeyframeEvery epochs (including epoch 0)
// a full-precision keyframe resets the reference; in between, the codec
// ships the residual quantized at 8 bits. Sender and receiver both
// advance their reference to the *reconstruction* (reference + decoded
// residual), so the two stay bit-identical without extra traffic.
//
// Wire format per destination: a 1-byte tag ('K' keyframe / 'D' delta)
// followed by raw little-endian float32 rows (keyframe) or the
// quant.QuantizeRows stream at 8 bits (delta). Keyframe epochs are a
// pure function of the epoch number, so both ends agree on the expected
// tag and a mismatch is a decode error.

// deltaBits is the fixed width residual payloads are quantized at.
const deltaBits = quant.B8

const (
	deltaTagKeyframe = 'K'
	deltaTagDelta    = 'D'
)

// deltaKeyframe reports whether epoch ships keyframes under cfg.
func deltaKeyframe(cfg *Config, epoch int) bool {
	return epoch%cfg.DeltaKeyframeEvery == 0
}

// encodeDelta serializes rows idx of x against *prev, advancing *prev to
// the receiver-visible reconstruction. On keyframe epochs the raw rows
// are shipped and become the new reference. a may be nil (plain
// allocation); the returned payload comes from a and passes to the
// transport.
func encodeDelta(a *Arena, x *tensor.Matrix, idx []int32, prev **tensor.Matrix, key bool, rng *tensor.RNG) ([]byte, error) {
	if key {
		// Reuse the retired reference in place when the shape matches
		// (it is fully overwritten); it was never pooled, so no one else
		// can hold it.
		cur := *prev
		if cur == nil || cur.Rows != len(idx) || cur.Cols != x.Cols {
			cur = tensor.New(len(idx), x.Cols)
		}
		gatherRowsInto(cur, x, idx)
		*prev = cur
		out := append(a.GetBuf(1+4*len(cur.Data)), deltaTagKeyframe)
		return appendAllRows(out, cur), nil
	}
	d := a.GetMat(len(idx), x.Cols)
	gatherRowsInto(d, x, idx)
	if *prev == nil || !(*prev).SameShape(d) {
		return nil, fmt.Errorf("core: delta codec has no keyframe reference for a residual epoch")
	}
	d.SubInPlace(*prev)
	out := append(a.GetBuf(1+quant.WireSize(d.Rows, d.Cols, deltaBits)), deltaTagDelta)
	out = quant.AppendQuantizedRows(out, d, nil, deltaBits, rng)
	recon := a.GetMat(d.Rows, d.Cols)
	if err := quant.DequantizeRows(out[1:], recon, nil, recon.Rows, deltaBits); err != nil {
		return nil, err
	}
	(*prev).AddInPlace(recon)
	a.PutMat(recon)
	a.PutMat(d)
	return out, nil
}

// decodeDelta decodes one encodeDelta payload carrying rows×dim values,
// advancing *prev to the reconstruction and returning it. It validates
// the tag (against the epoch-derived expectation), the stream length and
// the reference state, so corrupted wire bytes error instead of
// panicking.
func decodeDelta(a *Arena, buf []byte, rows, dim int, prev **tensor.Matrix, key bool) (*tensor.Matrix, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("core: delta stream is empty (missing tag byte)")
	}
	tag, body := buf[0], buf[1:]
	switch tag {
	case deltaTagKeyframe:
		if !key {
			return nil, fmt.Errorf("core: delta keyframe payload on a residual epoch")
		}
		// Reuse the retired reference when shapes match: bytesToAllRows
		// validates the length before writing and overwrites every element.
		m := *prev
		if m == nil || m.Rows != rows || m.Cols != dim {
			m = tensor.New(rows, dim)
		}
		if err := bytesToAllRows(body, m); err != nil {
			return nil, err
		}
		*prev = m
		return m, nil
	case deltaTagDelta:
		if key {
			return nil, fmt.Errorf("core: delta residual payload on a keyframe epoch")
		}
		if *prev == nil || (*prev).Rows != rows || (*prev).Cols != dim {
			return nil, fmt.Errorf("core: delta residual without a matching keyframe reference")
		}
		d := a.GetMat(rows, dim)
		if err := quant.DequantizeRows(body, d, nil, rows, deltaBits); err != nil {
			return nil, err
		}
		(*prev).AddInPlace(d)
		a.PutMat(d)
		return *prev, nil
	}
	return nil, fmt.Errorf("core: unknown delta tag 0x%02x", tag)
}

type deltaCodec struct {
	// prevFwdSend[l][q] is the sender-side reconstruction of the rows
	// last shipped to q at layer l; prevFwdRecv[l][p] mirrors it on the
	// receiving end. prevBwd* covers the backward direction (sends in
	// wire order RecvFrom[p], receives in wire order SendTo[q]).
	prevFwdSend, prevFwdRecv [][]*tensor.Matrix
	prevBwdSend, prevBwdRecv [][]*tensor.Matrix
}

func newDeltaCodec(env *CodecEnv) (MessageCodec, error) {
	layers, parts := env.Cfg.Layers, env.Graph().Parts
	grid := func() [][]*tensor.Matrix {
		g := make([][]*tensor.Matrix, layers)
		for l := range g {
			g[l] = make([]*tensor.Matrix, parts)
		}
		return g
	}
	return &deltaCodec{
		prevFwdSend: grid(), prevFwdRecv: grid(),
		prevBwdSend: grid(), prevBwdRecv: grid(),
	}, nil
}

func (c *deltaCodec) Name() string { return CodecDelta }

// Stateful: the keyframe references are cross-epoch state on both the
// sending and receiving side.
func (c *deltaCodec) Stateful() bool { return true }

func (c *deltaCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	lg, dev := env.Graph, env.Dev
	n := dev.Size()
	key := deltaKeyframe(env.Cfg, epoch)
	if !key {
		// Residual epochs quantize (and self-dequantize, to advance the
		// sender's reference) every element shipped.
		dev.Clock().Advance(timing.Quant, dev.Model().QuantTime(2*wireElems(lg.SendTo, h.Cols)))
	}
	a := env.Scratch
	payloads := a.Payloads(n)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		buf, err := encodeDelta(a, h, lg.SendTo[q], &c.prevFwdSend[l][q], key, dev.Rand())
		if err != nil {
			return err
		}
		payloads[q] = buf
	}
	recv := dev.RingAll2All(payloads)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		rec, err := decodeDelta(a, recv[p], len(lg.RecvFrom[p]), h.Cols, &c.prevFwdRecv[l][p], key)
		if err != nil {
			return fmt.Errorf("delta: rank %d from %d: %w", dev.Rank(), p, err)
		}
		for j, slot := range lg.RecvFrom[p] {
			copy(xFull.Row(lg.NumLocal+int(slot)), rec.Row(j))
		}
	}
	a.ReleaseAll(recv)
	if !key {
		dev.Clock().Advance(timing.Quant, dev.Model().QuantTime(wireElems(lg.RecvFrom, xFull.Cols)))
	}
	dev.Clock().Advance(timing.Comp, env.ForwardCosts(l).Total)
	return nil
}

func (c *deltaCodec) Backward(env *ExchangeEnv, epoch, l int, dxFull, dxLocal *tensor.Matrix) error {
	lg, dev := env.Graph, env.Dev
	n := dev.Size()
	key := deltaKeyframe(env.Cfg, epoch)
	dev.Clock().Advance(timing.Comp, env.BackwardCosts(l).Total)
	if !key {
		dev.Clock().Advance(timing.Quant, dev.Model().QuantTime(2*wireElems(lg.RecvFrom, dxFull.Cols)))
	}
	a := env.Scratch
	payloads := a.Payloads(n)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		buf, err := encodeDelta(a, dxFull, env.HaloIdx(p), &c.prevBwdSend[l][p], key, dev.Rand())
		if err != nil {
			return err
		}
		payloads[p] = buf
	}
	recv := dev.RingAll2All(payloads)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		rec, err := decodeDelta(a, recv[q], len(lg.SendTo[q]), dxLocal.Cols, &c.prevBwdRecv[l][q], key)
		if err != nil {
			return fmt.Errorf("delta: rank %d grads from %d: %w", dev.Rank(), q, err)
		}
		scatterAddRows32(dxLocal, lg.SendTo[q], rec)
	}
	a.ReleaseAll(recv)
	if !key {
		dev.Clock().Advance(timing.Quant, dev.Model().QuantTime(wireElems(lg.SendTo, dxLocal.Cols)))
	}
	return nil
}

func (c *deltaCodec) EpochEnd(*ExchangeEnv, int) error { return nil }

// ForwardWireSizes: epoch 0 is always a keyframe — one tag byte plus the
// raw fp32 rows per destination.
func (c *deltaCodec) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	out := make([]int, lg.Parts)
	for q := range out {
		if n := len(lg.SendTo[q]); n > 0 {
			out[q] = 1 + 4*n*dim
		}
	}
	return out
}
