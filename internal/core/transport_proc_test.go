package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/synthetic"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ringPayload builds the deterministic payload src ships to dst in round
// r — distinct content and length per edge so a misrouted or truncated
// frame cannot pass the receive-side checks.
func ringPayload(src, dst, r int) []byte {
	p := []byte(fmt.Sprintf("r%d:%d->%d:", r, src, dst))
	return append(p, bytes.Repeat([]byte{byte(16*src + dst)}, (src+1)*(dst+2)+r)...)
}

// TestProcWireByteAccounting runs a ring-only workload on the
// proc-sharded backend and reconciles its byte ledgers against the real
// framed traffic: every payload byte must have crossed a socket inside a
// frame, and the parent's counters, the workers' counters, and the
// backend's BytesMoved ledger must all agree exactly.
func TestProcWireByteAccounting(t *testing.T) {
	const n, workers, rounds = 4, 2, 3
	rt := newProcRuntime(TransportSpec{Parts: n, Workers: workers}).(*procRuntime)

	err := rt.Run(1, func(tr Transport) error {
		for r := 0; r < rounds; r++ {
			payloads := make([][]byte, n)
			for dst := 0; dst < n; dst++ {
				if dst != tr.Rank() {
					payloads[dst] = ringPayload(tr.Rank(), dst, r)
				}
			}
			got := tr.RingAll2All(payloads)
			for src := 0; src < n; src++ {
				if src == tr.Rank() {
					continue
				}
				if want := ringPayload(src, tr.Rank(), r); !bytes.Equal(got[src], want) {
					return fmt.Errorf("rank %d round %d: payload from %d corrupted in flight", tr.Rank(), r, src)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Expected traffic, recomputed independently of the backend.
	var frames, payloadBytes, sentBytes, interBytes uint64
	for r := 0; r < rounds; r++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				l := len(ringPayload(src, dst, r))
				frames++
				payloadBytes += uint64(l)
				sentBytes += uint64(wire.FrameSize(l))
				if src%workers != dst%workers {
					interBytes += uint64(wire.FrameSize(l))
				}
			}
		}
	}

	stats := rt.WireStats()
	if stats.SentFrames != frames || stats.DeliveredFrames != frames {
		t.Errorf("frames: sent %d delivered %d, want %d each", stats.SentFrames, stats.DeliveredFrames, frames)
	}
	if stats.SentBytes != sentBytes {
		t.Errorf("SentBytes = %d, want %d (payload %d + %d frames × %d overhead)",
			stats.SentBytes, sentBytes, payloadBytes, frames, wire.FrameOverhead)
	}
	if stats.DeliveredBytes != stats.SentBytes {
		t.Errorf("DeliveredBytes = %d, want SentBytes = %d", stats.DeliveredBytes, stats.SentBytes)
	}
	if stats.InterWorkerBytes != interBytes {
		t.Errorf("InterWorkerBytes = %d, want %d", stats.InterWorkerBytes, interBytes)
	}
	checkWireConservation(t, stats, workers)

	// The backend's payload ledger must equal the frames' payload bytes:
	// framed traffic minus framing overhead, nothing moved in memory only.
	var moved uint64
	for _, row := range rt.BytesMoved() {
		for _, v := range row {
			moved += uint64(v)
		}
	}
	if moved != payloadBytes {
		t.Errorf("BytesMoved total = %d, want %d payload bytes", moved, payloadBytes)
	}
	if stats.SentBytes != moved+frames*wire.FrameOverhead {
		t.Errorf("framed bytes %d != payload ledger %d + framing %d", stats.SentBytes, moved, frames*wire.FrameOverhead)
	}
}

// checkWireConservation asserts the cross-process conservation laws that
// hold for any gracefully-completed run: every sent frame routed exactly
// once, worker reads = parent sends + inter-worker receives, worker
// writes = parent deliveries + inter-worker sends.
func checkWireConservation(t *testing.T, stats wire.PoolStats, workers int) {
	t.Helper()
	if len(stats.Workers) != workers {
		t.Fatalf("got %d worker stats reports, want %d — workers not interviewed at shutdown", len(stats.Workers), workers)
	}
	var routed, read, written uint64
	for _, ws := range stats.Workers {
		routed += ws.FramesRouted
		read += ws.BytesRead
		written += ws.BytesWritten
	}
	if routed != stats.SentFrames {
		t.Errorf("sum FramesRouted = %d, want SentFrames = %d", routed, stats.SentFrames)
	}
	if read != stats.SentBytes+stats.InterWorkerBytes {
		t.Errorf("sum BytesRead = %d, want SentBytes+InterWorkerBytes = %d", read, stats.SentBytes+stats.InterWorkerBytes)
	}
	if written != stats.DeliveredBytes+stats.InterWorkerBytes {
		t.Errorf("sum BytesWritten = %d, want DeliveredBytes+InterWorkerBytes = %d", written, stats.DeliveredBytes+stats.InterWorkerBytes)
	}
}

// TestProcWireStatsInvariants drives every collective in the Transport
// contract through the worker fleet and checks the conservation laws on
// the aggregate — no op may move a payload outside the framed wire path
// or leave a frame undelivered.
func TestProcWireStatsInvariants(t *testing.T) {
	const n, workers = 5, 3
	rt := newProcRuntime(TransportSpec{Parts: n, Workers: workers}).(*procRuntime)

	err := rt.Run(2, func(tr Transport) error {
		rank := tr.Rank()
		tr.Barrier()
		payloads := make([][]byte, n)
		for dst := 0; dst < n; dst++ {
			if dst != rank {
				payloads[dst] = ringPayload(rank, dst, 0)
			}
		}
		tr.RingAll2All(payloads)

		m := tensor.New(2, 3)
		m.FillUniform(tr.Rand(), -1, 1)
		tr.AllReduceSum([]*tensor.Matrix{m})

		tr.GatherBytes(1, []byte(fmt.Sprintf("gather from %d", rank)))
		var scatter [][]byte
		if rank == 2 {
			scatter = make([][]byte, n)
			for i := range scatter {
				scatter[i] = ringPayload(2, i, 7)
			}
		}
		tr.ScatterBytes(2, scatter)
		tr.BroadcastBytes(0, []byte("broadcast payload"))

		pending := tr.StartBroadcast(n-1, []byte("split-phase payload"))
		tr.Clock().Advance(0, 0) // any compute would overlap here
		pending.Wait()

		tr.RawAll2All(payloads)
		tr.RawAllGather([]byte{byte(rank)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	stats := rt.WireStats()
	if stats.SentFrames == 0 {
		t.Fatal("no frames crossed the wire — collectives fell back to in-memory delivery")
	}
	if stats.DeliveredFrames != stats.SentFrames {
		t.Errorf("delivered %d of %d sent frames", stats.DeliveredFrames, stats.SentFrames)
	}
	if stats.DeliveredBytes != stats.SentBytes {
		t.Errorf("DeliveredBytes = %d, want SentBytes = %d", stats.DeliveredBytes, stats.SentBytes)
	}
	checkWireConservation(t, stats, workers)
}

// TestProcTrainingSerializesPayloads trains AdaQP on the proc-sharded
// backend with the runtime captured through the factory seam, then checks
// that the run's collective traffic genuinely crossed the worker fleet as
// framed bytes and that the loss curve is bit-identical to the in-process
// reference.
func TestProcTrainingSerializesPayloads(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	cfg := tinyConfig(AdaQP)
	cfg.Epochs = 6
	cfg.EvalEvery = 3

	ref, err := Train(ds, 3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	var captured *procRuntime
	procCfg := cfg
	procCfg.transportFactory = func(spec TransportSpec) Runtime {
		spec.Workers = 2
		captured = newProcRuntime(spec).(*procRuntime)
		return captured
	}
	got, err := Train(ds, 3, procCfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Epochs) != len(ref.Epochs) {
		t.Fatalf("epoch count %d vs %d", len(got.Epochs), len(ref.Epochs))
	}
	for i := range ref.Epochs {
		if got.Epochs[i].Loss != ref.Epochs[i].Loss {
			t.Errorf("epoch %d loss %.9f != in-process reference %.9f (must be bit-identical)",
				i, got.Epochs[i].Loss, ref.Epochs[i].Loss)
		}
	}
	if got.FinalTest != ref.FinalTest {
		t.Errorf("final test accuracy %.6f != reference %.6f", got.FinalTest, ref.FinalTest)
	}

	stats := captured.WireStats()
	if stats.SentFrames == 0 || stats.SentBytes == 0 {
		t.Fatal("training moved no framed bytes — codec payloads were not serialized over the wire")
	}
	if stats.DeliveredBytes != stats.SentBytes {
		t.Errorf("DeliveredBytes = %d, want SentBytes = %d", stats.DeliveredBytes, stats.SentBytes)
	}
	checkWireConservation(t, stats, 2)

	// Every ledgered payload byte is a non-self delivery, so it must have
	// crossed the wire inside a frame: the framed traffic minus framing
	// overhead bounds the BytesMoved ledger from above (the surplus is
	// un-ledgered traffic — allreduce blobs, scatter payloads, raw-op
	// metrics sideband).
	var moved uint64
	for _, row := range captured.BytesMoved() {
		for _, v := range row {
			moved += uint64(v)
		}
	}
	if moved == 0 {
		t.Fatal("BytesMoved ledger empty after training")
	}
	wirePayload := stats.SentBytes - stats.SentFrames*wire.FrameOverhead
	if wirePayload < moved {
		t.Errorf("only %d payload bytes crossed the wire but the ledger claims %d moved — some payloads skipped serialization",
			wirePayload, moved)
	}
	t.Logf("training moved %d payload bytes in %d frames (%d framed bytes, %d inter-worker)",
		moved, stats.SentFrames, stats.SentBytes, stats.InterWorkerBytes)
}

// TestProcAbortReapsWorkers kills a run from inside a device body and
// checks the abort path: the error surfaces, the worker fleet and socket
// directory are fully reaped, and the same runtime can immediately start
// a fresh, fully-functional fleet.
func TestProcAbortReapsWorkers(t *testing.T) {
	base := t.TempDir()
	const n, workers = 3, 2
	rt := newProcRuntime(TransportSpec{Parts: n, Workers: workers, SocketDir: base}).(*procRuntime)

	boom := errors.New("device body failed")
	err := rt.Run(3, func(tr Transport) error {
		tr.Barrier()
		if tr.Rank() == 0 {
			return boom
		}
		// Peers head into another collective; the abort must release them
		// rather than deadlock.
		tr.Barrier()
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the device body's error", err)
	}
	if rt.s.pool != nil || rt.s.dir != "" {
		t.Fatal("aborted run left the worker pool or socket dir attached")
	}
	assertNoRunDirs(t, base)
	// A body abort (the cancel path) still shuts the fleet down
	// gracefully: every worker is interviewed for its stats report before
	// being reaped. Only a broken wire skips the interview.
	if got := rt.WireStats(); len(got.Workers) != workers {
		t.Fatalf("aborted run collected %d worker stats reports, want %d — workers were not gracefully reaped", len(got.Workers), workers)
	}

	// The next Run on the same runtime must bring up a fresh fleet.
	err = rt.Run(4, func(tr Transport) error {
		got := tr.BroadcastBytes(0, []byte("recovered"))
		if string(got) != "recovered" {
			return fmt.Errorf("rank %d: bad broadcast payload %q", tr.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run after abort: %v", err)
	}
	stats := rt.WireStats()
	if stats.SentFrames == 0 {
		t.Fatal("recovery run moved no frames")
	}
	checkWireConservation(t, stats, workers)
	assertNoRunDirs(t, base)
}

// TestProcSocketDirKnob pins the SocketDir contract: sockets live in a
// fresh run-* directory under the configured base while the run executes,
// and the directory is removed when the run ends.
func TestProcSocketDirKnob(t *testing.T) {
	base := t.TempDir()
	const n, workers = 2, 2
	rt := newProcRuntime(TransportSpec{Parts: n, Workers: workers, SocketDir: base}).(*procRuntime)

	err := rt.Run(5, func(tr Transport) error {
		tr.Barrier()
		if tr.Rank() == 0 {
			runs, err := filepath.Glob(filepath.Join(base, "run-*"))
			if err != nil || len(runs) != 1 {
				return fmt.Errorf("want exactly one run-* dir under %s during the run, got %v (%v)", base, runs, err)
			}
			for i := 0; i < workers; i++ {
				sock := wire.SocketPath(runs[0], i)
				if _, err := os.Stat(sock); err != nil {
					return fmt.Errorf("worker socket missing mid-run: %v", err)
				}
				if !strings.HasPrefix(sock, base) {
					return fmt.Errorf("socket %s escaped the configured base %s", sock, base)
				}
			}
		}
		tr.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoRunDirs(t, base)
}

func assertNoRunDirs(t *testing.T, base string) {
	t.Helper()
	if runs, _ := filepath.Glob(filepath.Join(base, "run-*")); len(runs) != 0 {
		t.Fatalf("socket run dirs leaked after the run ended: %v", runs)
	}
}
