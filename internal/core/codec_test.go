package core

import (
	"strings"
	"testing"
)

func TestCodecForMethodAllResolvable(t *testing.T) {
	// Every training method must map to a registered codec.
	for _, m := range Methods() {
		name, err := CodecForMethod(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if _, err := LookupCodec(name); err != nil {
			t.Fatalf("%v → %q: %v", m, name, err)
		}
	}
	if _, err := CodecForMethod(Method(99)); err == nil {
		t.Fatal("unknown method must not map to a codec")
	}
}

func TestCodecRegistryContents(t *testing.T) {
	names := CodecNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{CodecFP32, CodecUniform, CodecAdaptive, CodecSancus, CodecRandom, CodecPipeGCN} {
		if !have[want] {
			t.Fatalf("codec %q not registered (have %v)", want, names)
		}
	}
}

func TestLookupCodecUnknown(t *testing.T) {
	_, err := LookupCodec("no-such-codec")
	if err == nil {
		t.Fatal("unknown codec must error")
	}
	if !strings.Contains(err.Error(), "no-such-codec") || !strings.Contains(err.Error(), CodecFP32) {
		t.Fatalf("error should name the codec and list known ones: %v", err)
	}
}

func TestTransportRegistry(t *testing.T) {
	if _, err := LookupTransport(TransportInprocess); err != nil {
		t.Fatalf("default transport missing: %v", err)
	}
	if _, err := LookupTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport must error")
	}
	found := false
	for _, n := range TransportNames() {
		if n == TransportInprocess {
			found = true
		}
	}
	if !found {
		t.Fatalf("TransportNames missing %q: %v", TransportInprocess, TransportNames())
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMethod(%q) = %v, want %v", m.String(), got, m)
		}
	}
	// CLI short forms and case-insensitivity.
	for s, want := range map[string]Method{
		"uniform": AdaQPUniform, "random": AdaQPRandom,
		"VANILLA": Vanilla, "AdAqP": AdaQP, "Sancus": SANCUS, "PipeGCN": PipeGCN,
	} {
		got, err := ParseMethod(s)
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseMethod(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseMethod("quantum"); err == nil {
		t.Fatal("unknown method string must error")
	}
}

func TestParseModelKindRoundTrip(t *testing.T) {
	for _, k := range []ModelKind{GCN, GraphSAGE} {
		got, err := ParseModelKind(k.String())
		if err != nil {
			t.Fatalf("ParseModelKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseModelKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if got, err := ParseModelKind("sage"); err != nil || got != GraphSAGE {
		t.Fatalf("ParseModelKind(sage) = %v, %v", got, err)
	}
	if _, err := ParseModelKind("transformer"); err == nil {
		t.Fatal("unknown model string must error")
	}
}

func TestConfigValidateCodecAndTransport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Codec = "no-such-codec"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown codec must fail validation")
	}
	cfg = DefaultConfig()
	cfg.Transport = "no-such-transport"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown transport must fail validation")
	}
	cfg = DefaultConfig()
	cfg.Codec = CodecSancus
	cfg.Transport = TransportInprocess
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid codec/transport rejected: %v", err)
	}
}
