package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/synthetic"
	"repro/internal/tensor"
)

func TestCodecForMethodAllResolvable(t *testing.T) {
	// Every training method must map to a registered codec.
	for _, m := range Methods() {
		name, err := CodecForMethod(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if _, err := LookupCodec(name); err != nil {
			t.Fatalf("%v → %q: %v", m, name, err)
		}
	}
	if _, err := CodecForMethod(Method(99)); err == nil {
		t.Fatal("unknown method must not map to a codec")
	}
}

func TestCodecRegistryContents(t *testing.T) {
	names := CodecNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{CodecFP32, CodecUniform, CodecAdaptive, CodecSancus, CodecRandom, CodecPipeGCN} {
		if !have[want] {
			t.Fatalf("codec %q not registered (have %v)", want, names)
		}
	}
}

func TestLookupCodecUnknown(t *testing.T) {
	_, err := LookupCodec("no-such-codec")
	if err == nil {
		t.Fatal("unknown codec must error")
	}
	if !strings.Contains(err.Error(), "no-such-codec") || !strings.Contains(err.Error(), CodecFP32) {
		t.Fatalf("error should name the codec and list known ones: %v", err)
	}
}

func TestTransportRegistry(t *testing.T) {
	if _, err := LookupTransport(TransportInprocess); err != nil {
		t.Fatalf("default transport missing: %v", err)
	}
	if _, err := LookupTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport must error")
	}
	found := false
	for _, n := range TransportNames() {
		if n == TransportInprocess {
			found = true
		}
	}
	if !found {
		t.Fatalf("TransportNames missing %q: %v", TransportInprocess, TransportNames())
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMethod(%q) = %v, want %v", m.String(), got, m)
		}
	}
	// CLI short forms and case-insensitivity.
	for s, want := range map[string]Method{
		"uniform": AdaQPUniform, "random": AdaQPRandom,
		"VANILLA": Vanilla, "AdAqP": AdaQP, "Sancus": SANCUS, "PipeGCN": PipeGCN,
	} {
		got, err := ParseMethod(s)
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseMethod(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseMethod("quantum"); err == nil {
		t.Fatal("unknown method string must error")
	}
}

func TestParseModelKindRoundTrip(t *testing.T) {
	for _, k := range []ModelKind{GCN, GraphSAGE} {
		got, err := ParseModelKind(k.String())
		if err != nil {
			t.Fatalf("ParseModelKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseModelKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if got, err := ParseModelKind("sage"); err != nil || got != GraphSAGE {
		t.Fatalf("ParseModelKind(sage) = %v, %v", got, err)
	}
	if _, err := ParseModelKind("transformer"); err == nil {
		t.Fatal("unknown model string must error")
	}
}

// TestCodecForwardRoundTripTable drives every registered codec through a
// single epoch-0 forward exchange at each boundary bit-width and over an
// all-zero tensor, asserting the decoded halo rows stay within the
// codec's declared error bound (exactly, for codecs declaring no loss).
// ef-quant is the one codec that rejects the 32-bit passthrough — its
// error-feedback residual needs a packed stream — so that combination
// expects a construction error instead.
func TestCodecForwardRoundTripTable(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 3, GCN, partition.Block)
	zero := func(_, _, _ int) float32 { return 0 }
	cases := []struct {
		label string
		fill  func(rank, row, col int) float32
	}{
		{"linear", probeValue}, // the conformance suite's probe pattern
		{"all-zero", zero},
	}
	for _, name := range CodecNames() {
		f, err := LookupCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		// Only uniform and ef-quant consume UniformBits; for the rest one
		// width covers the exchange, so skip the repeated runs.
		widths := []quant.BitWidth{quant.B2, quant.B4, quant.B8, quant.B32}
		if name != CodecUniform && name != CodecEFQuant {
			widths = widths[:1]
		}
		for _, bits := range widths {
			for _, tc := range cases {
				t.Run(fmt.Sprintf("%s/b%d/%s", name, bits, tc.label), func(t *testing.T) {
					cfg := codecConformConfig()
					cfg.UniformBits = bits
					if err := cfg.validate(); err != nil {
						t.Fatal(err)
					}
					if name == CodecEFQuant && bits == quant.B32 {
						if _, err := f(&CodecEnv{Cfg: &cfg, Locals: dep.Locals, Rank: 0, InDim: 8, Shared: &RunShared{}}); err == nil {
							t.Fatal("ef-quant must reject the 32-bit passthrough")
						}
						return
					}
					col := &vioCollector{}
					codecExchangeCheck(f, dep, cfg, 8, tc.fill, col)
					for _, v := range col.v {
						t.Errorf("%v", v)
					}
				})
			}
		}
	}
}

// TestTopKWireRoundTrip pins the topk wire format directly: the decoded
// row keeps exactly the k largest-magnitude entries and zeroes the rest,
// and degenerate streams (zero rows, all-zero rows, full density) round-
// trip cleanly.
func TestTopKWireRoundTrip(t *testing.T) {
	x := tensor.New(3, 6)
	copy(x.Row(0), []float32{0.1, -5, 0.2, 3, -0.3, 0})
	copy(x.Row(1), []float32{1, 1, 1, 1, 1, 1}) // ties break to low index
	// Row 2 stays all-zero.
	for _, k := range []int{1, 2, 6} {
		buf := encodeTopK(x, []int32{0, 1, 2}, k)
		if len(buf) != topkWireSize(3, k) {
			t.Fatalf("k=%d: stream is %d bytes, want %d", k, len(buf), topkWireSize(3, k))
		}
		dst := tensor.New(3, 6)
		dst.FillUniform(tensor.NewRNG(1), -1, 1) // must be overwritten
		if err := decodeTopK(buf, dst, []int32{0, 1, 2}, 0, false); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for r := 0; r < 3; r++ {
			kept := 0
			for c, v := range dst.Row(r) {
				if v != 0 {
					kept++
					if v != x.Row(r)[c] {
						t.Errorf("k=%d row %d col %d: decoded %v, want %v", k, r, c, v, x.Row(r)[c])
					}
				}
			}
			if kept > k {
				t.Errorf("k=%d row %d: %d non-zero entries decoded", k, r, kept)
			}
		}
	}
	// k=2 on row 0 must keep the two largest magnitudes (-5 and 3).
	buf := encodeTopK(x, []int32{0}, 2)
	dst := tensor.New(1, 6)
	if err := decodeTopK(buf, dst, []int32{0}, 0, false); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, -5, 0, 3, 0, 0}
	for c, v := range dst.Row(0) {
		if v != want[c] {
			t.Errorf("col %d: decoded %v, want %v", c, v, want[c])
		}
	}
	// Zero-length row set: header-only stream, no-op decode.
	empty := encodeTopK(x, nil, 2)
	if len(empty) != 4 {
		t.Fatalf("empty stream is %d bytes, want the 4-byte header", len(empty))
	}
	if err := decodeTopK(empty, dst, nil, 0, false); err != nil {
		t.Fatal(err)
	}
	// Corrupted streams must error, not panic.
	for _, bad := range [][]byte{nil, {1}, {255, 255, 255, 255}, buf[:len(buf)-1]} {
		if err := decodeTopK(bad, dst, []int32{0}, 0, false); err == nil {
			t.Errorf("corrupted stream %v decoded without error", bad)
		}
	}
}

// TestDeltaWireRoundTrip pins the delta wire format: keyframes are exact,
// residual epochs reconstruct prev + dequantized delta, and sender and
// receiver references stay bit-identical across both phases.
func TestDeltaWireRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := tensor.New(4, 5)
	x.FillUniform(rng, -1, 1)
	idx := []int32{0, 2, 3}

	var sendPrev, recvPrev *tensor.Matrix
	key, err := encodeDelta(nil, x, idx, &sendPrev, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodeDelta(nil, key, len(idx), x.Cols, &recvPrev, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range idx {
		for c, v := range rec.Row(i) {
			if v != x.Row(int(r))[c] {
				t.Fatalf("keyframe row %d col %d: decoded %v, want exact %v", r, c, v, x.Row(int(r))[c])
			}
		}
	}

	// Drift the source and ship a residual epoch.
	for i := range x.Data {
		x.Data[i] += 0.01 * float32(i%7)
	}
	delta, err := encodeDelta(nil, x, idx, &sendPrev, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = decodeDelta(nil, delta, len(idx), x.Cols, &recvPrev, false)
	if err != nil {
		t.Fatal(err)
	}
	// Sender and receiver references must agree bit for bit.
	for i := range sendPrev.Data {
		if sendPrev.Data[i] != recvPrev.Data[i] {
			t.Fatalf("element %d: sender reference %v, receiver %v", i, sendPrev.Data[i], recvPrev.Data[i])
		}
	}
	// The reconstruction is within the 8-bit bound of the true rows: the
	// residual spans < 0.07 here, so one 8-bit step is well under 0.02.
	for i, r := range idx {
		row := x.Row(int(r))
		for c, v := range rec.Row(i) {
			diff := float64(v - row[c])
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.02 {
				t.Errorf("residual row %d col %d: decoded %v, want %v within the 8-bit delta bound", r, c, v, row[c])
			}
		}
	}

	// Tag and phase mismatches must error, not panic.
	if _, err := decodeDelta(nil, delta, len(idx), x.Cols, &recvPrev, true); err == nil {
		t.Error("residual payload accepted on a keyframe epoch")
	}
	if _, err := decodeDelta(nil, key, len(idx), x.Cols, &recvPrev, false); err == nil {
		t.Error("keyframe payload accepted on a residual epoch")
	}
	var nilPrev *tensor.Matrix
	if _, err := decodeDelta(nil, delta, len(idx), x.Cols, &nilPrev, false); err == nil {
		t.Error("residual without a keyframe reference decoded without error")
	}
	if _, err := decodeDelta(nil, nil, len(idx), x.Cols, &recvPrev, false); err == nil {
		t.Error("empty stream decoded without error")
	}

	// Zero-length row sets round-trip as tag-only streams.
	var ep, rp *tensor.Matrix
	kf, err := encodeDelta(nil, x, nil, &ep, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeDelta(nil, kf, 0, x.Cols, &rp, true); err != nil {
		t.Fatal(err)
	}
}

// TestEFQuantResidualTelescopes pins error feedback's defining property:
// feeding the carried residual back into the next quantization makes the
// *accumulated* transmitted signal track the accumulated true signal to
// within a single quantization step, instead of drifting by one step per
// epoch.
func TestEFQuantResidualTelescopes(t *testing.T) {
	cfg := codecConformConfig()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 2, GCN, partition.Block)
	f, err := LookupCodec(CodecEFQuant)
	if err != nil {
		t.Fatal(err)
	}
	c, err := f(&CodecEnv{Cfg: &cfg, Locals: dep.Locals, Rank: 0, InDim: 4, Shared: &RunShared{}})
	if err != nil {
		t.Fatal(err)
	}
	ef := c.(*efQuantCodec)
	lg := dep.Locals[0]
	var dst int
	for q, rows := range lg.SendTo {
		if len(rows) > 0 {
			dst = q
			break
		}
	}
	rows := len(lg.SendTo[dst])
	x := tensor.New(lg.NumLocal, 4)
	rng := tensor.NewRNG(9)
	x.FillUniform(rng, -1, 1)
	resid := ef.fwdResid[0][dst]
	sumTrue := tensor.New(rows, 4)
	sumSent := tensor.New(rows, 4)
	for epoch := 0; epoch < 8; epoch++ {
		stream, err := ef.encodeEF(nil, x, lg.SendTo[dst], resid, rng)
		if err != nil {
			t.Fatal(err)
		}
		recon := tensor.New(rows, 4)
		if err := quant.DequantizeRows(stream, recon, nil, rows, ef.bits); err != nil {
			t.Fatal(err)
		}
		for i, r := range lg.SendTo[dst] {
			for j := 0; j < 4; j++ {
				sumTrue.Row(i)[j] += x.Row(int(r))[j]
				sumSent.Row(i)[j] += recon.Row(i)[j]
			}
		}
		// Error feedback telescopes: Σ sent = Σ true − resid, so the
		// accumulated gap is exactly the current residual — bounded by
		// one quantization step, not growing with the epoch count.
		for i := 0; i < rows; i++ {
			for j := 0; j < 4; j++ {
				gap := sumTrue.Row(i)[j] - sumSent.Row(i)[j]
				if d := gap - resid.Row(i)[j]; d > 1e-4 || d < -1e-4 {
					t.Fatalf("epoch %d row %d col %d: accumulated gap %v != residual %v", epoch, i, j, gap, resid.Row(i)[j])
				}
			}
		}
		x.FillUniform(rng, -1, 1) // fresh signal each epoch
	}
}

func TestConfigValidateCodecAndTransport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Codec = "no-such-codec"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown codec must fail validation")
	}
	cfg = DefaultConfig()
	cfg.Transport = "no-such-transport"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown transport must fail validation")
	}
	cfg = DefaultConfig()
	cfg.Codec = CodecSancus
	cfg.Transport = TransportInprocess
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid codec/transport rejected: %v", err)
	}
}
