package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/quant"
)

// Hand-rolled wire format for the assignment sideband (traceMsg up to the
// master, widthMsg back). It replaced encoding/gob: the reflection-driven
// decoder allocated thousands of objects per assignment round, dwarfing
// the training loop's entire allocation budget. The format is explicit
// little-endian length-prefixed nesting:
//
//	f64 slice:   [u32 len] len × float64
//	f64 grid:    [u32 len] len × f64 slice
//	f64 cube:    [u32 len] len × f64 grid
//	width slice: [u32 len] len × 1 byte
//	traceMsg:    [u32 rank] RecvAlpha grid · Fwd cube · Bwd cube
//	widthMsg:    FwdSend · FwdRecv · BwdSend · BwdRecv width cubes
//
// Decoders validate every length against the remaining bytes, so a
// corrupted stream errors instead of panicking or over-allocating.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendF64Slice(b []byte, xs []float64) []byte {
	b = appendU32(b, uint32(len(xs)))
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func appendF64Grid(b []byte, g [][]float64) []byte {
	b = appendU32(b, uint32(len(g)))
	for _, s := range g {
		b = appendF64Slice(b, s)
	}
	return b
}

func appendF64Cube(b []byte, c [][][]float64) []byte {
	b = appendU32(b, uint32(len(c)))
	for _, g := range c {
		b = appendF64Grid(b, g)
	}
	return b
}

func appendWidthSlice(b []byte, ws []quant.BitWidth) []byte {
	b = appendU32(b, uint32(len(ws)))
	for _, w := range ws {
		b = append(b, byte(w))
	}
	return b
}

func appendWidthCube(b []byte, c [][][]quant.BitWidth) []byte {
	b = appendU32(b, uint32(len(c)))
	for _, g := range c {
		b = appendU32(b, uint32(len(g)))
		for _, ws := range g {
			b = appendWidthSlice(b, ws)
		}
	}
	return b
}

// wireReader is a latching-error cursor over one assignment payload.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("core: assignment payload truncated at %s (offset %d of %d)", what, r.off, len(r.b))
	}
}

// length reads a u32 count, validating that count×elemSize bytes remain.
func (r *wireReader) length(elemSize int, what string) int {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	n := int(binary.LittleEndian.Uint32(r.b[r.off:]))
	r.off += 4
	if n < 0 || n*elemSize > len(r.b)-r.off {
		r.fail(what)
		return 0
	}
	return n
}

func (r *wireReader) f64Slice(what string) []float64 {
	n := r.length(8, what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}

func (r *wireReader) f64Grid(what string) [][]float64 {
	n := r.length(4, what)
	if r.err != nil {
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = r.f64Slice(what)
	}
	return out
}

func (r *wireReader) f64Cube(what string) [][][]float64 {
	n := r.length(4, what)
	if r.err != nil {
		return nil
	}
	out := make([][][]float64, n)
	for i := range out {
		out[i] = r.f64Grid(what)
	}
	return out
}

func (r *wireReader) widthSlice(what string) []quant.BitWidth {
	n := r.length(1, what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]quant.BitWidth, n)
	for i := range out {
		out[i] = quant.BitWidth(r.b[r.off])
		r.off++
	}
	return out
}

func (r *wireReader) widthCube(what string) [][][]quant.BitWidth {
	n := r.length(4, what)
	if r.err != nil {
		return nil
	}
	out := make([][][]quant.BitWidth, n)
	for i := range out {
		m := r.length(4, what)
		if r.err != nil {
			return nil
		}
		g := make([][]quant.BitWidth, m)
		for j := range g {
			g[j] = r.widthSlice(what)
		}
		out[i] = g
	}
	return out
}

func encodeTrace(m *traceMsg) []byte {
	b := appendU32(nil, uint32(m.Rank))
	b = appendF64Grid(b, m.RecvAlpha)
	b = appendF64Cube(b, m.Fwd)
	return appendF64Cube(b, m.Bwd)
}

func decodeTrace(b []byte, m *traceMsg) error {
	r := &wireReader{b: b}
	if r.off+4 > len(r.b) {
		r.fail("rank")
	} else {
		m.Rank = int(binary.LittleEndian.Uint32(r.b))
		r.off = 4
	}
	m.RecvAlpha = r.f64Grid("RecvAlpha")
	m.Fwd = r.f64Cube("Fwd")
	m.Bwd = r.f64Cube("Bwd")
	return r.err
}

func encodeWidths(m *widthMsg) []byte {
	b := appendWidthCube(nil, m.FwdSend)
	b = appendWidthCube(b, m.FwdRecv)
	b = appendWidthCube(b, m.BwdSend)
	return appendWidthCube(b, m.BwdRecv)
}

func decodeWidths(b []byte, m *widthMsg) error {
	r := &wireReader{b: b}
	m.FwdSend = r.widthCube("FwdSend")
	m.FwdRecv = r.widthCube("FwdRecv")
	m.BwdSend = r.widthCube("BwdSend")
	m.BwdRecv = r.widthCube("BwdRecv")
	return r.err
}
