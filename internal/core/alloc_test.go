package core

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// TestCodecSteadyStateAllocs pins the zero-allocation contract of the
// warmed encode/decode hot paths: with an arena whose freelists already
// hold the needed buffer and matrix classes (the state every epoch after
// the first runs in), a full encode → decode round trip must not allocate.
// The race detector instruments the allocator, so the exact assertions
// only run in normal builds; the bodies still execute under -race.
func TestCodecSteadyStateAllocs(t *testing.T) {
	const rows, dim = 12, 32
	x := tensor.New(rows, dim)
	rng := tensor.NewRNG(3)
	x.FillUniform(rng, -1, 1)
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(i)
	}
	check := func(name string, avg float64) {
		if avg != 0 && !raceEnabled {
			t.Errorf("%s allocates %.1f times per run, want 0", name, avg)
		}
	}

	t.Run("fp32-rows", func(t *testing.T) {
		a := NewArena()
		dst := tensor.New(rows, dim)
		warm := func() {
			buf := appendAllRows(a.GetBuf(4*rows*dim), x)
			if err := bytesToAllRows(buf, dst); err != nil {
				t.Fatal(err)
			}
			a.PutBuf(buf)
		}
		warm()
		check("fp32 row round trip", testing.AllocsPerRun(20, warm))
	})

	t.Run("ef-quant", func(t *testing.T) {
		a := NewArena()
		c := &efQuantCodec{bits: quant.B4}
		resid := tensor.New(rows, dim)
		dst := tensor.New(rows, dim)
		warm := func() {
			buf, err := c.encodeEF(a, x, idx, resid, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := quant.DequantizeRows(buf, dst, nil, rows, c.bits); err != nil {
				t.Fatal(err)
			}
			a.PutBuf(buf)
		}
		warm()
		check("ef-quant round trip", testing.AllocsPerRun(20, warm))
	})

	t.Run("delta-residual", func(t *testing.T) {
		a := NewArena()
		var sendPrev, recvPrev *tensor.Matrix
		// Keyframe epoch establishes both references (and allocates them —
		// that is the documented cold path).
		kf, err := encodeDelta(a, x, idx, &sendPrev, true, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeDelta(a, kf, rows, dim, &recvPrev, true); err != nil {
			t.Fatal(err)
		}
		a.PutBuf(kf)
		warm := func() {
			buf, err := encodeDelta(a, x, idx, &sendPrev, false, rng)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := decodeDelta(a, buf, rows, dim, &recvPrev, false); err != nil {
				t.Fatal(err)
			}
			a.PutBuf(buf)
		}
		warm()
		check("delta residual round trip", testing.AllocsPerRun(20, warm))
	})
}
