package core

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// FuzzCodecDecode feeds mutated wire bytes to every codec decoder in the
// package. Decoders sit on the trust boundary of any future multi-process
// transport, so they must reject corrupted streams with an error — never
// a panic or an out-of-range write. Run as a regular test it replays the
// seed corpus; CI additionally runs a short -fuzztime smoke.
func FuzzCodecDecode(f *testing.F) {
	// Seed with one valid stream per wire format so mutation starts from
	// decodable inputs.
	x := tensor.New(3, 8)
	rng := tensor.NewRNG(1)
	x.FillUniform(rng, -1, 1)
	idx := []int32{0, 1, 2}
	f.Add(encodeTopK(x, idx, 2))
	var prev *tensor.Matrix
	if kf, err := encodeDelta(nil, x, idx, &prev, true, rng); err == nil {
		f.Add(append([]byte(nil), kf...))
	}
	if d, err := encodeDelta(nil, x, idx, &prev, false, rng); err == nil {
		f.Add(append([]byte(nil), d...))
	}
	f.Add(quant.QuantizeRows(x, idx, quant.B2, rng))
	f.Add(rowsToBytes(x, idx))

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := tensor.New(4, 8)
		rows := []int32{0, 1, 2}

		// Decoders draw scratch from a previously-dirty arena (poisoned
		// buffers and NaN matrices), mirroring the steady-state training
		// loop: any read of pooled memory they did not overwrite shows up
		// as corruption under mutation.
		a := dirtyArena(8)

		// topk: overwrite and scatter-add decode paths.
		_ = decodeTopK(data, dst, rows, 1, false)
		_ = decodeTopK(data, dst, rows, 0, true)

		// delta: keyframe expectation, residual expectation with and
		// without a reference — each against pooled dirty scratch.
		var noRef *tensor.Matrix
		_, _ = decodeDelta(a, data, 3, 8, &noRef, true)
		noRef = nil
		_, _ = decodeDelta(a, data, 3, 8, &noRef, false)
		ref := tensor.New(3, 8)
		_, _ = decodeDelta(a, data, 3, 8, &ref, false)

		// Quantized streams: every packed width, plus the mixed-width
		// grouped layout the adaptive codec ships.
		for _, b := range []quant.BitWidth{quant.B2, quant.B4, quant.B8} {
			_ = quant.DequantizeRows(data, dst, rows, len(rows), b)
			_ = quant.DequantizeMixed(data, dst, rows, quant.UniformWidths(len(rows), b))
		}

		// Full-precision rows (fp32 / pipegcn / sancus payloads).
		_ = bytesToRows(data, dst, rows, 1)
		_ = addBytesToRows(data, dst, rows)
	})
}
