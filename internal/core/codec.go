package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// A MessageCodec is one scheme for moving boundary messages between
// devices during training: how halo embeddings travel forward, how
// embedding gradients travel back, and how the simulated computation /
// communication schedule interleaves with those transfers. The codecs
// shipped here cover the paper's systems — full-precision all2all (fp32),
// uniform and adaptive quantization (AdaQP), random-width sampling,
// cross-iteration pipelining (PipeGCN) and staleness-bounded broadcast
// (SANCUS) — plus the standard compression competitor family
// (error-feedback quantization, top-k sparsification, delta/keyframe
// residuals); new schemes register alongside them without touching the
// trainer's layer loop, and ConformCodec is the executable form of this
// contract.
//
// One codec instance serves one device for one training run; instances may
// hold mutable state (width tables, staleness caches). All cross-device
// traffic must flow through env.Dev so byte accounting and simulated
// timing stay correct.
type MessageCodec interface {
	// Name returns the registry name this codec was built under.
	Name() string
	// Forward fills xFull's halo rows ([NumLocal, NumLocal+NumHalo)) for
	// layer l from the peers' h rows and charges the layer's forward-stage
	// simulated time per the codec's schedule.
	Forward(env *ExchangeEnv, epoch, layer int, h, xFull *tensor.Matrix) error
	// Backward ships dxFull's halo-gradient rows back to their owners
	// (scatter-added into dxLocal) and charges the layer's backward-stage
	// time. Called only for layers with a backward exchange (layer > 0).
	Backward(env *ExchangeEnv, epoch, layer int, dxFull, dxLocal *tensor.Matrix) error
	// EpochEnd runs any end-of-epoch protocol — e.g. AdaQP's bit-width
	// re-assignment. Every device calls it after every epoch, so codecs may
	// use collectives here.
	EpochEnd(env *ExchangeEnv, epoch int) error
}

// StageCosts is the simulated compute cost of one layer stage (forward or
// backward) on one device, split into the central/marginal shares that
// drive AdaQP's overlap schedule (§2.2): central rows touch only local
// columns, so their computation can proceed while halo messages are in
// flight.
type StageCosts struct {
	Total, Central, Marginal timing.Seconds
}

// ExchangeEnv is the per-device runtime context handed to codec calls.
type ExchangeEnv struct {
	// Dev is this device's transport endpoint.
	Dev Transport
	// Graph is this device's local graph with halo wire index sets.
	Graph *partition.LocalGraph
	// Cfg is the run configuration (shared, read-only).
	Cfg *Config
	// Scratch is this device's hot-loop allocator (see Arena). May be nil,
	// in which case every Arena method degrades to plain allocation.
	Scratch *Arena

	costs []layerCosts
	halo  [][]int32 // lazily-built haloIdx cache, one list per peer
}

// HaloIdx returns the xFull row indices of the halo slots received from
// device p (wire order RecvFrom[p], shifted past the local block). The
// list is built once per peer and cached on the env.
func (e *ExchangeEnv) HaloIdx(p int) []int32 {
	if e.halo == nil {
		e.halo = make([][]int32, e.Graph.Parts)
	}
	if e.halo[p] == nil {
		idx := make([]int32, len(e.Graph.RecvFrom[p]))
		for i, s := range e.Graph.RecvFrom[p] {
			idx[i] = s + int32(e.Graph.NumLocal)
		}
		e.halo[p] = idx
	}
	return e.halo[p]
}

// ForwardCosts returns layer l's forward-stage compute costs.
func (e *ExchangeEnv) ForwardCosts(l int) StageCosts {
	c := e.costs[l]
	return StageCosts{Total: c.fwdTotal, Central: c.fwdCentral, Marginal: c.fwdMarginal}
}

// BackwardCosts returns layer l's backward-stage compute costs.
func (e *ExchangeEnv) BackwardCosts(l int) StageCosts {
	c := e.costs[l]
	return StageCosts{Total: c.bwdTotal, Central: c.bwdCentral, Marginal: c.bwdMarginal}
}

// ChargeOverlap charges the Fig. 7 schedule to the device clock:
// central-graph computation runs concurrently with marginal-graph
// communication (whose commDelta was already charged by the collective),
// then marginal computation follows.
func (e *ExchangeEnv) ChargeOverlap(central, marginal, commDelta timing.Seconds) {
	clock := e.Dev.Clock()
	if central > commDelta {
		clock.Advance(timing.Comp, central-commDelta)
	}
	clock.Advance(timing.Comp, marginal)
}

// CodecEnv is the construction-time context for one device's codec
// instance.
type CodecEnv struct {
	// Cfg is the validated run configuration.
	Cfg *Config
	// Locals holds every device's local graph (static topology metadata —
	// what a real system exchanges once at startup).
	Locals []*partition.LocalGraph
	// Rank is the device this instance will serve.
	Rank int
	// InDim is the input feature dimension (the layer-0 message width).
	InDim int
	// Shared carries per-run state built once and read by all devices.
	Shared *RunShared
}

// Graph returns the constructing device's local graph.
func (e *CodecEnv) Graph() *partition.LocalGraph { return e.Locals[e.Rank] }

// RunShared holds lazily-built per-run state shared across devices.
type RunShared struct {
	sancusOnce sync.Once
	sancus     *sancusTopology
}

// sancusTopo builds (once) and returns the global broadcast layout.
func (s *RunShared) sancusTopo(locals []*partition.LocalGraph) *sancusTopology {
	s.sancusOnce.Do(func() { s.sancus = buildSancusTopology(locals) })
	return s.sancus
}

// CodecFactory builds one device's codec instance for one training run.
type CodecFactory func(env *CodecEnv) (MessageCodec, error)

// ---- optional codec-contract interfaces, enforced by ConformCodec ----

// StatefulCodec is implemented by codecs whose instances carry mutable
// cross-epoch state (error-feedback residuals, staleness caches, solved
// width tables). The declaration is part of the codec contract: a codec
// that does NOT declare state must produce bit-identical training results
// when a fresh instance replaces it at any epoch boundary — which is what
// lets the sharded-async backend's run-ahead hold per-device instances
// for the whole run without re-synchronizing them. ConformCodec verifies
// the discipline on both transport backends.
type StatefulCodec interface {
	MessageCodec
	// Stateful reports whether instances carry cross-epoch mutable state.
	Stateful() bool
}

// CodecCheckpointer is implemented by stateful codecs whose cross-epoch
// state can be snapshotted at an epoch boundary and restored, enabling the
// trainer's crash/restart recovery under a fault plan: every device
// checkpoints before the doomed epoch and rolls back to replay it bit for
// bit. Stateless codecs need no checkpoint; a stateful codec without this
// interface is rejected when the fault plan schedules a crash.
type CodecCheckpointer interface {
	MessageCodec
	// CheckpointState deep-copies this instance's cross-epoch state.
	CheckpointState() any
	// RestoreCheckpoint restores state captured by CheckpointState on
	// this same instance.
	RestoreCheckpoint(state any)
}

// LossyCodec is implemented by codecs whose decoded epoch-0 forward
// messages differ from the sent rows. Codecs that do not implement it
// must decode epoch-0 forward messages exactly.
type LossyCodec interface {
	MessageCodec
	// ForwardErrorBound returns the worst-case per-element absolute error
	// of one decoded epoch-0 forward row whose values span [mn, mx] over
	// dim columns.
	ForwardErrorBound(mn, mx float32, dim int) float64
}

// WireAccountant reports the exact bytes a codec puts on the wire, so
// the transport's byte ledger (which drives All2AllRoundTime and the
// paper's wire-byte measurements) can be cross-checked against the wire
// format. Every codec must implement it; ConformCodec compares the
// declared sizes against the bytes the transport actually accounted.
type WireAccountant interface {
	MessageCodec
	// ForwardWireSizes returns the per-destination payload bytes of this
	// device's epoch-0, layer-0 forward exchange at message dimension dim.
	ForwardWireSizes(lg *partition.LocalGraph, dim int) []int
}

// Registry names of the built-in codecs.
const (
	CodecFP32     = "fp32"     // full-precision ring all2all (Vanilla)
	CodecUniform  = "uniform"  // uniform-width quantization + overlap
	CodecRandom   = "random"   // random-width sampling ablation
	CodecAdaptive = "adaptive" // AdaQP: traced, adaptively assigned widths
	CodecPipeGCN  = "pipegcn"  // cross-iteration staleness pipelining
	CodecSancus   = "sancus"   // staleness-bounded sequential broadcast
	CodecEFQuant  = "ef-quant" // uniform quantization + error feedback
	CodecTopK     = "topk"     // magnitude top-k sparsification
	CodecDelta    = "delta"    // residual vs previous epoch + keyframes
)

var (
	codecMu       sync.RWMutex
	codecRegistry = map[string]CodecFactory{}
)

// RegisterCodec makes a message codec available under name. Registering a
// duplicate name panics.
func RegisterCodec(name string, f CodecFactory) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecRegistry[name]; dup {
		panic(fmt.Sprintf("core: codec %q registered twice", name))
	}
	codecRegistry[name] = f
}

// LookupCodec resolves a registered codec factory.
func LookupCodec(name string) (CodecFactory, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	f, ok := codecRegistry[name]
	if !ok {
		known := make([]string, 0, len(codecRegistry))
		for n := range codecRegistry {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown codec %q (have %v)", name, known)
	}
	return f, nil
}

// CodecNames lists the registered codecs, sorted.
func CodecNames() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	names := make([]string, 0, len(codecRegistry))
	for n := range codecRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CodecForMethod returns the codec a training method uses by default.
// Config.Codec overrides it.
func CodecForMethod(m Method) (string, error) {
	switch m {
	case Vanilla:
		return CodecFP32, nil
	case AdaQP:
		return CodecAdaptive, nil
	case AdaQPUniform:
		return CodecUniform, nil
	case AdaQPRandom:
		return CodecRandom, nil
	case PipeGCN:
		return CodecPipeGCN, nil
	case SANCUS:
		return CodecSancus, nil
	}
	return "", fmt.Errorf("core: no codec for method %v", m)
}

func init() {
	RegisterCodec(CodecFP32, newFP32Codec)
	RegisterCodec(CodecUniform, newUniformCodec)
	RegisterCodec(CodecRandom, newRandomCodec)
	RegisterCodec(CodecAdaptive, newAdaptiveCodec)
	RegisterCodec(CodecPipeGCN, newPipeGCNCodec)
	RegisterCodec(CodecSancus, newSancusCodec)
	RegisterCodec(CodecEFQuant, newEFQuantCodec)
	RegisterCodec(CodecTopK, newTopKCodec)
	RegisterCodec(CodecDelta, newDeltaCodec)
}
