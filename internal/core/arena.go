package core

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/tensor"
)

// Arena is a per-device scratch allocator for the encode/exchange/decode
// hot loop. One arena serves one ExchangeEnv (one device, one run) and is
// only ever touched from that device's goroutine, so its freelists need no
// locking; overflow and refill go through global sync.Pools shared by all
// devices, which is where buffers migrate between devices (a payload
// encoded from rank A's arena is released into rank B's after B decodes
// it — see the ownership rules below).
//
// Ownership rules (documented in README "Performance"):
//
//   - A sender encodes each payload into a buffer from its own arena
//     (GetBuf) and hands ownership to the transport; it must never touch
//     or release the buffer afterwards.
//   - RingAll2All / RawAll2All deliveries have exactly one consumer — the
//     (src,dst) pair is unique per collective — so the receiver releases
//     each delivered buffer into its own arena (ReleaseAll) once decoded.
//     Because every device both sends and receives through the same
//     rendezvous, buffer counts stay balanced and, on the sharded-async
//     backend, a buffer cannot be recycled before its lagging receiver
//     consumed it: release happens on the consuming side.
//   - Gather / Scatter / Broadcast payloads are NEVER pooled: Broadcast
//     hands the same slice to every receiver, and the sharded backend's
//     run-ahead lets stragglers re-read posted buffers, so those paths
//     keep plain allocations (they are rare — assignment epochs and
//     evaluation sidebands).
//   - Matrix scratch from GetMat is DIRTY: the caller must overwrite every
//     element it reads. The conformance suite primes arenas with poisoned
//     buffers to prove codecs honor this.
//
// All methods are nil-receiver safe and degrade to plain allocation, so
// code paths without an env (fuzzers, direct helpers) pass nil.
type Arena struct {
	free     [arenaClasses][][]byte
	mats     []*tensor.Matrix
	payloads [][]byte
}

const (
	arenaMinBits = 6  // smallest pooled class: 64 B
	arenaMaxBits = 26 // largest pooled class: 64 MiB
	arenaClasses = arenaMaxBits - arenaMinBits + 1

	// Per-class local freelist bounds; beyond these, buffers overflow to
	// the global pools (and oversize/undersize buffers are dropped).
	arenaMaxFreeBufs = 64
	arenaMaxFreeMats = 32
)

// arenaPools are the global backing stores, one per size class. They hold
// *[]byte so Put does not allocate on the hot path (boxing happens only on
// local-freelist overflow, which is rare). matPools mirror them for matrix
// scratch, classed by element capacity.
var (
	arenaPools [arenaClasses]sync.Pool
	matPools   [arenaClasses]sync.Pool
)

// putGlobalBuf boxes b into its class pool. Kept out of PutBuf so taking
// &b there does not force every released buffer's header to escape.
func putGlobalBuf(c int, b []byte) {
	arenaPools[c].Put(&b)
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// pooledArenas recycles whole arenas — freelists, matrix scratch and
// payload containers intact — between runs in the same process.
var pooledArenas sync.Pool

// NewPooledArena returns an arena recycled from a finished run (warm
// freelists) or an empty one. Pair with Recycle.
func NewPooledArena() *Arena {
	if a, _ := pooledArenas.Get().(*Arena); a != nil {
		return a
	}
	return NewArena()
}

// Recycle hands the arena — with everything it holds — to the process-wide
// pool for a later NewPooledArena. The caller must not touch it afterwards,
// and must not recycle an arena whose buffers are still in flight (at the
// end of a run every delivered payload has been released by its consumer,
// so a worker's deferred Recycle is safe).
func (a *Arena) Recycle() {
	if a != nil {
		pooledArenas.Put(a)
	}
}

// arenaClassFor returns the smallest class whose buffers hold n bytes, or
// -1 if n exceeds the largest class.
func arenaClassFor(n int) int {
	if n <= 1<<arenaMinBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - arenaMinBits
	if c >= arenaClasses {
		return -1
	}
	return c
}

// GetBuf returns a length-0 buffer with capacity ≥ n. Contents beyond the
// length are arbitrary — append-style encoders overwrite every byte they
// claim.
func (a *Arena) GetBuf(n int) []byte {
	c := arenaClassFor(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	if a != nil {
		if l := len(a.free[c]); l > 0 {
			b := a.free[c][l-1]
			a.free[c] = a.free[c][:l-1]
			return b
		}
	}
	if p, _ := arenaPools[c].Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, 1<<(uint(c)+arenaMinBits))
}

// PutBuf releases a buffer for reuse. Buffers smaller than the minimum
// class or larger than the maximum are dropped.
func (a *Arena) PutBuf(b []byte) {
	if a == nil || cap(b) < 1<<arenaMinBits {
		return
	}
	// Floor class: the buffer must satisfy any GetBuf of its class size.
	c := bits.Len(uint(cap(b))) - 1 - arenaMinBits
	if c >= arenaClasses {
		c = arenaClasses - 1
	}
	if len(a.free[c]) < arenaMaxFreeBufs {
		a.free[c] = append(a.free[c], b[:0])
		return
	}
	putGlobalBuf(c, b[:0])
}

// ReleaseAll returns every non-nil buffer in bufs to the arena and nils
// the entries. Use it on the container a RingAll2All/RawAll2All delivery
// returned, after decoding: the caller is the sole consumer of those
// buffers.
func (a *Arena) ReleaseAll(bufs [][]byte) {
	if a == nil {
		return
	}
	for i, b := range bufs {
		if b != nil {
			a.PutBuf(b)
			bufs[i] = nil
		}
	}
}

// GetMat returns a rows×cols matrix whose contents are ARBITRARY (possibly
// stale data from a previous user). The caller must overwrite every
// element it reads. Falls back to a fresh (zeroed) matrix on a pool miss.
func (a *Arena) GetMat(rows, cols int) *tensor.Matrix {
	need := rows * cols
	if a != nil {
		for i := len(a.mats) - 1; i >= 0; i-- {
			m := a.mats[i]
			if cap(m.Data) >= need {
				a.mats = append(a.mats[:i], a.mats[i+1:]...)
				m.Rows, m.Cols = rows, cols
				m.Data = m.Data[:need]
				return m
			}
		}
		if c := arenaClassFor(need); c >= 0 {
			if m, _ := matPools[c].Get().(*tensor.Matrix); m != nil {
				m.Rows, m.Cols = rows, cols
				m.Data = m.Data[:need]
				return m
			}
		}
	}
	return tensor.New(rows, cols)
}

// PutMat releases a matrix into the arena. The matrix must not be
// referenced by anyone else (never pool a matrix that was retained as
// codec state or returned to a caller).
func (a *Arena) PutMat(m *tensor.Matrix) {
	if a == nil || m == nil || cap(m.Data) == 0 {
		return
	}
	if len(a.mats) < arenaMaxFreeMats {
		a.mats = append(a.mats, m)
	}
}

// putGlobalMat releases a matrix into its element-capacity class pool
// (floor class, so a class-c hit always has capacity ≥ the class size).
func putGlobalMat(m *tensor.Matrix) {
	if cap(m.Data) < 1<<arenaMinBits {
		return
	}
	c := bits.Len(uint(cap(m.Data))) - 1 - arenaMinBits
	if c >= arenaClasses {
		return
	}
	matPools[c].Put(m)
}

// Flush migrates the arena's freelists into the global pools, so the next
// run's arenas (in the same process — repeated Engine.Run calls, the
// scheduler, benchmarks) warm up from recycled memory instead of fresh
// allocations. Call it once per device when a run finishes; the arena
// remains usable afterwards.
func (a *Arena) Flush() {
	if a == nil {
		return
	}
	for c := range a.free {
		for i, b := range a.free[c] {
			putGlobalBuf(c, b)
			a.free[c][i] = nil
		}
		a.free[c] = a.free[c][:0]
	}
	for i, m := range a.mats {
		putGlobalMat(m)
		a.mats[i] = nil
	}
	a.mats = a.mats[:0]
}

// Payloads returns a length-n all-nil container for staging per-peer
// payloads. The container itself is reused across calls on the same
// arena, which is safe because the transports do not retain it:
// the in-process backend copies the refs out under its barrier and the
// sharded backend copies the container before posting.
func (a *Arena) Payloads(n int) [][]byte {
	if a == nil {
		return make([][]byte, n)
	}
	if cap(a.payloads) < n {
		a.payloads = make([][]byte, n)
	}
	p := a.payloads[:n]
	for i := range p {
		p[i] = nil
	}
	return p
}

// dirtyArena returns an arena whose freelists are primed with poisoned
// memory: byte buffers full of 0xA5 and matrices full of NaN. The
// conformance exchange check and the decode fuzzer run codecs against it,
// so a decoder or encoder that reads pooled memory it did not overwrite
// produces loudly wrong values instead of silently correct zeroes.
func dirtyArena(dim int) *Arena {
	a := NewArena()
	var bufs [][]byte
	for n := 1 << arenaMinBits; n <= 1<<16; n <<= 2 {
		b := a.GetBuf(n)[:n]
		for i := range b {
			b[i] = 0xA5
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		a.PutBuf(b)
	}
	if dim < 1 {
		dim = 1
	}
	nan := float32(math.NaN())
	var mats []*tensor.Matrix
	for _, rows := range []int{1, 3, 8, 64} {
		m := a.GetMat(rows, dim)
		for i := range m.Data {
			m.Data[i] = nan
		}
		mats = append(mats, m)
	}
	for _, m := range mats {
		a.PutMat(m)
	}
	return a
}
