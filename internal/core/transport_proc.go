package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/cluster"
	"repro/internal/tensor"
	"repro/internal/timing"
	"repro/internal/wire"
)

// TransportProcSharded is the multi-process runtime: device bodies (and
// their simulated clocks) run in the parent process, but every collective
// payload is serialized into a length-prefixed frame and routed through a
// fleet of worker OS processes over Unix-domain sockets before its
// receiver may consume it. Rank r's outgoing frames enter the fleet at
// worker r mod W, hop to the destination rank's worker, and come back to
// the parent — so codec wire formats, not pointers, are what devices
// exchange, and byte accounting can be checked against real framed bytes.
//
// Process model: the backend re-executes its own binary (wire.MaybeWorker
// is the worker entry point, armed by environment variables) once per
// Run, and reaps the fleet before Run returns — gracefully via a
// shutdown/stats handshake when the run ends or is canceled, by kill when
// the wire itself broke. TransportSpec.Workers is the worker process
// count (default 2, clamped to the device count); TransportSpec.SocketDir
// is where the per-run socket directory is created (default the system
// temp directory).
//
// Time model: identical to the lockstep reference — every collective is a
// full rendezvous whose coordination metadata (arrival clocks, payload
// sizes) stays in the parent, so Idle/Comm charges reproduce the
// in-process cluster bit for bit even though payload delivery crosses the
// kernel. TransportSpec.Staleness is ignored: run-ahead is a scheduling
// relaxation of the in-memory backend, and this backend exists to pin the
// wire, not to relax it.
const TransportProcSharded = "proc-sharded"

func init() {
	RegisterTransport(TransportProcSharded, newProcRuntime)
}

// procAbort is the sentinel panic that unwinds device goroutines when a
// peer's body fails or the worker fleet breaks mid-run.
type procAbort struct{}

// procKey addresses one in-flight wire delivery.
type procKey struct {
	seq, src, dst int
}

// procColl is one sequence number's collective coordination record: who
// has posted, at what simulated time, and with what payload sizes (the
// charging inputs — the payload bytes themselves travel through the
// worker fleet, not through this struct).
type procColl struct {
	op      string
	arrived int
	posted  []bool
	at      []timing.Seconds
	sizes   [][]int // per-source payload size vectors (op-specific shape)
}

func (c *procColl) maxAt() timing.Seconds {
	var mx timing.Seconds
	for _, t := range c.at {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// procState is shared by all devices of one proc-sharded runtime.
type procState struct {
	n          int
	w          int // worker process count
	model      *timing.CostModel
	socketBase string

	clocks []*timing.Clock

	mu         sync.Mutex
	cond       *sync.Cond
	colls      map[int]*procColl
	done       []int
	minDone    int
	pruned     int
	deliveries map[procKey][]byte
	aborted    bool
	abortErr   error // first wire-level failure (nil for body errors)
	bytesMoved [][]int64
	stats      wire.PoolStats // accumulated across Runs

	pool *wire.Pool
	dir  string
}

func newProcRuntime(spec TransportSpec) Runtime {
	n := spec.Parts
	if n <= 0 {
		panic("core: proc-sharded needs at least one device")
	}
	if n >= wire.ParentID {
		panic(fmt.Sprintf("core: proc-sharded supports at most %d devices, got %d", wire.ParentID-1, n))
	}
	model := spec.Model
	if model == nil {
		model = timing.Default()
	}
	w := spec.Workers
	if w <= 0 {
		w = 2
	}
	if w > n {
		w = n
	}
	s := &procState{
		n:          n,
		w:          w,
		model:      model,
		socketBase: spec.SocketDir,
		clocks:     make([]*timing.Clock, n),
		bytesMoved: make([][]int64, n),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.clocks {
		s.clocks[i] = timing.NewClock()
		s.bytesMoved[i] = make([]int64, n)
	}
	return &procRuntime{s: s}
}

// procRuntime adapts procState to the Runtime interface.
type procRuntime struct {
	s *procState
}

func (r *procRuntime) Size() int               { return r.s.n }
func (r *procRuntime) Clocks() []*timing.Clock { return r.s.clocks }

func (r *procRuntime) BytesMoved() [][]int64 {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]int64, s.n)
	for i := range out {
		out[i] = append([]int64(nil), s.bytesMoved[i]...)
	}
	return out
}

// WireStats reports the framed-byte accounting accumulated over every Run
// this runtime has executed (parent counters plus per-worker reports; see
// wire.PoolStats). Populated on graceful shutdowns only — an aborted
// fleet is killed, not interviewed.
func (r *procRuntime) WireStats() wire.PoolStats {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Workers = append([]wire.Stats(nil), s.stats.Workers...)
	return out
}

func (r *procRuntime) Run(seed uint64, body func(Transport) error) error {
	s := r.s
	if err := s.start(); err != nil {
		return err
	}
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for rank := 0; rank < s.n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(procAbort); ok {
						return // a peer's body failed or the wire broke; reported elsewhere
					}
					panic(p)
				}
			}()
			dev := &procDevice{s: s, rank: rank, rng: cluster.DeviceRNG(seed, rank)}
			if err := body(dev); err != nil {
				errs[rank] = err
				s.abortWith(nil)
			}
		}(rank)
	}
	wg.Wait()
	stopErr := s.stop()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	wireErr := s.abortErr
	s.mu.Unlock()
	if wireErr != nil {
		return wireErr
	}
	return stopErr
}

// start resets the per-run coordination state and brings up a fresh
// worker fleet (clocks and byte totals persist across Runs, like every
// other backend's).
func (s *procState) start() error {
	s.mu.Lock()
	s.colls = make(map[int]*procColl)
	s.deliveries = make(map[procKey][]byte)
	s.done = make([]int, s.n)
	s.minDone, s.pruned = 0, 0
	s.aborted, s.abortErr = false, nil
	s.mu.Unlock()

	var dir string
	var err error
	if s.socketBase == "" {
		dir, err = os.MkdirTemp("", "adaqp-wire-")
	} else {
		if err := os.MkdirAll(s.socketBase, 0o755); err != nil {
			return fmt.Errorf("core: proc-sharded socket dir: %w", err)
		}
		dir, err = os.MkdirTemp(s.socketBase, "run-")
	}
	if err != nil {
		return fmt.Errorf("core: proc-sharded socket dir: %w", err)
	}
	pool, err := wire.StartPool(dir, s.w, s.deliver, func(err error) { s.abortWith(err) })
	if err != nil {
		os.RemoveAll(dir)
		return err
	}
	s.mu.Lock()
	s.pool, s.dir = pool, dir
	s.mu.Unlock()
	return nil
}

// stop reaps the worker fleet and removes the socket directory. A healthy
// or body-aborted run shuts down gracefully (collecting worker stats); a
// broken wire is killed outright.
func (s *procState) stop() error {
	s.mu.Lock()
	pool, dir := s.pool, s.dir
	broken := s.abortErr != nil
	s.pool, s.dir = nil, ""
	s.mu.Unlock()
	if pool == nil {
		return nil
	}
	defer os.RemoveAll(dir)
	if broken {
		pool.Kill()
		return nil
	}
	stats, err := pool.Shutdown()
	s.mu.Lock()
	s.stats.Add(stats)
	s.mu.Unlock()
	return err
}

// deliver is the pool's onData callback: it publishes one wire-delivered
// payload for its destination device to consume. Never blocks, so pool
// reader goroutines cannot deadlock against device waits.
func (s *procState) deliver(f wire.Frame) {
	s.mu.Lock()
	s.deliveries[procKey{int(f.Seq), int(f.Src), int(f.Dst)}] = f.Payload
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *procState) abortWith(err error) {
	s.mu.Lock()
	s.aborted = true
	if err != nil && s.abortErr == nil {
		s.abortErr = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// wait blocks until pred holds (evaluated under the state lock). Panics
// with procAbort if the run aborted.
func (s *procState) wait(pred func() bool) {
	s.mu.Lock()
	for !s.aborted && !pred() {
		s.cond.Wait()
	}
	aborted := s.aborted
	s.mu.Unlock()
	if aborted {
		panic(procAbort{})
	}
}

// collLocked returns (creating on demand) sequence seq's collective.
// Callers hold s.mu.
func (s *procState) collLocked(seq int, op string) *procColl {
	c, ok := s.colls[seq]
	if !ok {
		c = &procColl{
			op:     op,
			posted: make([]bool, s.n),
			at:     make([]timing.Seconds, s.n),
			sizes:  make([][]int, s.n),
		}
		s.colls[seq] = c
	}
	if c.op != op {
		panic(fmt.Sprintf("core: proc-sharded collective %d is %s on one device and %s on another (devices diverged)", seq, c.op, op))
	}
	return c
}

// recvWire blocks until the frame (seq, src→dst) has crossed the worker
// fleet, then consumes it. The returned buffer was freshly allocated by
// the pool's socket reader, so the receiver owns it outright — releasing
// it into the receiver's arena trivially satisfies the ownership contract.
func (s *procState) recvWire(seq, src, dst int) []byte {
	key := procKey{seq, src, dst}
	var buf []byte
	s.wait(func() bool {
		b, ok := s.deliveries[key]
		if !ok {
			return false
		}
		buf = b
		delete(s.deliveries, key)
		return true
	})
	return buf
}

func (s *procState) addBytes(src, dst int, n int) {
	s.mu.Lock()
	s.bytesMoved[src][dst] += int64(n)
	s.mu.Unlock()
}

// procDevice is one device's Transport endpoint.
type procDevice struct {
	s    *procState
	rank int
	seq  int // next collective sequence number
	rng  *tensor.RNG

	// sizes is reusable RingAll2All charging scratch, read only between
	// this device's post and complete of one sequence.
	sizes [][]int
	// sums is reusable AllReduceSum reduction scratch, private to this
	// device.
	sums []*tensor.Matrix
}

func (d *procDevice) sizesScratch(n int) [][]int {
	if len(d.sizes) != n {
		d.sizes = make([][]int, n)
		for i := range d.sizes {
			d.sizes[i] = make([]int, n)
		}
	}
	return d.sizes
}

func (d *procDevice) Rank() int                { return d.rank }
func (d *procDevice) Size() int                { return d.s.n }
func (d *procDevice) Clock() *timing.Clock     { return d.s.clocks[d.rank] }
func (d *procDevice) Model() *timing.CostModel { return d.s.model }
func (d *procDevice) Rand() *tensor.RNG        { return d.rng }

// post registers this device's next collective: arrival clock and payload
// sizes go into the in-parent coordination record (the payload bytes
// themselves travel as frames). Non-blocking — rendezvous happens in the
// wait, and split-phase Starts must not block by contract.
func (d *procDevice) post(op string, sizes []int) (int, timing.Seconds) {
	s := d.s
	seq := d.seq
	d.seq++
	start := d.Clock().Now()
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		panic(procAbort{})
	}
	c := s.collLocked(seq, op)
	c.posted[d.rank] = true
	c.at[d.rank] = start
	c.sizes[d.rank] = sizes
	c.arrived++
	s.cond.Broadcast()
	s.mu.Unlock()
	return seq, start
}

// send ships one payload into the worker fleet. Self-sends never happen:
// a device's own payload stays a local pointer, exactly like the
// reference backend returns it.
func (d *procDevice) send(seq, dst int, payload []byte) {
	err := d.s.pool.Send(wire.Frame{
		Op:      wire.OpData,
		Seq:     uint32(seq),
		Src:     uint16(d.rank),
		Dst:     uint16(dst),
		Payload: payload,
	})
	if err != nil {
		d.s.abortWith(err)
		panic(procAbort{})
	}
}

// waitAll blocks until every device has posted sequence seq.
func (d *procDevice) waitAll(seq int) *procColl {
	s := d.s
	var c *procColl
	s.wait(func() bool {
		cc, ok := s.colls[seq]
		if !ok {
			return false
		}
		c = cc
		return cc.arrived == s.n
	})
	return c
}

// complete marks this device done with sequence seq, pruning
// fully-consumed coordination records.
func (d *procDevice) complete(seq int) {
	s := d.s
	s.mu.Lock()
	s.done[d.rank]++
	min := s.done[0]
	for _, v := range s.done[1:] {
		if v < min {
			min = v
		}
	}
	if min > s.minDone {
		s.minDone = min
		for k := s.pruned; k < min; k++ {
			delete(s.colls, k)
		}
		s.pruned = min
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Barrier aligns all devices; everyone's clock advances to the slowest
// arrival (gap charged to Idle).
func (d *procDevice) Barrier() {
	seq, _ := d.post(opBarrier, nil)
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	d.complete(seq)
}

// RingAll2All exchanges per-destination buffers over the ring schedule.
// Charging reproduces the reference (arrival gap to Idle, per-round link
// maxima to Comm, in schedule order); payload delivery crosses the worker
// fleet.
func (d *procDevice) RingAll2All(payloads [][]byte) [][]byte {
	s := d.s
	n := s.n
	if len(payloads) != n {
		panic(fmt.Sprintf("core: RingAll2All got %d payloads for %d devices", len(payloads), n))
	}
	sizes := make([]int, n)
	for dst, p := range payloads {
		if dst != d.rank {
			sizes[dst] = len(p)
		}
	}
	seq, _ := d.post(opRing, sizes)
	for dst := 0; dst < n; dst++ {
		if dst != d.rank {
			d.send(seq, dst, payloads[dst])
		}
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	tbl := d.sizesScratch(n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst != src {
				tbl[src][dst] = c.sizes[src][dst]
			} else {
				tbl[src][dst] = 0
			}
		}
	}
	for round := 1; round < n; round++ {
		d.Clock().Advance(timing.Comm, cluster.All2AllRoundTime(s.model, tbl, round))
		s.addBytes(d.rank, (d.rank+round)%n, len(payloads[(d.rank+round)%n]))
	}
	received := make([][]byte, n)
	for p := 0; p < n; p++ {
		if p != d.rank {
			received[p] = s.recvWire(seq, p, d.rank)
		}
	}
	d.complete(seq)
	return received
}

// AllReduceSum sums matrices elementwise across devices (ring-allreduce
// time model). Every device serializes its matrices (raw float32 bits, so
// the reduction is bit-exact) to all peers and reduces the decoded copies
// in rank order — the same float additions as the reference.
func (d *procDevice) AllReduceSum(ms []*tensor.Matrix) {
	s := d.s
	clones := make([]*tensor.Matrix, len(ms))
	for i, m := range ms {
		clones[i] = m.Clone()
	}
	seq, _ := d.post(opAllReduce, nil)
	blob := appendMats(nil, ms)
	for dst := 0; dst < s.n; dst++ {
		if dst != d.rank {
			d.send(seq, dst, blob)
		}
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	contrib := make([][]*tensor.Matrix, s.n)
	for r := 0; r < s.n; r++ {
		if r == d.rank {
			contrib[r] = clones
			continue
		}
		mats, err := parseMats(s.recvWire(seq, r, d.rank), len(ms))
		if err != nil {
			s.abortWith(fmt.Errorf("core: allreduce decode from rank %d: %w", r, err))
			panic(procAbort{})
		}
		contrib[r] = mats
	}
	if len(d.sums) != len(ms) {
		d.sums = make([]*tensor.Matrix, len(ms))
	}
	sums := d.sums
	for i := range ms {
		if sums[i] == nil || !sums[i].SameShape(contrib[0][i]) {
			sums[i] = tensor.New(contrib[0][i].Rows, contrib[0][i].Cols)
		}
		sums[i].CopyFrom(contrib[0][i])
		for r := 1; r < s.n; r++ {
			sums[i].AddInPlace(contrib[r][i])
		}
	}
	bytes := 0
	for _, m := range ms {
		bytes += len(m.Data) * 4
	}
	d.Clock().Advance(timing.Comm, cluster.AllReduceTime(s.model, s.n, d.rank, bytes))
	for i := range ms {
		ms[i].CopyFrom(sums[i])
	}
	d.complete(seq)
}

// GatherBytes collects every device's payload at root over the wire;
// everyone aligns on the slowest arrival and charges the slowest incoming
// transfer, like the lockstep reference.
func (d *procDevice) GatherBytes(root int, payload []byte) [][]byte {
	s := d.s
	seq, _ := d.post(opGather, []int{len(payload)})
	if d.rank != root {
		d.send(seq, root, payload)
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	var t timing.Seconds
	for src := 0; src < s.n; src++ {
		if src == root {
			continue
		}
		if tt := s.model.TransferTime(src, root, c.sizes[src][0]); tt > t {
			t = tt
		}
	}
	d.Clock().Advance(timing.Comm, t)
	if d.rank != root {
		s.addBytes(d.rank, root, len(payload))
		d.complete(seq)
		return nil
	}
	out := make([][]byte, s.n)
	for src := range out {
		if src == root {
			out[src] = payload
		} else {
			out[src] = s.recvWire(seq, src, root)
		}
	}
	d.complete(seq)
	return out
}

// ScatterBytes distributes payloads[i] from root to device i over the
// wire (max outgoing transfer charged, scatter bytes never counted —
// assignment metadata, matching the reference ledger).
func (d *procDevice) ScatterBytes(root int, payloads [][]byte) []byte {
	s := d.s
	var sizes []int
	if d.rank == root {
		if len(payloads) != s.n {
			panic(fmt.Sprintf("core: ScatterBytes got %d payloads for %d devices", len(payloads), s.n))
		}
		sizes = make([]int, s.n)
		for dst, p := range payloads {
			sizes[dst] = len(p)
		}
	}
	seq, _ := d.post(opScatter, sizes)
	if d.rank == root {
		for dst := 0; dst < s.n; dst++ {
			if dst != root {
				d.send(seq, dst, payloads[dst])
			}
		}
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst == root {
			continue
		}
		if tt := s.model.TransferTime(root, dst, c.sizes[root][dst]); tt > t {
			t = tt
		}
	}
	d.Clock().Advance(timing.Comm, t)
	var out []byte
	if d.rank == root {
		out = payloads[root]
	} else {
		out = s.recvWire(seq, root, d.rank)
	}
	d.complete(seq)
	return out
}

// BroadcastBytes sends root's payload to all devices (sequential
// broadcast timing — SANCUS's pattern); every receiver's copy crosses the
// worker fleet.
func (d *procDevice) BroadcastBytes(root int, payload []byte) []byte {
	s := d.s
	var sizes []int
	if d.rank == root {
		sizes = []int{len(payload)}
	}
	seq, _ := d.post(opBroadcast, sizes)
	if d.rank == root {
		for dst := 0; dst < s.n; dst++ {
			if dst != root {
				d.send(seq, dst, payload)
			}
		}
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	size := c.sizes[root][0]
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst != root {
			t += s.model.TransferTime(root, dst, size)
		}
	}
	d.Clock().Advance(timing.Comm, t)
	var buf []byte
	if d.rank == root {
		buf = payload
		for dst := 0; dst < s.n; dst++ {
			if dst != root {
				s.addBytes(root, dst, size)
			}
		}
	} else {
		buf = s.recvWire(seq, root, d.rank)
	}
	d.complete(seq)
	return buf
}

// StartBroadcast begins a split-phase broadcast: root's frames enter the
// worker fleet immediately (the wire transfer genuinely proceeds during
// the overlap window), while clock charging waits for Wait, routed
// through timing.FinishDeferred like every backend.
func (d *procDevice) StartBroadcast(root int, payload []byte) PendingCollective {
	var sizes []int
	if d.rank == root {
		sizes = []int{len(payload)}
	}
	seq, start := d.post(opStartBroadcast, sizes)
	if d.rank == root {
		for dst := 0; dst < d.s.n; dst++ {
			if dst != root {
				d.send(seq, dst, payload)
			}
		}
	}
	return &procPending{d: d, seq: seq, op: opStartBroadcast, root: root, start: start, own: payload}
}

// StartScatter is the split-phase form of ScatterBytes under the same
// start/wait contract as StartBroadcast.
func (d *procDevice) StartScatter(root int, payloads [][]byte) PendingCollective {
	var sizes []int
	var own []byte
	if d.rank == root {
		if len(payloads) != d.s.n {
			panic(fmt.Sprintf("core: StartScatter got %d payloads for %d devices", len(payloads), d.s.n))
		}
		sizes = make([]int, d.s.n)
		for dst, p := range payloads {
			sizes[dst] = len(p)
		}
		own = payloads[root]
	}
	seq, start := d.post(opStartScatter, sizes)
	if d.rank == root {
		for dst := 0; dst < d.s.n; dst++ {
			if dst != root {
				d.send(seq, dst, payloads[dst])
			}
		}
	}
	return &procPending{d: d, seq: seq, op: opStartScatter, root: root, start: start, own: own}
}

// procPending implements PendingCollective for the proc backend. own is
// the root's self-delivery (never framed — exactly like the reference
// returns the caller's pointer).
type procPending struct {
	d     *procDevice
	seq   int
	op    string
	root  int
	start timing.Seconds
	own   []byte
	done  bool
}

func (p *procPending) Wait() []byte {
	if p.done {
		panic("core: proc-sharded split-phase handle waited twice")
	}
	p.done = true
	if p.op == opStartScatter {
		return p.d.finishScatter(p)
	}
	return p.d.finishBroadcast(p)
}

// finishBroadcast completes a split-phase broadcast with the blocking
// schedule's (align, wire) pair through timing.FinishDeferred.
func (d *procDevice) finishBroadcast(p *procPending) []byte {
	s := d.s
	root := p.root
	c := d.waitAll(p.seq)
	size := c.sizes[root][0]
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst != root {
			t += s.model.TransferTime(root, dst, size)
		}
	}
	var buf []byte
	if d.rank == root {
		buf = p.own
		for dst := 0; dst < s.n; dst++ {
			if dst != root {
				s.addBytes(root, dst, size)
			}
		}
	} else {
		buf = s.recvWire(p.seq, root, d.rank)
	}
	timing.FinishDeferred(d.Clock(), p.start, c.maxAt(), t)
	d.complete(p.seq)
	return buf
}

// finishScatter completes a split-phase scatter (blocking ScatterBytes
// schedule: max outgoing transfer at rendezvous).
func (d *procDevice) finishScatter(p *procPending) []byte {
	s := d.s
	root := p.root
	c := d.waitAll(p.seq)
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst == root {
			continue
		}
		if tt := s.model.TransferTime(root, dst, c.sizes[root][dst]); tt > t {
			t = tt
		}
	}
	var out []byte
	if d.rank == root {
		out = p.own
	} else {
		out = s.recvWire(p.seq, root, d.rank)
	}
	timing.FinishDeferred(d.Clock(), p.start, c.maxAt(), t)
	d.complete(p.seq)
	return out
}

// RawAll2All moves buffers like RingAll2All — through the worker fleet —
// but charges no time (metrics sideband).
func (d *procDevice) RawAll2All(payloads [][]byte) [][]byte {
	s := d.s
	if len(payloads) != s.n {
		panic(fmt.Sprintf("core: RawAll2All got %d payloads for %d devices", len(payloads), s.n))
	}
	seq, _ := d.post(opRawRing, nil)
	for dst := 0; dst < s.n; dst++ {
		if dst != d.rank {
			d.send(seq, dst, payloads[dst])
		}
	}
	d.waitAll(seq)
	received := make([][]byte, s.n)
	for p := 0; p < s.n; p++ {
		if p != d.rank {
			received[p] = s.recvWire(seq, p, d.rank)
		}
	}
	d.complete(seq)
	return received
}

// RawAllGather shares one buffer from every device with every device,
// charging no time.
func (d *procDevice) RawAllGather(payload []byte) [][]byte {
	s := d.s
	seq, _ := d.post(opRawGather, nil)
	for dst := 0; dst < s.n; dst++ {
		if dst != d.rank {
			d.send(seq, dst, payload)
		}
	}
	d.waitAll(seq)
	out := make([][]byte, s.n)
	for p := 0; p < s.n; p++ {
		if p == d.rank {
			out[p] = payload
		} else {
			out[p] = s.recvWire(seq, p, d.rank)
		}
	}
	d.complete(seq)
	return out
}

var _ Transport = (*procDevice)(nil)

// appendMats serializes matrices for the wire: u32 count, then per matrix
// u32 rows, u32 cols and the raw float32 bit patterns — bit-exact across
// the round trip, which the deterministic allreduce reduction requires.
func appendMats(dst []byte, ms []*tensor.Matrix) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ms)))
	for _, m := range ms {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Rows))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Cols))
		for _, v := range m.Data {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst
}

// parseMats decodes an appendMats stream, validating the declared shapes
// against the stream length and the expected matrix count.
func parseMats(b []byte, want int) ([]*tensor.Matrix, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("matrix stream truncated at count")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if count != want {
		return nil, fmt.Errorf("matrix stream has %d matrices, want %d", count, want)
	}
	ms := make([]*tensor.Matrix, count)
	for i := range ms {
		if len(b) < 8 {
			return nil, fmt.Errorf("matrix %d truncated at shape", i)
		}
		rows := int(binary.LittleEndian.Uint32(b))
		cols := int(binary.LittleEndian.Uint32(b[4:]))
		b = b[8:]
		n := rows * cols
		if rows < 0 || cols < 0 || len(b) < n*4 {
			return nil, fmt.Errorf("matrix %d (%dx%d) truncated at data", i, rows, cols)
		}
		m := tensor.New(rows, cols)
		for j := 0; j < n; j++ {
			m.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(b[j*4:]))
		}
		b = b[n*4:]
		ms[i] = m
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("matrix stream has %d trailing bytes", len(b))
	}
	return ms, nil
}
