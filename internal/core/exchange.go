package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// Halo exchange: per GNN layer, each device ships the rows its peers need
// (lg.SendTo wire order) and fills its halo rows ([NumLocal,
// NumLocal+NumHalo) of xFull) from what arrives (lg.RecvFrom wire order).
// The reverse (backward) exchange ships gradient rows of halo slots back to
// their owners, which scatter-add them into local gradient rows.
//
// Hot-path payload buffers come from the device's Arena and are released
// by the receiver after decode; see the ownership rules on Arena.

// appendRows appends x's rows idx as little-endian float32 to dst and
// returns the extended slice. Every appended byte is overwritten, so a
// dirty pooled buffer is a valid dst.
func appendRows(dst []byte, x *tensor.Matrix, idx []int32) []byte {
	off := len(dst)
	dst = quant.Grow(dst, 4*len(idx)*x.Cols)
	for _, r := range idx {
		for _, v := range x.Row(int(r)) {
			binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(v))
			off += 4
		}
	}
	return dst
}

// appendAllRows appends every row of x in order (the idx == 0..Rows-1
// special case, without materializing an index list).
func appendAllRows(dst []byte, x *tensor.Matrix) []byte {
	off := len(dst)
	dst = quant.Grow(dst, 4*len(x.Data))
	for _, v := range x.Data {
		binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(v))
		off += 4
	}
	return dst
}

// rowsToBytes serializes x's rows idx as little-endian float32 into a
// fresh buffer. Hot paths use appendRows with an arena buffer instead.
func rowsToBytes(x *tensor.Matrix, idx []int32) []byte {
	return appendRows(make([]byte, 0, 4*len(idx)*x.Cols), x, idx)
}

// bytesToRows deserializes buf into dst rows rows[i]+rowOffset.
func bytesToRows(buf []byte, dst *tensor.Matrix, rows []int32, rowOffset int) error {
	if len(buf) != 4*len(rows)*dst.Cols {
		return fmt.Errorf("core: halo payload is %d bytes, want %d", len(buf), 4*len(rows)*dst.Cols)
	}
	off := 0
	for _, r := range rows {
		row := dst.Row(int(r) + rowOffset)
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return nil
}

// bytesToAllRows deserializes buf into every row of dst in order,
// overwriting all of dst (so a dirty arena matrix is a valid dst).
func bytesToAllRows(buf []byte, dst *tensor.Matrix) error {
	if len(buf) != 4*len(dst.Data) {
		return fmt.Errorf("core: halo payload is %d bytes, want %d", len(buf), 4*len(dst.Data))
	}
	for i := range dst.Data {
		dst.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

// addBytesToRows is bytesToRows with += semantics (backward scatter-add).
func addBytesToRows(buf []byte, dst *tensor.Matrix, rows []int32) error {
	if len(buf) != 4*len(rows)*dst.Cols {
		return fmt.Errorf("core: grad payload is %d bytes, want %d", len(buf), 4*len(rows)*dst.Cols)
	}
	off := 0
	for _, r := range rows {
		row := dst.Row(int(r))
		for j := range row {
			row[j] += math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return nil
}

// gatherRowsInto copies x's rows idx into dst's rows 0..len(idx)-1,
// overwriting all of dst (a dirty arena matrix is a valid dst).
func gatherRowsInto(dst, x *tensor.Matrix, idx []int32) {
	for i, r := range idx {
		copy(dst.Row(i), x.Row(int(r)))
	}
}

// scatterAddRows32 adds src row i into dst row idx[i].
func scatterAddRows32(dst *tensor.Matrix, idx []int32, src *tensor.Matrix) {
	for i, r := range idx {
		d := dst.Row(int(r))
		for j, v := range src.Row(i) {
			d[j] += v
		}
	}
}

// exchangeHaloFP performs the full-precision forward halo exchange
// (Vanilla), filling xFull's halo rows. When raw is true no simulated time
// is charged (evaluation sideband).
func exchangeHaloFP(env *ExchangeEnv, xLocal, xFull *tensor.Matrix, raw bool) error {
	dev, lg, a := env.Dev, env.Graph, env.Scratch
	n := dev.Size()
	payloads := a.Payloads(n)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		payloads[q] = appendRows(a.GetBuf(4*len(lg.SendTo[q])*xLocal.Cols), xLocal, lg.SendTo[q])
	}
	var recv [][]byte
	if raw {
		recv = dev.RawAll2All(payloads)
	} else {
		recv = dev.RingAll2All(payloads)
	}
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		if err := bytesToRows(recv[p], xFull, lg.RecvFrom[p], lg.NumLocal); err != nil {
			return fmt.Errorf("rank %d from %d: %w", dev.Rank(), p, err)
		}
	}
	a.ReleaseAll(recv)
	return nil
}

// exchangeGradFP performs the full-precision backward exchange: dxFull's
// halo rows go back to their owners and are scatter-added into dxLocal.
func exchangeGradFP(env *ExchangeEnv, dxFull, dxLocal *tensor.Matrix) error {
	dev, lg, a := env.Dev, env.Graph, env.Scratch
	n := dev.Size()
	payloads := a.Payloads(n)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		// Halo rows live at NumLocal+slot; reuse appendRows via the
		// shifted index list.
		idx := env.HaloIdx(p)
		payloads[p] = appendRows(a.GetBuf(4*len(idx)*dxFull.Cols), dxFull, idx)
	}
	recv := dev.RingAll2All(payloads)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		if err := addBytesToRows(recv[q], dxLocal, lg.SendTo[q]); err != nil {
			return fmt.Errorf("rank %d grads from %d: %w", dev.Rank(), q, err)
		}
	}
	a.ReleaseAll(recv)
	return nil
}

// wireElems counts the float32 elements across the given wire lists at
// dim columns — the element count compression codecs charge to the Quant
// kernel category.
func wireElems(lists [][]int32, dim int) int {
	n := 0
	for _, l := range lists {
		n += len(l) * dim
	}
	return n
}

// messageDims returns the per-layer message dimension: layer 0 ships
// input features, deeper layers ship hidden activations.
func messageDims(cfg *Config, inDim int) []int {
	dims := make([]int, cfg.Layers)
	dims[0] = inDim
	for l := 1; l < cfg.Layers; l++ {
		dims[l] = cfg.Hidden
	}
	return dims
}

// widthTable holds the current bit-width assignment on one device for one
// direction of one layer: send[q][j] is the width of the j-th wire slot to
// device q; recv[p][j] mirrors the sender's table so streams decode.
type widthTable struct {
	send [][]quant.BitWidth
	recv [][]quant.BitWidth
}

func newWidthTable(lg *partition.LocalGraph, fwd bool, def quant.BitWidth) *widthTable {
	n := lg.Parts
	wt := &widthTable{send: make([][]quant.BitWidth, n), recv: make([][]quant.BitWidth, n)}
	for d := 0; d < n; d++ {
		var sendLen, recvLen int
		if fwd {
			sendLen, recvLen = len(lg.SendTo[d]), len(lg.RecvFrom[d])
		} else {
			// Backward reverses direction: we send grads for slots we
			// receive in forward, and receive grads for rows we send.
			sendLen, recvLen = len(lg.RecvFrom[d]), len(lg.SendTo[d])
		}
		wt.send[d] = quant.UniformWidths(sendLen, def)
		wt.recv[d] = quant.UniformWidths(recvLen, def)
	}
	return wt
}

// quantElems returns how many float32 elements this device quantizes when
// sending with table wt at dim columns (for the Quant time charge).
func quantSendElems(wt *widthTable, dim int) int {
	n := 0
	for _, ws := range wt.send {
		n += len(ws) * dim
	}
	return n
}

func quantRecvElems(wt *widthTable, dim int) int {
	n := 0
	for _, ws := range wt.recv {
		n += len(ws) * dim
	}
	return n
}

// exchangeHaloQ performs the quantized forward halo exchange with per-slot
// widths. Charges Quant for the quantize/de-quantize kernels; Comm is
// charged inside RingAll2All. Returns the Comm seconds this call added
// (used by the overlap schedule).
func exchangeHaloQ(env *ExchangeEnv, wt *widthTable,
	xLocal, xFull *tensor.Matrix) (timing.Seconds, error) {
	dev, lg, a := env.Dev, env.Graph, env.Scratch
	n := dev.Size()
	model := dev.Model()
	dev.Clock().Advance(timing.Quant, model.QuantTime(quantSendElems(wt, xLocal.Cols)))
	payloads := a.Payloads(n)
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		buf, err := quant.AppendQuantizedMixed(
			a.GetBuf(quant.MixedSize(wt.send[q], xLocal.Cols)),
			xLocal, lg.SendTo[q], wt.send[q], dev.Rand())
		if err != nil {
			return 0, err
		}
		payloads[q] = buf
	}
	before := dev.Clock().Spent(timing.Comm)
	recv := dev.RingAll2All(payloads)
	commDelta := dev.Clock().Spent(timing.Comm) - before
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		if err := quant.DequantizeMixed(recv[p], xFull, env.HaloIdx(p), wt.recv[p]); err != nil {
			return 0, fmt.Errorf("rank %d from %d: %w", dev.Rank(), p, err)
		}
	}
	a.ReleaseAll(recv)
	dev.Clock().Advance(timing.Quant, model.QuantTime(quantRecvElems(wt, xFull.Cols)))
	return commDelta, nil
}

// exchangeGradQ performs the quantized backward exchange (embedding
// gradients / "errors"). wt is the backward width table: send[p] covers
// slots RecvFrom[p], recv[q] covers rows SendTo[q].
func exchangeGradQ(env *ExchangeEnv, wt *widthTable,
	dxFull, dxLocal *tensor.Matrix) (timing.Seconds, error) {
	dev, lg, a := env.Dev, env.Graph, env.Scratch
	n := dev.Size()
	model := dev.Model()
	dev.Clock().Advance(timing.Quant, model.QuantTime(quantSendElems(wt, dxFull.Cols)))
	payloads := a.Payloads(n)
	for p := 0; p < n; p++ {
		if p == dev.Rank() || len(lg.RecvFrom[p]) == 0 {
			continue
		}
		buf, err := quant.AppendQuantizedMixed(
			a.GetBuf(quant.MixedSize(wt.send[p], dxFull.Cols)),
			dxFull, env.HaloIdx(p), wt.send[p], dev.Rand())
		if err != nil {
			return 0, err
		}
		payloads[p] = buf
	}
	before := dev.Clock().Spent(timing.Comm)
	recv := dev.RingAll2All(payloads)
	commDelta := dev.Clock().Spent(timing.Comm) - before
	for q := 0; q < n; q++ {
		if q == dev.Rank() || len(lg.SendTo[q]) == 0 {
			continue
		}
		// Decode group-by-group via DequantizeMixed into arena scratch,
		// then scatter-add (cannot decode straight into dxLocal because
		// multiple devices may target the same local row).
		rows := lg.SendTo[q]
		tmp := a.GetMat(len(rows), dxLocal.Cols)
		if err := quant.DequantizeMixed(recv[q], tmp, nil, wt.recv[q]); err != nil {
			return 0, fmt.Errorf("rank %d grads from %d: %w", dev.Rank(), q, err)
		}
		scatterAddRows32(dxLocal, rows, tmp)
		a.PutMat(tmp)
	}
	a.ReleaseAll(recv)
	dev.Clock().Advance(timing.Quant, model.QuantTime(quantRecvElems(wt, dxLocal.Cols)))
	return commDelta, nil
}

// fpAll2AllBytes returns the per-destination payload sizes of a
// full-precision forward exchange (for PipeGCN's overlap accounting and
// Table 1/Fig. 2 measurements).
func fpAll2AllBytes(lg *partition.LocalGraph, dim int) []int {
	out := make([]int, lg.Parts)
	for q := range out {
		out[q] = 4 * dim * len(lg.SendTo[q])
	}
	return out
}
