package core

import (
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/synthetic"
	"repro/internal/timing"
)

func tinyConfig(m Method) Config {
	cfg := DefaultConfig()
	cfg.Method = m
	cfg.Hidden = 32
	cfg.Epochs = 12
	cfg.EvalEvery = 4
	cfg.ReassignPeriod = 5
	cfg.GroupSize = 10
	cfg.Dropout = 0.2
	return cfg
}

func TestVanillaSinglePartitionLearns(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	cfg := tinyConfig(Vanilla)
	cfg.Epochs = 60
	res, err := Train(ds, 1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTest < 0.55 {
		t.Fatalf("single-partition GCN should learn tiny dataset: test acc %.3f", res.FinalTest)
	}
	t.Logf("tiny GCN 1-part: test=%.3f wallclock=%.3fs", res.FinalTest, res.WallClock)
}

func TestVanillaDistributedMatchesSingle(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	cfg := tinyConfig(Vanilla)
	cfg.Dropout = 0 // dropout RNG streams differ per device; disable for exact comparison
	cfg.Epochs = 8
	single, err := Train(ds, 1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Train(ds, 3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Epochs) != len(multi.Epochs) {
		t.Fatalf("epoch count mismatch %d vs %d", len(single.Epochs), len(multi.Epochs))
	}
	for i := range single.Epochs {
		a, b := single.Epochs[i].Loss, multi.Epochs[i].Loss
		if math.Abs(a-b) > 1e-3*(1+math.Abs(a)) {
			t.Fatalf("epoch %d: distributed full-graph loss %.6f diverges from single-device %.6f", i, b, a)
		}
	}
}

func TestAllMethodsRun(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	for _, m := range []Method{Vanilla, AdaQP, AdaQPUniform, AdaQPRandom, PipeGCN, SANCUS} {
		for _, model := range []ModelKind{GCN, GraphSAGE} {
			cfg := tinyConfig(m)
			cfg.Model = model
			res, err := Train(ds, 2, cfg, nil)
			if err != nil {
				t.Fatalf("%v/%v: %v", m, model, err)
			}
			last := res.Epochs[len(res.Epochs)-1]
			if math.IsNaN(last.Loss) || math.IsInf(last.Loss, 0) {
				t.Fatalf("%v/%v: non-finite loss %v", m, model, last.Loss)
			}
			if res.WallClock <= 0 {
				t.Fatalf("%v/%v: no simulated time elapsed", m, model)
			}
			t.Logf("%v/%v: loss=%.4f test=%.3f wall=%.3fs", m, model, last.Loss, res.FinalTest, res.WallClock)
		}
	}
}

func TestMultiLabelTraining(t *testing.T) {
	ds := synthetic.MustLoad("tiny-multi", 1)
	cfg := tinyConfig(AdaQP)
	cfg.Model = GraphSAGE
	cfg.Epochs = 15
	res, err := Train(ds, 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTest <= 0 || res.FinalTest > 1 {
		t.Fatalf("micro-F1 out of range: %v", res.FinalTest)
	}
}

func TestAdaQPFasterThanVanilla(t *testing.T) {
	// The tiny test graph sends kilobyte payloads, which a 50µs-latency
	// link turns latency-bound — a regime where compression cannot help
	// (the paper's graphs ship megabytes per pair). Use a
	// bandwidth-dominated model so the test exercises the paper's regime,
	// and compare per-epoch training time: with only 12 epochs the
	// assignment overhead cannot amortize as it does over the paper's
	// hundreds of epochs.
	model := timing.Default()
	model.Latency = 1e-7
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 4, GCN, 0)
	van, err := TrainDeployed(dep, tinyConfig(Vanilla), model)
	if err != nil {
		t.Fatal(err)
	}
	ada, err := TrainDeployed(dep, tinyConfig(AdaQP), model)
	if err != nil {
		t.Fatal(err)
	}
	vanEpoch := float64(van.WallClock)
	adaEpoch := float64(ada.WallClock - ada.AssignTime)
	if adaEpoch >= vanEpoch {
		t.Fatalf("AdaQP train time (%.6fs) should beat Vanilla (%.6fs) in the bandwidth-bound regime", adaEpoch, vanEpoch)
	}
	t.Logf("speedup %.2fx (assign overhead %.6fs)", vanEpoch/adaEpoch, ada.AssignTime)
}

func TestUniform2BitCompression(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	dep := Deploy(ds, 4, GCN, 0)
	cfg := tinyConfig(AdaQPUniform)
	cfg.UniformBits = quant.B2
	van, err := TrainDeployed(dep, tinyConfig(Vanilla), nil)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := TrainDeployed(dep, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	vb, qb := totalBytes(van.BytesMoved), totalBytes(q2.BytesMoved)
	// 2-bit halves-of-halves: expect ≥ 5× traffic reduction even with
	// headers and the full-precision model-gradient allreduce excluded
	// from BytesMoved accounting... allreduce moves no payload here.
	if float64(vb) < 5*float64(qb) {
		t.Fatalf("2-bit should shrink traffic ≥5x: vanilla=%d quantized=%d", vb, qb)
	}
}

func totalBytes(bm [][]int64) int64 {
	var s int64
	for _, row := range bm {
		for _, b := range row {
			s += b
		}
	}
	return s
}
