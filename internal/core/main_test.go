package core

import (
	"os"
	"testing"

	"repro/internal/wire"
)

// TestMain lets this test binary serve as its own proc-sharded worker:
// the conformance suites iterate every registered backend, and the
// proc-sharded runs re-execute the running binary to get their worker
// processes (wire.MaybeWorker never returns in that mode).
func TestMain(m *testing.M) {
	wire.MaybeWorker()
	os.Exit(m.Run())
}
