package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/tensor"
)

// TestCodecConformanceAllRegistered runs every registered codec through
// the codec-contract suite: decode-of-encode error bounds, byte
// accounting, state discipline and fixed-seed reproducibility across
// both transport backends.
func TestCodecConformanceAllRegistered(t *testing.T) {
	for _, name := range CodecNames() {
		f, err := LookupCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, v := range ConformCodec(f, 4) {
				t.Errorf("%s: %v", name, v)
			}
		})
	}
}

// wrapCodec derives a CodecFactory from the fp32 reference with one
// behavior deliberately broken, without registering it: ConformCodec
// takes factories directly precisely so broken candidates never pollute
// the global registry.
func wrapCodec(t *testing.T, wrap func(MessageCodec) MessageCodec) CodecFactory {
	t.Helper()
	inner, err := LookupCodec(CodecFP32)
	if err != nil {
		t.Fatal(err)
	}
	return func(env *CodecEnv) (MessageCodec, error) {
		c, err := inner(env)
		if err != nil {
			return nil, err
		}
		return wrap(c), nil
	}
}

// delegated forwards the optional WireAccountant declaration of the
// wrapped codec, so a stub breaking one contract clause does not also
// trip the byte-accounting check.
type delegated struct{ MessageCodec }

func (d delegated) ForwardWireSizes(lg *partition.LocalGraph, dim int) []int {
	return d.MessageCodec.(WireAccountant).ForwardWireSizes(lg, dim)
}

// lyingBytesCodec reports wire sizes that do not match its payloads.
type lyingBytesCodec struct{ MessageCodec }

func (c lyingBytesCodec) ForwardWireSizes(lg *partition.LocalGraph, _ int) []int {
	out := make([]int, lg.Parts)
	for q := range out {
		if len(lg.SendTo[q]) > 0 {
			out[q] = 7
		}
	}
	return out
}

// noisyCodec corrupts decoded halo rows while declaring no loss.
type noisyCodec struct{ delegated }

func (c noisyCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	if err := c.delegated.Forward(env, epoch, l, h, xFull); err != nil {
		return err
	}
	for i := env.Graph.NumLocal; i < xFull.Rows; i++ {
		row := xFull.Row(i)
		for j := range row {
			row[j] += 0.5
		}
	}
	return nil
}

// sneakyStateCodec carries undeclared cross-epoch state: from its second
// epoch on, an instance scales every decoded halo row, so a fresh
// instance behaves differently from an aged one.
type sneakyStateCodec struct {
	delegated
	epochs int
}

func (c *sneakyStateCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	if err := c.delegated.Forward(env, epoch, l, h, xFull); err != nil {
		return err
	}
	if c.epochs > 0 {
		for i := env.Graph.NumLocal; i < xFull.Rows; i++ {
			row := xFull.Row(i)
			for j := range row {
				row[j] *= 1.01
			}
		}
	}
	return nil
}

func (c *sneakyStateCodec) EpochEnd(env *ExchangeEnv, epoch int) error {
	c.epochs++
	return c.delegated.EpochEnd(env, epoch)
}

// flakyCounter makes flakyCodec's perturbation depend on process-global
// history — the codec is not reproducible run to run.
var flakyCounter atomic.Int64

type flakyCodec struct{ delegated }

func (c flakyCodec) Forward(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	if err := c.delegated.Forward(env, epoch, l, h, xFull); err != nil {
		return err
	}
	if epoch > 0 {
		jitter := float32(flakyCounter.Add(1)%97) * 1e-3
		for i := env.Graph.NumLocal; i < xFull.Rows; i++ {
			row := xFull.Row(i)
			for j := range row {
				row[j] += jitter
			}
		}
	}
	return nil
}

// TestCodecConformanceCatchesBrokenCodecs: each deliberately broken stub
// must trip the matching contract check.
func TestCodecConformanceCatchesBrokenCodecs(t *testing.T) {
	cases := []struct {
		name      string
		factory   CodecFactory
		wantCheck string
	}{
		{"lying wire sizes", wrapCodec(t, func(c MessageCodec) MessageCodec { return lyingBytesCodec{c} }), "codec-byte-accounting"},
		{"undeclared loss", wrapCodec(t, func(c MessageCodec) MessageCodec { return noisyCodec{delegated{c}} }), "codec-roundtrip"},
		{"undeclared state", wrapCodec(t, func(c MessageCodec) MessageCodec { return &sneakyStateCodec{delegated: delegated{c}} }), "codec-state-discipline"},
		{"global nondeterminism", wrapCodec(t, func(c MessageCodec) MessageCodec { return flakyCodec{delegated{c}} }), "codec-reproducibility"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := ConformCodec(tc.factory, 4)
			found := false
			for _, v := range vs {
				if strings.HasPrefix(v.Check, tc.wantCheck) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("conformance missed the violation (want a %q check); got %v", tc.wantCheck, vs)
			}
		})
	}
}

// TestStatefulDeclarations pins which built-in codecs declare cross-epoch
// state — the declaration is part of the contract the sharded-async
// run-ahead relies on.
func TestStatefulDeclarations(t *testing.T) {
	want := map[string]bool{
		CodecFP32:     false,
		CodecUniform:  false,
		CodecTopK:     false,
		CodecRandom:   true,
		CodecAdaptive: true,
		CodecPipeGCN:  true,
		CodecSancus:   true,
		CodecEFQuant:  true,
		CodecDelta:    true,
	}
	cfg := codecConformConfig()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	for name, stateful := range want {
		f, err := LookupCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := f(&CodecEnv{Cfg: &cfg, Locals: dep.Locals, Rank: 0, InDim: ds.Features.Cols, Shared: &RunShared{}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sc, ok := c.(StatefulCodec)
		if got := ok && sc.Stateful(); got != stateful {
			t.Errorf("%s: Stateful() = %v, want %v", name, got, stateful)
		}
	}
}
