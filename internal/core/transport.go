package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// Transport is the device-side communication surface the trainer and the
// message codecs are written against. The in-process cluster.Device is the
// reference implementation; future backends (sharded clusters, async
// queues, RPC fabrics) satisfy the same contract without the training loop
// changing.
//
// Collective semantics follow package cluster: every collective must be
// entered by all devices of the runtime, payload buffers are owned by the
// receiver after the call, and simulated time is charged to the device
// clock (Raw* variants charge nothing — metrics sideband).
type Transport interface {
	// Rank is this device's id in [0, Size).
	Rank() int
	// Size is the number of devices in the runtime.
	Size() int
	// Clock is this device's simulated clock.
	Clock() *timing.Clock
	// Model is the shared hardware cost model.
	Model() *timing.CostModel
	// Rand is this device's private deterministic RNG.
	Rand() *tensor.RNG
	// Barrier aligns all devices (stragglers charged to Idle).
	Barrier()
	// RingAll2All exchanges per-destination buffers over the ring schedule,
	// charging Comm round by round.
	RingAll2All(payloads [][]byte) [][]byte
	// AllReduceSum sums matrices elementwise across devices (ring-allreduce
	// time model).
	AllReduceSum(ms []*tensor.Matrix)
	// GatherBytes collects every device's payload at root.
	GatherBytes(root int, payload []byte) [][]byte
	// ScatterBytes distributes payloads[i] from root to device i.
	ScatterBytes(root int, payloads [][]byte) []byte
	// BroadcastBytes sends root's payload to all devices (sequential
	// broadcast timing — SANCUS's pattern).
	BroadcastBytes(root int, payload []byte) []byte
	// StartBroadcast begins a split-phase broadcast and returns without
	// blocking; the handle's Wait delivers the payload and charges the
	// clock via timing.FinishDeferred. Start immediately followed by Wait
	// is bitwise identical to BroadcastBytes; compute issued between the
	// two hides wire time, recorded under timing.Overlap.
	StartBroadcast(root int, payload []byte) PendingCollective
	// StartScatter is the split-phase form of ScatterBytes under the same
	// start/wait contract as StartBroadcast.
	StartScatter(root int, payloads [][]byte) PendingCollective
	// RawAll2All moves buffers like RingAll2All but charges no time.
	RawAll2All(payloads [][]byte) [][]byte
	// RawAllGather shares one buffer from every device with every device,
	// charging no time.
	RawAllGather(payload []byte) [][]byte
}

// PendingCollective is the handle of an in-flight split-phase collective.
// Wait must be called exactly once per handle, in Start order (FIFO) —
// the completion schedule is part of the deterministic clock contract.
// It is an alias of the cluster-level handle so the reference backend's
// methods satisfy Transport directly.
type PendingCollective = cluster.PendingBytes

var _ Transport = (*cluster.Device)(nil)

// Runtime launches one Transport per device and runs a training body on
// each. It owns the aggregate measurements a run reports.
type Runtime interface {
	// Size is the device count.
	Size() int
	// Run executes body on every device concurrently; each device's RNG is
	// derived from seed and its rank. The first non-nil error is returned.
	Run(seed uint64, body func(Transport) error) error
	// Clocks returns the per-device simulated clocks (read after Run).
	Clocks() []*timing.Clock
	// BytesMoved returns per-(src,dst) payload byte totals.
	BytesMoved() [][]int64
}

// TransportSpec carries everything a RuntimeFactory needs to build one
// run's runtime. Backends ignore knobs they have no use for: the
// in-process cluster is always synchronous and fully parallel, so it reads
// only Parts and Model.
type TransportSpec struct {
	// Parts is the simulated device count.
	Parts int
	// Model is the hardware cost model (nil = timing.Default()).
	Model *timing.CostModel
	// Workers bounds how many devices execute concurrently on backends
	// that multiplex devices onto a worker pool (<= 0 = one per CPU).
	Workers int
	// Staleness is how many collective operations a device may run ahead
	// of the slowest straggler on async backends (0 = lockstep, matching
	// the in-process reference bit for bit).
	Staleness int
	// Overlap reports that the run's trainer uses the split-phase
	// schedule (Config.TransportOverlap). The built-in backends always
	// provide the split-phase methods, so they ignore it; custom
	// factories may inspect it.
	Overlap bool
	// SocketDir is where socket-backed backends (TransportProcSharded)
	// root their per-run Unix-domain socket directories; empty uses the
	// system temp directory. In-memory backends ignore it.
	SocketDir string
	// Faults is the run's materialized fault plan, or nil for a clean
	// run. Fault injection is applied centrally (the runtime is wrapped
	// so every device's charged collectives pass through the fault
	// schedule) and Model already reflects the plan's slowed links;
	// backends need not interpret the plan, but custom factories may
	// inspect it.
	Faults *chaos.FaultPlan
}

// RuntimeFactory builds a Runtime for one training run.
type RuntimeFactory func(spec TransportSpec) Runtime

// inprocessRuntime adapts cluster.Cluster to the Runtime interface.
type inprocessRuntime struct {
	clu *cluster.Cluster
}

func (r inprocessRuntime) Size() int               { return r.clu.Size() }
func (r inprocessRuntime) Clocks() []*timing.Clock { return r.clu.Clocks() }
func (r inprocessRuntime) BytesMoved() [][]int64   { return r.clu.BytesMoved() }
func (r inprocessRuntime) Run(seed uint64, body func(Transport) error) error {
	return r.clu.Run(seed, func(dev *cluster.Device) error { return body(dev) })
}

// TransportInprocess is the default transport: goroutine devices exchanging
// in-memory buffers under the simulated cost model.
const TransportInprocess = "inprocess"

var (
	transportMu       sync.RWMutex
	transportRegistry = map[string]RuntimeFactory{}
)

// RegisterTransport makes a runtime backend available under name.
// Registering a duplicate name panics (registration is an init-time
// programming decision, not a runtime condition).
func RegisterTransport(name string, f RuntimeFactory) {
	transportMu.Lock()
	defer transportMu.Unlock()
	if _, dup := transportRegistry[name]; dup {
		panic(fmt.Sprintf("core: transport %q registered twice", name))
	}
	transportRegistry[name] = f
}

// LookupTransport resolves a registered runtime backend.
func LookupTransport(name string) (RuntimeFactory, error) {
	transportMu.RLock()
	defer transportMu.RUnlock()
	f, ok := transportRegistry[name]
	if !ok {
		known := make([]string, 0, len(transportRegistry))
		for n := range transportRegistry {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown transport %q (have %v)", name, known)
	}
	return f, nil
}

// TransportNames lists the registered backends, sorted.
func TransportNames() []string {
	transportMu.RLock()
	defer transportMu.RUnlock()
	names := make([]string, 0, len(transportRegistry))
	for n := range transportRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterTransport(TransportInprocess, func(spec TransportSpec) Runtime {
		return inprocessRuntime{clu: cluster.New(spec.Parts, spec.Model)}
	})
}
