package core

import (
	"math"
	"testing"

	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/synthetic"
	"repro/internal/tensor"
)

func deployTiny(t *testing.T, parts int) *Deployment {
	t.Helper()
	ds := synthetic.MustLoad("tiny", 1)
	return Deploy(ds, parts, GCN, partition.Block)
}

func TestWidthTableShapes(t *testing.T) {
	dep := deployTiny(t, 3)
	for _, lg := range dep.Locals {
		fwd := newWidthTable(lg, true, quant.B4)
		bwd := newWidthTable(lg, false, quant.B4)
		for d := 0; d < lg.Parts; d++ {
			if len(fwd.send[d]) != len(lg.SendTo[d]) || len(fwd.recv[d]) != len(lg.RecvFrom[d]) {
				t.Fatalf("fwd table shape mismatch for pair %d", d)
			}
			if len(bwd.send[d]) != len(lg.RecvFrom[d]) || len(bwd.recv[d]) != len(lg.SendTo[d]) {
				t.Fatalf("bwd table shape mismatch for pair %d", d)
			}
		}
	}
}

func TestAssignStateAlphaSq(t *testing.T) {
	dep := deployTiny(t, 2)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	lg := dep.Locals[0]
	st := newAssignState(&cfg, lg, dep.Dataset.Features.Cols)
	if len(st.alphaSq) != lg.NumHalo {
		t.Fatalf("alphaSq length %d, want %d", len(st.alphaSq), lg.NumHalo)
	}
	// Each halo slot that is actually referenced by an edge must have a
	// positive Σα² (GCN sym-norm weights are positive).
	referenced := make([]bool, lg.NumHalo)
	for u := 0; u < lg.NumLocal; u++ {
		for _, v := range lg.Adj.Neighbors(u) {
			if int(v) >= lg.NumLocal {
				referenced[int(v)-lg.NumLocal] = true
			}
		}
	}
	for s, ref := range referenced {
		if ref && st.alphaSq[s] <= 0 {
			t.Fatalf("referenced halo slot %d has Σα² = %v", s, st.alphaSq[s])
		}
		if !ref && st.alphaSq[s] != 0 {
			t.Fatalf("unreferenced halo slot %d has Σα² = %v", s, st.alphaSq[s])
		}
	}
}

func TestTraceForwardRanges(t *testing.T) {
	dep := deployTiny(t, 2)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	lg := dep.Locals[0]
	st := newAssignState(&cfg, lg, dep.Dataset.Features.Cols)
	x := tensor.New(lg.NumLocal, dep.Dataset.Features.Cols)
	x.FillUniform(tensor.NewRNG(1), -3, 3)
	st.traceForward(0, x)
	for q, rows := range lg.SendTo {
		for j, r := range rows {
			mn, mx := tensor.MinMax(x.Row(int(r)))
			want := float64(mx-mn) * float64(mx-mn)
			if math.Abs(st.fwdRange2[0][q][j]-want) > 1e-9 {
				t.Fatalf("traced range² %v, want %v", st.fwdRange2[0][q][j], want)
			}
		}
	}
}

func TestRandomWidthsAgreeAcrossEndpoints(t *testing.T) {
	// The uniform-random ablation has no master scatter: sender and
	// receiver derive each pair's widths independently and must agree, or
	// streams would decode as garbage.
	dep := deployTiny(t, 3)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	states := make([]*assignState, 3)
	for r := 0; r < 3; r++ {
		states[r] = newAssignState(&cfg, dep.Locals[r], dep.Dataset.Features.Cols)
		states[r].installRandomWidths(7, 2, 3, r)
	}
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			for l := 0; l < cfg.Layers; l++ {
				send := states[src].fwdW[l].send[dst]
				recv := states[dst].fwdW[l].recv[src]
				if len(send) != len(recv) {
					t.Fatalf("layer %d pair %d→%d: width lengths differ", l, src, dst)
				}
				for j := range send {
					if send[j] != recv[j] {
						t.Fatalf("layer %d pair %d→%d slot %d: sender %d receiver %d",
							l, src, dst, j, send[j], recv[j])
					}
				}
			}
		}
	}
}

func TestInstallUniformWidths(t *testing.T) {
	dep := deployTiny(t, 2)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	st := newAssignState(&cfg, dep.Locals[0], dep.Dataset.Features.Cols)
	st.installUniformWidths(quant.B4)
	for l := 0; l < cfg.Layers; l++ {
		for _, ws := range st.fwdW[l].send {
			for _, w := range ws {
				if w != quant.B4 {
					t.Fatalf("width %d after installUniformWidths", w)
				}
			}
		}
	}
}

func TestAssignWireRoundTrip(t *testing.T) {
	in := traceMsg{
		Rank:      2,
		RecvAlpha: [][]float64{{1, 2}, nil},
		Fwd:       [][][]float64{{{0.5}, {1.5, 2.5}}},
		Bwd:       [][][]float64{{nil, {3}}},
	}
	var out traceMsg
	if err := decodeTrace(encodeTrace(&in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Rank != 2 || out.Fwd[0][1][1] != 2.5 || out.Bwd[0][1][0] != 3 {
		t.Fatalf("trace round trip mangled: %+v", out)
	}

	win := widthMsg{
		FwdSend: [][][]quant.BitWidth{{{quant.B2, quant.B8}, nil}},
		FwdRecv: [][][]quant.BitWidth{{nil, {quant.B4}}},
		BwdSend: [][][]quant.BitWidth{},
		BwdRecv: [][][]quant.BitWidth{{{quant.B8}}},
	}
	enc := encodeWidths(&win)
	var wout widthMsg
	if err := decodeWidths(enc, &wout); err != nil {
		t.Fatal(err)
	}
	if wout.FwdSend[0][0][0] != quant.B2 || wout.FwdSend[0][0][1] != quant.B8 ||
		wout.FwdRecv[0][1][0] != quant.B4 || wout.BwdRecv[0][0][0] != quant.B8 {
		t.Fatalf("width round trip mangled: %+v", wout)
	}

	// Truncated payloads must error, never panic or over-allocate: the
	// length prefixes are validated against the remaining bytes.
	tr := encodeTrace(&in)
	for _, cut := range []int{0, 1, 5, len(tr) / 2, len(tr) - 1} {
		var m traceMsg
		if err := decodeTrace(tr[:cut], &m); err == nil {
			t.Errorf("trace truncated at %d decoded without error", cut)
		}
	}
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		var m widthMsg
		if err := decodeWidths(enc[:cut], &m); err == nil {
			t.Errorf("widths truncated at %d decoded without error", cut)
		}
	}
}

func TestAdaQPWidthsAdaptAfterAssignment(t *testing.T) {
	// After one AdaQP run with a mid-range λ, the assignment should not be
	// the trivial all-8-bit default everywhere: some messages must have
	// been compressed below 8 bits.
	ds := synthetic.MustLoad("tiny", 1)
	cfg := tinyConfig(AdaQP)
	cfg.Lambda = 0.3
	res, err := Train(ds, 3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Quantized epochs move fewer bytes than the FP bootstrap epoch would:
	// infer adaptation from traffic.
	fp := quant.FullPrecisionSize(1, 1)
	_ = fp
	if res.WallClock <= 0 {
		t.Fatal("no time simulated")
	}
	var q int64
	for _, row := range res.BytesMoved {
		for _, b := range row {
			q += b
		}
	}
	if q == 0 {
		t.Fatal("no traffic recorded")
	}
}
