package core

import (
	"bytes"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/timing"
)

// This file is the chaos mode of the transport conformance suite: the
// collective contract re-verified while a chaos.FaultPlan injects
// stragglers, transient collective failures and a device crash. The fault
// wrapper (chaos_transport.go) is part of the contract surface — a backend
// that conforms cleanly but breaks under injection (wrong payloads once
// clocks skew, recycled buffers during retries, missing charges the
// wrapper depends on) is still unfit to train on. The checks:
//
//   - chaos-delivery / chaos-ownership: payload delivery and receiver
//     buffer ownership must survive every fault plan unchanged — faults
//     perturb simulated time, never data.
//   - chaos-clock-parity / chaos-byte-accounting: the scripted workload
//     under each plan must charge exactly what the wrapped in-process
//     reference charges, and the byte ledger must equal the fault-free
//     ledger (retries re-charge time, not bytes).
//   - chaos-retry-charge: the transient-failure schedule's exact cost —
//     per failed attempt, the lost transfer re-charged to Comm plus the
//     exponential backoff charged to Idle — verified against a hand
//     computation on a single collective.
//   - chaos-crash-recovery: a full training run with a scheduled crash
//     must replay the doomed epoch bit-identically (same loss curve and
//     final accuracy as the fault-free run) while wall-clock grows by the
//     restart downtime.

// chaosConformPlans is the fault-plan matrix every backend must survive:
// compute stragglers, link stragglers, transient failures, and all three
// at once.
func chaosConformPlans() []struct {
	Name string
	Spec chaos.Spec
} {
	return []struct {
		Name string
		Spec chaos.Spec
	}{
		{"straggler", chaos.Spec{Seed: 11, Stragglers: 1, SlowFactor: 3}},
		{"link", chaos.Spec{Seed: 12, Stragglers: 2, SlowFactor: 2, LinkFactor: 4}},
		{"transient", chaos.Spec{Seed: 13, FailRate: 0.4, MaxRetries: 2, Backoff: 0.01}},
		{"combined", chaos.Spec{Seed: 14, Stragglers: 2, SlowFactor: 2, LinkFactor: 3, FailRate: 0.3, MaxRetries: 3, Backoff: 0.02}},
	}
}

// ConformTransportChaos verifies a runtime backend against the Transport
// contract under fault injection with parts devices. It returns nil when
// the backend conforms; each Violation pinpoints a clause broken under
// faults. parts >= 2 is required to exercise cross-device traffic.
func ConformTransportChaos(f RuntimeFactory, parts int) []Violation {
	if parts < 2 {
		return []Violation{{Check: "setup", Detail: fmt.Sprintf("chaos conformance needs parts >= 2, got %d", parts)}}
	}
	col := &vioCollector{}
	for _, pc := range chaosConformPlans() {
		plan, err := chaos.NewPlan(pc.Spec, parts)
		if err != nil {
			col.addf("setup", "building %s plan: %v", pc.Name, err)
			continue
		}
		checkChaosDelivery(f, parts, plan, pc.Name, col)
		checkChaosParity(f, parts, plan, pc.Name, col)
	}
	checkChaosRetryCharge(f, parts, col)
	checkChaosCrashRecovery(f, parts, col)
	return col.v
}

// checkChaosDelivery: two rounds of RingAll2All under the plan must
// deliver exact payloads and leave the first round's buffers untouched —
// injection must never corrupt data or recycle receiver-owned memory.
func checkChaosDelivery(f RuntimeFactory, parts int, plan *chaos.FaultPlan, name string, col *vioCollector) {
	sizes := ringSizes(parts)
	runBody(faultFactory(f, plan, nil), parts, col, func(dev Transport) error {
		r := dev.Rank()
		makePayloads := func(round int) [][]byte {
			p := make([][]byte, parts)
			for q := range p {
				if q != r {
					p[q] = pattern(sizes[r][q], r, q, round)
				}
			}
			return p
		}
		first := dev.RingAll2All(makePayloads(0))
		for p := 0; p < parts; p++ {
			if p == r {
				continue
			}
			if !bytes.Equal(first[p], pattern(sizes[p][r], p, r, 0)) {
				col.addf("chaos-delivery", "plan %s: rank %d received wrong payload from %d", name, r, p)
			}
		}
		snapshot := make([][]byte, parts)
		for p, b := range first {
			snapshot[p] = append([]byte(nil), b...)
		}
		second := dev.RingAll2All(makePayloads(1))
		for p := 0; p < parts; p++ {
			if p == r {
				continue
			}
			if !bytes.Equal(first[p], snapshot[p]) {
				col.addf("chaos-ownership", "plan %s: rank %d's buffer from %d was overwritten during a faulted collective", name, r, p)
			}
			if !bytes.Equal(second[p], pattern(sizes[p][r], p, r, 1)) {
				col.addf("chaos-delivery", "plan %s: rank %d received wrong second-round payload from %d", name, r, p)
			}
		}
		return nil
	})
}

// checkChaosParity runs the scripted mixed-collective workload under the
// plan on the candidate and on the in-process reference — both through the
// same fault wrapper — and requires identical per-device clocks per
// category. The byte ledger must additionally equal the fault-free
// reference's: faults charge simulated time only.
func checkChaosParity(f RuntimeFactory, parts int, plan *chaos.FaultPlan, name string, col *vioCollector) {
	ref, err := LookupTransport(TransportInprocess)
	if err != nil {
		col.addf("chaos-clock-parity", "no in-process reference registered: %v", err)
		return
	}
	cand := runBody(faultFactory(f, plan, nil), parts, col, conformScript)
	want := runBody(faultFactory(ref, plan, nil), parts, col, conformScript)
	clean := runBody(ref, parts, col, conformScript)
	cats := []timing.Category{timing.Comm, timing.Comp, timing.Quant, timing.Idle, timing.Assign, timing.Overlap}
	for r := 0; r < parts; r++ {
		got, exp := cand.Clocks()[r], want.Clocks()[r]
		if got.Now() != exp.Now() {
			col.addf("chaos-clock-parity", "plan %s: rank %d clock %v, wrapped reference %v", name, r, got.Now(), exp.Now())
		}
		for _, cat := range cats {
			if got.Spent(cat) != exp.Spent(cat) {
				col.addf("chaos-clock-parity", "plan %s: rank %d charged %v to %v, wrapped reference %v", name, r, got.Spent(cat), cat, exp.Spent(cat))
			}
		}
	}
	gotB, cleanB := cand.BytesMoved(), clean.BytesMoved()
	for s := range cleanB {
		for d := range cleanB[s] {
			if gotB[s][d] != cleanB[s][d] {
				col.addf("chaos-byte-accounting", "plan %s: pair (%d,%d) moved %d bytes under faults, fault-free reference %d — retries must re-charge time, not bytes", name, s, d, gotB[s][d], cleanB[s][d])
			}
		}
	}
}

// checkChaosRetryCharge verifies the transient-failure cost model exactly:
// one RingAll2All with no compute skew, a failure-only plan, and the
// expected clocks computed by hand — per scheduled failure the collective's
// Comm charge repeats and the backoff doubles into Idle. The expected
// values replicate the wrapper's accumulation order so equality is
// bitwise.
func checkChaosRetryCharge(f RuntimeFactory, parts int, col *vioCollector) {
	// A fixed probe seed could land on a schedule with no failures for
	// this parts count; scan for the first seed that fails somewhere so
	// the check always exercises the retry path.
	var plan *chaos.FaultPlan
	for seed := uint64(21); seed < 60; seed++ {
		p, err := chaos.NewPlan(chaos.Spec{Seed: seed, FailRate: 0.5, MaxRetries: 2, Backoff: 0.01}, parts)
		if err != nil {
			col.addf("setup", "building retry plan: %v", err)
			return
		}
		for r := 0; r < parts; r++ {
			if p.Failures(r, 0) > 0 {
				plan = p
				break
			}
		}
		if plan != nil {
			break
		}
	}
	if plan == nil {
		col.addf("setup", "no retry-plan seed produced a failure at parts=%d", parts)
		return
	}
	sizes := ringSizes(parts)
	perCall := cluster.All2AllTime(timing.Default(), sizes)
	runBody(faultFactory(f, plan, nil), parts, col, func(dev Transport) error {
		r := dev.Rank()
		payloads := make([][]byte, parts)
		for q := range payloads {
			if q != r {
				payloads[q] = pattern(sizes[r][q], r, q, 0)
			}
		}
		dev.RingAll2All(payloads)
		wantComm := perCall
		var wantIdle timing.Seconds
		backoff := timing.Seconds(plan.Spec.Backoff)
		for i := 0; i < plan.Failures(r, 0); i++ {
			wantIdle += backoff
			wantComm += perCall
			backoff *= 2
		}
		if comm := dev.Clock().Spent(timing.Comm); comm != wantComm {
			col.addf("chaos-retry-charge", "rank %d charged %v to Comm after %d scheduled failures, want %v (the lost transfer re-charged per retry)", r, comm, plan.Failures(r, 0), wantComm)
		}
		if idle := dev.Clock().Spent(timing.Idle); idle != wantIdle {
			col.addf("chaos-retry-charge", "rank %d charged %v to Idle after %d scheduled failures, want exponential backoff %v", r, idle, plan.Failures(r, 0), wantIdle)
		}
		return nil
	})
}

// checkChaosCrashRecovery trains a small fixed-seed scenario with a
// scheduled device crash and requires the recovery to be invisible in the
// results: loss curve and accuracies bit-identical to the fault-free run,
// exactly one crash counted, and wall-clock grown by the downtime.
func checkChaosCrashRecovery(f RuntimeFactory, parts int, col *vioCollector) {
	ds, err := synthetic.Load("tiny", synthetic.Scale(1))
	if err != nil {
		col.addf("setup", "loading conformance dataset: %v", err)
		return
	}
	dep := Deploy(ds, parts, GCN, partition.Block)
	cfg := codecConformConfig()
	cfg.transportFactory = f
	cfg.isolateArena = true
	ref, err := TrainDeployed(dep, cfg, nil)
	if err != nil {
		col.addf("chaos-crash-recovery", "fault-free training failed: %v", err)
		return
	}
	crashCfg := cfg
	crashCfg.Faults = chaos.Spec{Seed: 5, CrashEpoch: 2, RestartPenalty: 1000}
	crash, err := TrainDeployed(dep, crashCfg, nil)
	if err != nil {
		col.addf("chaos-crash-recovery", "training with a scheduled crash failed: %v", err)
		return
	}
	// The doomed epoch's collectives genuinely re-move payload bytes (the
	// replay is real traffic), so compare everything except the ledger.
	cmp := *crash
	cmp.BytesMoved = ref.BytesMoved
	if desc := runDivergence(ref, &cmp, false); desc != "" {
		col.addf("chaos-crash-recovery", "crash/restart changed the training results (%s); the replayed epoch must be bit-identical", desc)
	}
	if crash.Faults.Crashes != 1 {
		col.addf("chaos-crash-recovery", "run counted %d crashes, want exactly 1", crash.Faults.Crashes)
	}
	if crash.WallClock <= ref.WallClock {
		col.addf("chaos-crash-recovery", "crashed run wall-clock %v not above fault-free %v — restart downtime was not charged", crash.WallClock, ref.WallClock)
	}
}
