package core

import (
	"fmt"
	"math"

	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// SANCUS (Peng et al., 2022) reimplementation: instead of all2all halo
// exchange, each device *broadcasts* its boundary-node embeddings to every
// other device, sequentially — the pattern the paper identifies as less
// efficient than ring all2all (§5.1). Staleness-awareness: a device skips
// its broadcast while its boundary embeddings have drifted less than a
// threshold since the last broadcast (receivers keep using the cached
// historical embeddings), re-broadcasting at the latest every
// SancusMaxStale epochs. Historical embeddings are treated as constants in
// the backward pass, so no embedding gradients cross devices.

// sancusTopology is the static broadcast layout shared by all devices.
type sancusTopology struct {
	// boundary[p] lists p's boundary rows (union of every SendTo set),
	// sorted ascending — the broadcast payload row order.
	boundary [][]int32
	// recvMap[p][d][j] is the position within boundary[p] of the row that
	// fills device d's halo slot RecvFrom[p][j].
	recvMap [][][]int32
}

func buildSancusTopology(lgs []*partition.LocalGraph) *sancusTopology {
	n := len(lgs)
	t := &sancusTopology{
		boundary: make([][]int32, n),
		recvMap:  make([][][]int32, n),
	}
	for p := 0; p < n; p++ {
		lg := lgs[p]
		// Dense position table over p's local rows (SendTo entries are local
		// row indices): dedup and index without maps or sorting — walking
		// the table in row order yields the sorted boundary directly.
		pos := make([]int32, lg.NumLocal)
		for i := range pos {
			pos[i] = -1
		}
		count := 0
		for q := 0; q < n; q++ {
			for _, r := range lg.SendTo[q] {
				if pos[r] < 0 {
					pos[r] = 0
					count++
				}
			}
		}
		rows := make([]int32, 0, count)
		for r := 0; r < lg.NumLocal; r++ {
			if pos[r] == 0 {
				pos[r] = int32(len(rows))
				rows = append(rows, int32(r))
			}
		}
		t.boundary[p] = rows
		t.recvMap[p] = make([][]int32, n)
		for d := 0; d < n; d++ {
			if d == p {
				continue
			}
			m := make([]int32, len(lg.SendTo[d]))
			for j, r := range lg.SendTo[d] {
				m[j] = pos[r]
			}
			t.recvMap[p][d] = m
		}
	}
	return t
}

// exchange fills xFull's halo rows from the per-layer historical cache,
// refreshing it with any broadcasts that happened this epoch.
//
// When overlap is set the broadcasts run split-phase: all n are started
// before any is consumed, and layer l's central-graph forward compute is
// charged inside the open wire window — the paper's
// computation–communication parallelization — so the wire time each
// device would have idled through lands under timing.Overlap instead.
// Payload construction, routing and decode order are identical either
// way, so loss curves do not depend on the schedule; the caller charges
// the remaining Marginal (overlap) or Total (blocking) compute.
func (c *sancusCodec) exchange(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix, overlap bool) error {
	lg := env.Graph
	n := env.Dev.Size()
	rank := env.Dev.Rank()
	if c.cache[l] == nil || c.cache[l].Cols != xFull.Cols {
		c.cache[l] = tensor.New(lg.NumHalo, xFull.Cols)
	}
	a := env.Scratch
	myBoundary := a.GetMat(len(c.topo.boundary[rank]), h.Cols)
	gatherRowsInto(myBoundary, h, c.topo.boundary[rank])

	broadcast := true
	if epoch > 0 && c.last[l] != nil && c.last[l].SameShape(myBoundary) {
		drift := subFrobNorm(myBoundary, c.last[l])
		norm := myBoundary.FrobeniusNorm() + 1e-12
		broadcast = drift/norm >= env.Cfg.SancusDrift || c.age[l]+1 >= env.Cfg.SancusMaxStale
	}

	payloadFor := func(src int) []byte {
		if src == rank && broadcast && len(c.topo.boundary[rank]) > 0 {
			// Broadcast payloads are shared by every receiver and may be
			// re-read under run-ahead, so they are never pooled.
			return appendAllRows(make([]byte, 0, 4*len(myBoundary.Data)), myBoundary)
		}
		return nil
	}
	var pending []PendingCollective
	if overlap {
		for src := 0; src < n; src++ {
			pending = append(pending, env.Dev.StartBroadcast(src, payloadFor(src)))
		}
		env.Dev.Clock().Advance(timing.Comp, env.ForwardCosts(l).Central)
	}
	for src := 0; src < n; src++ {
		var got []byte
		if overlap {
			got = pending[src].Wait()
		} else {
			got = env.Dev.BroadcastBytes(src, payloadFor(src))
		}
		if src == rank || len(got) == 0 || len(lg.RecvFrom[src]) == 0 {
			continue
		}
		nRows := len(c.topo.boundary[src])
		tmp := a.GetMat(nRows, xFull.Cols)
		if err := bytesToAllRows(got, tmp); err != nil {
			return fmt.Errorf("sancus: rank %d from %d: %w", rank, src, err)
		}
		cache := c.cache[l]
		for j, slot := range lg.RecvFrom[src] {
			copy(cache.Row(int(slot)), tmp.Row(int(c.topo.recvMap[src][rank][j])))
		}
		a.PutMat(tmp)
	}
	if broadcast {
		if c.last[l] != nil && c.last[l].SameShape(myBoundary) {
			c.last[l].CopyFrom(myBoundary)
		} else {
			c.last[l] = myBoundary.Clone()
		}
		c.age[l] = 0
	} else {
		c.age[l]++
	}
	a.PutMat(myBoundary)
	for i := 0; i < lg.NumHalo; i++ {
		copy(xFull.Row(lg.NumLocal+i), c.cache[l].Row(i))
	}
	return nil
}

// subFrobNorm returns ‖a−b‖_F without materializing the difference,
// computing float32 element differences exactly as tensor.Sub would.
func subFrobNorm(a, b *tensor.Matrix) float64 {
	var s float64
	for i, v := range a.Data {
		d := float64(v - b.Data[i])
		s += d * d
	}
	return math.Sqrt(s)
}
