package core

import (
	"fmt"
	"sort"

	"repro/internal/partition"
	"repro/internal/tensor"
)

// SANCUS (Peng et al., 2022) reimplementation: instead of all2all halo
// exchange, each device *broadcasts* its boundary-node embeddings to every
// other device, sequentially — the pattern the paper identifies as less
// efficient than ring all2all (§5.1). Staleness-awareness: a device skips
// its broadcast while its boundary embeddings have drifted less than a
// threshold since the last broadcast (receivers keep using the cached
// historical embeddings), re-broadcasting at the latest every
// SancusMaxStale epochs. Historical embeddings are treated as constants in
// the backward pass, so no embedding gradients cross devices.

// sancusTopology is the static broadcast layout shared by all devices.
type sancusTopology struct {
	// boundary[p] lists p's boundary rows (union of every SendTo set),
	// sorted ascending — the broadcast payload row order.
	boundary [][]int32
	// recvMap[p][d][j] is the position within boundary[p] of the row that
	// fills device d's halo slot RecvFrom[p][j].
	recvMap [][][]int32
}

func buildSancusTopology(lgs []*partition.LocalGraph) *sancusTopology {
	n := len(lgs)
	t := &sancusTopology{
		boundary: make([][]int32, n),
		recvMap:  make([][][]int32, n),
	}
	for p := 0; p < n; p++ {
		seen := map[int32]bool{}
		var rows []int32
		for q := 0; q < n; q++ {
			for _, r := range lgs[p].SendTo[q] {
				if !seen[r] {
					seen[r] = true
					rows = append(rows, r)
				}
			}
		}
		sortInt32(rows)
		t.boundary[p] = rows
		pos := make(map[int32]int32, len(rows))
		for i, r := range rows {
			pos[r] = int32(i)
		}
		t.recvMap[p] = make([][]int32, n)
		for d := 0; d < n; d++ {
			if d == p {
				continue
			}
			m := make([]int32, len(lgs[p].SendTo[d]))
			for j, r := range lgs[p].SendTo[d] {
				m[j] = pos[r]
			}
			t.recvMap[p][d] = m
		}
	}
	return t
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// exchange fills xFull's halo rows from the per-layer historical cache,
// refreshing it with any broadcasts that happened this epoch.
func (c *sancusCodec) exchange(env *ExchangeEnv, epoch, l int, h, xFull *tensor.Matrix) error {
	lg := env.Graph
	n := env.Dev.Size()
	rank := env.Dev.Rank()
	if c.cache[l] == nil || c.cache[l].Cols != xFull.Cols {
		c.cache[l] = tensor.New(lg.NumHalo, xFull.Cols)
	}
	myBoundary := h.GatherRows(int32sToInts(c.topo.boundary[rank]))

	broadcast := true
	if epoch > 0 && c.last[l] != nil && c.last[l].SameShape(myBoundary) {
		drift := tensor.Sub(myBoundary, c.last[l]).FrobeniusNorm()
		norm := myBoundary.FrobeniusNorm() + 1e-12
		broadcast = drift/norm >= env.Cfg.SancusDrift || c.age[l]+1 >= env.Cfg.SancusMaxStale
	}

	for src := 0; src < n; src++ {
		var payload []byte
		if src == rank && broadcast && len(c.topo.boundary[rank]) > 0 {
			payload = rowsToBytes(myBoundary, allRows(myBoundary.Rows))
		}
		got := env.Dev.BroadcastBytes(src, payload)
		if src == rank || len(got) == 0 || len(lg.RecvFrom[src]) == 0 {
			continue
		}
		nRows := len(c.topo.boundary[src])
		tmp := tensor.New(nRows, xFull.Cols)
		if err := bytesToRows(got, tmp, allRows(nRows), 0); err != nil {
			return fmt.Errorf("sancus: rank %d from %d: %w", rank, src, err)
		}
		cache := c.cache[l]
		for j, slot := range lg.RecvFrom[src] {
			copy(cache.Row(int(slot)), tmp.Row(int(c.topo.recvMap[src][rank][j])))
		}
	}
	if broadcast {
		c.last[l] = myBoundary.Clone()
		c.age[l] = 0
	} else {
		c.age[l]++
	}
	for i := 0; i < lg.NumHalo; i++ {
		copy(xFull.Row(lg.NumLocal+i), c.cache[l].Row(i))
	}
	return nil
}

func allRows(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func int32sToInts(a []int32) []int {
	out := make([]int, len(a))
	for i, v := range a {
		out[i] = int(v)
	}
	return out
}
