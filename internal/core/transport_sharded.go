package core

import (
	"fmt"
	goruntime "runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// TransportShardedAsync is the sharded async runtime: N simulated devices
// multiplexed onto a bounded worker pool, with non-blocking sends that let
// fast devices run ahead of stragglers up to a configurable staleness
// bound.
//
// Scheduling model: every device is a goroutine, but only Workers of them
// execute at a time — a device entering a collective wait yields its
// execution slot, so the pool can be far smaller than the device count
// without deadlocking (that is the sharding: device state is cheap, worker
// slots model the machines actually running them).
//
// Data model: collectives are sequence-numbered per device. Payloads are
// posted into a shared store keyed by (sequence, source) and matched
// exactly — a receiver always gets the payload its peer produced for the
// same collective, never stale data, so training results are bit-identical
// to the in-process cluster at every staleness bound.
//
// Time model: at Staleness 0 every collective is a full rendezvous charged
// exactly like package cluster (entry gap to Idle, transfer formulas to
// Comm), so simulated clocks are also bit-identical to the reference. At
// Staleness S > 0 the one-to-many collectives relax: a gather sender
// charges only its own transfer and moves on, a scatter/broadcast receiver
// waits only for the root — devices may run up to S collectives ahead of
// the slowest straggler before backpressure blocks them. The same cost
// model is charged throughout; what changes is how much Idle the stragglers
// inflict on everyone else.
const TransportShardedAsync = "sharded-async"

func init() {
	RegisterTransport(TransportShardedAsync, newShardedRuntime)
}

// Collective op tags, used to catch devices whose collective sequences
// diverge (a contract violation that would otherwise corrupt payloads).
const (
	opBarrier   = "Barrier"
	opRing      = "RingAll2All"
	opAllReduce = "AllReduceSum"
	opGather    = "GatherBytes"
	opScatter   = "ScatterBytes"
	opBroadcast = "BroadcastBytes"
	opRawRing   = "RawAll2All"
	opRawGather = "RawAllGather"
	// Split-phase ops have their own tags: a run where one device issues
	// the blocking form and another the split form of the same collective
	// has diverged and must panic, not corrupt payloads.
	opStartBroadcast = "StartBroadcast"
	opStartScatter   = "StartScatter"
)

// shardedAbort is the sentinel panic that unwinds device goroutines when a
// peer's body fails, so a mid-run error cannot strand the others in a wait.
type shardedAbort struct{}

// shardedColl is one sequence number's collective: who has posted, with
// what payload, and at what simulated time.
type shardedColl struct {
	op      string
	arrived int
	posted  []bool
	at      []timing.Seconds   // poster's clock at post time
	bufs    [][][]byte         // per-source payload vectors
	mats    [][]*tensor.Matrix // per-source matrices (allreduce)
}

func (c *shardedColl) maxAt() timing.Seconds {
	var mx timing.Seconds
	for _, t := range c.at {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// shardedState is shared by all devices of one sharded-async runtime.
type shardedState struct {
	n     int
	stale int
	model *timing.CostModel

	clocks []*timing.Clock
	tokens chan struct{} // worker pool: one buffered slot per worker

	mu      sync.Mutex
	cond    *sync.Cond
	colls   map[int]*shardedColl // keyed by collective sequence number
	done    []int                // collectives completed per device
	minDone int
	pruned  int // all sequences below this have been deleted

	bytesMoved [][]int64
	aborted    bool
}

func newShardedRuntime(spec TransportSpec) Runtime {
	n := spec.Parts
	if n <= 0 {
		panic("core: sharded-async needs at least one device")
	}
	model := spec.Model
	if model == nil {
		model = timing.Default()
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	stale := spec.Staleness
	if stale < 0 {
		stale = 0
	}
	s := &shardedState{
		n:          n,
		stale:      stale,
		model:      model,
		clocks:     make([]*timing.Clock, n),
		tokens:     make(chan struct{}, workers),
		colls:      make(map[int]*shardedColl),
		done:       make([]int, n),
		bytesMoved: make([][]int64, n),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.tokens <- struct{}{}
	}
	for i := range s.clocks {
		s.clocks[i] = timing.NewClock()
		s.bytesMoved[i] = make([]int64, n)
	}
	return &shardedRuntime{s: s}
}

// shardedRuntime adapts shardedState to the Runtime interface.
type shardedRuntime struct {
	s *shardedState
}

func (r *shardedRuntime) Size() int               { return r.s.n }
func (r *shardedRuntime) Clocks() []*timing.Clock { return r.s.clocks }

func (r *shardedRuntime) BytesMoved() [][]int64 {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]int64, s.n)
	for i := range out {
		out[i] = append([]int64(nil), s.bytesMoved[i]...)
	}
	return out
}

func (r *shardedRuntime) Run(seed uint64, body func(Transport) error) error {
	s := r.s
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for rank := 0; rank < s.n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(shardedAbort); ok {
						return // a peer's body failed; its error is reported
					}
					panic(p)
				}
			}()
			s.acquire()
			defer s.release()
			dev := &shardedDevice{s: s, rank: rank, rng: cluster.DeviceRNG(seed, rank)}
			if err := body(dev); err != nil {
				errs[rank] = err
				s.abort()
			}
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *shardedState) acquire() { <-s.tokens }
func (s *shardedState) release() { s.tokens <- struct{}{} }

func (s *shardedState) abort() {
	s.mu.Lock()
	s.aborted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// yieldWait blocks until pred holds (evaluated under the state lock),
// releasing this device's worker slot while blocked so a pool smaller than
// the device count cannot deadlock. Panics with shardedAbort if the run
// was aborted.
func (s *shardedState) yieldWait(pred func() bool) {
	s.mu.Lock()
	for !s.aborted && !pred() {
		s.release()
		s.cond.Wait()
		s.mu.Unlock()
		s.acquire()
		s.mu.Lock()
	}
	aborted := s.aborted
	s.mu.Unlock()
	if aborted {
		panic(shardedAbort{})
	}
}

// collLocked returns (creating on demand) sequence seq's collective.
// Callers hold s.mu.
func (s *shardedState) collLocked(seq int, op string) *shardedColl {
	c, ok := s.colls[seq]
	if !ok {
		c = &shardedColl{
			op:     op,
			posted: make([]bool, s.n),
			at:     make([]timing.Seconds, s.n),
			bufs:   make([][][]byte, s.n),
			mats:   make([][]*tensor.Matrix, s.n),
		}
		s.colls[seq] = c
	}
	if c.op != op {
		panic(fmt.Sprintf("core: sharded-async collective %d is %s on one device and %s on another (devices diverged)", seq, c.op, op))
	}
	return c
}

func (s *shardedState) addBytes(src, dst int, n int) {
	s.mu.Lock()
	s.bytesMoved[src][dst] += int64(n)
	s.mu.Unlock()
}

// shardedDevice is one device's Transport endpoint.
type shardedDevice struct {
	s    *shardedState
	rank int
	seq  int // next collective sequence number
	rng  *tensor.RNG

	// sizes is reusable accounting scratch for RingAll2All: it is only read
	// between this device's post and complete of one sequence.
	sizes [][]int
	// sums is reusable AllReduceSum reduction scratch, private to this
	// device (the posted matrices are clones, so reuse here is safe).
	sums []*tensor.Matrix
}

// sizesScratch returns the n×n RingAll2All size table, reused across calls.
func (d *shardedDevice) sizesScratch(n int) [][]int {
	if len(d.sizes) != n {
		d.sizes = make([][]int, n)
		for i := range d.sizes {
			d.sizes[i] = make([]int, n)
		}
	}
	return d.sizes
}

func (d *shardedDevice) Rank() int                { return d.rank }
func (d *shardedDevice) Size() int                { return d.s.n }
func (d *shardedDevice) Clock() *timing.Clock     { return d.s.clocks[d.rank] }
func (d *shardedDevice) Model() *timing.CostModel { return d.s.model }
func (d *shardedDevice) Rand() *tensor.RNG        { return d.rng }

// post enters this device's next collective: it waits out the run-ahead
// bound (a device may be at most Staleness collectives ahead of the
// slowest device's last completed one), then publishes its payload and
// simulated arrival time.
func (d *shardedDevice) post(op string, bufs [][]byte, mats []*tensor.Matrix) int {
	s := d.s
	seq := d.seq
	d.seq++
	s.yieldWait(func() bool { return seq-s.minDone <= s.stale })
	s.mu.Lock()
	c := s.collLocked(seq, op)
	c.posted[d.rank] = true
	c.at[d.rank] = d.Clock().Now()
	c.bufs[d.rank] = bufs
	c.mats[d.rank] = mats
	c.arrived++
	s.cond.Broadcast()
	s.mu.Unlock()
	return seq
}

// postNoWait publishes this device's part of a split-phase collective
// without entering the staleness backpressure wait: Start is non-blocking
// by contract (a device may hold several split handles in flight, and at
// staleness 0 waiting here would deadlock the start-all/wait-all
// schedule). The collective still counts against the bound once its Wait
// completes it, so blocking collectives issued afterwards observe the
// usual run-ahead limit.
func (d *shardedDevice) postNoWait(op string, bufs [][]byte) (int, timing.Seconds) {
	s := d.s
	seq := d.seq
	d.seq++
	start := d.Clock().Now()
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		panic(shardedAbort{})
	}
	c := s.collLocked(seq, op)
	c.posted[d.rank] = true
	c.at[d.rank] = start
	c.bufs[d.rank] = bufs
	c.arrived++
	s.cond.Broadcast()
	s.mu.Unlock()
	return seq, start
}

// waitAll blocks until every device has posted sequence seq.
func (d *shardedDevice) waitAll(seq int) *shardedColl {
	s := d.s
	var c *shardedColl
	s.yieldWait(func() bool {
		cc, ok := s.colls[seq]
		if !ok {
			return false
		}
		c = cc
		return cc.arrived == s.n
	})
	return c
}

// waitRank blocks until device src has posted sequence seq.
func (d *shardedDevice) waitRank(seq, src int) *shardedColl {
	s := d.s
	var c *shardedColl
	s.yieldWait(func() bool {
		cc, ok := s.colls[seq]
		if !ok {
			return false
		}
		c = cc
		return cc.posted[src]
	})
	return c
}

// complete marks this device done with sequence seq, advancing the
// backpressure horizon and pruning fully-consumed collectives.
func (d *shardedDevice) complete(seq int) {
	s := d.s
	s.mu.Lock()
	s.done[d.rank]++
	min := s.done[0]
	for _, v := range s.done[1:] {
		if v < min {
			min = v
		}
	}
	if min > s.minDone {
		s.minDone = min
		for k := s.pruned; k < min; k++ {
			delete(s.colls, k)
		}
		s.pruned = min
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Barrier aligns all devices; everyone's clock advances to the slowest
// arrival (gap charged to Idle). A barrier is inherently synchronous, so
// it rendezvouses at every staleness bound.
func (d *shardedDevice) Barrier() {
	seq := d.post(opBarrier, nil, nil)
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	d.complete(seq)
}

// RingAll2All exchanges per-destination buffers over the ring schedule.
// Every device's payload is a dependency of every other device, so the
// collective rendezvouses at any staleness; arrival gaps are charged to
// Idle and each round costs as much as its slowest link, exactly like the
// in-process cluster.
func (d *shardedDevice) RingAll2All(payloads [][]byte) [][]byte {
	s := d.s
	n := s.n
	if len(payloads) != n {
		panic(fmt.Sprintf("core: RingAll2All got %d payloads for %d devices", len(payloads), n))
	}
	// Post a private copy of the container: callers may reuse theirs
	// (core.Arena.Payloads) for the next collective while a run-ahead
	// straggler is still reading this one. The buffers themselves are safe
	// to post as-is — each has exactly one consumer, which releases it into
	// its own arena only after decoding.
	posted := make([][]byte, n)
	copy(posted, payloads)
	seq := d.post(opRing, posted, nil)
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	sizes := d.sizesScratch(n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst != src {
				sizes[src][dst] = len(c.bufs[src][dst])
			} else {
				sizes[src][dst] = 0
			}
		}
	}
	// Charge round by round in schedule order — the same sequence of
	// float additions as the reference, so clocks agree to the last bit.
	for round := 1; round < n; round++ {
		d.Clock().Advance(timing.Comm, cluster.All2AllRoundTime(s.model, sizes, round))
		s.addBytes(d.rank, (d.rank+round)%n, len(payloads[(d.rank+round)%n]))
	}
	received := make([][]byte, n)
	for p := 0; p < n; p++ {
		if p != d.rank {
			received[p] = c.bufs[p][d.rank]
		}
	}
	d.complete(seq)
	return received
}

// AllReduceSum sums matrices elementwise across devices (ring-allreduce
// time model). Deterministic rank-ordered reduction over posted clones, so
// results are bit-identical to the in-process cluster and the poster may
// keep mutating its own matrices while stragglers still read.
func (d *shardedDevice) AllReduceSum(ms []*tensor.Matrix) {
	s := d.s
	clones := make([]*tensor.Matrix, len(ms))
	for i, m := range ms {
		clones[i] = m.Clone()
	}
	seq := d.post(opAllReduce, nil, clones)
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	if len(d.sums) != len(ms) {
		d.sums = make([]*tensor.Matrix, len(ms))
	}
	sums := d.sums
	for i := range ms {
		if sums[i] == nil || !sums[i].SameShape(c.mats[0][i]) {
			sums[i] = tensor.New(c.mats[0][i].Rows, c.mats[0][i].Cols)
		}
		sums[i].CopyFrom(c.mats[0][i])
		for r := 1; r < s.n; r++ {
			sums[i].AddInPlace(c.mats[r][i])
		}
	}
	bytes := 0
	for _, m := range ms {
		bytes += len(m.Data) * 4
	}
	d.Clock().Advance(timing.Comm, cluster.AllReduceTime(s.model, s.n, d.rank, bytes))
	for i := range ms {
		ms[i].CopyFrom(sums[i])
	}
	d.complete(seq)
}

// GatherBytes collects every device's payload at root. At staleness 0
// every device aligns on the slowest arrival and charges the slowest
// incoming transfer (the reference model); beyond it, senders post
// non-blocking, charge only their own transfer and run ahead — only root
// pays for stragglers.
func (d *shardedDevice) GatherBytes(root int, payload []byte) [][]byte {
	s := d.s
	seq := d.post(opGather, [][]byte{payload}, nil)
	if s.stale > 0 && d.rank != root {
		d.Clock().Advance(timing.Comm, s.model.TransferTime(d.rank, root, len(payload)))
		s.addBytes(d.rank, root, len(payload))
		d.complete(seq)
		return nil
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	var t timing.Seconds
	for src := 0; src < s.n; src++ {
		if src == root {
			continue
		}
		if tt := s.model.TransferTime(src, root, len(c.bufs[src][0])); tt > t {
			t = tt
		}
	}
	d.Clock().Advance(timing.Comm, t)
	if d.rank != root {
		s.addBytes(d.rank, root, len(payload))
		d.complete(seq)
		return nil
	}
	out := make([][]byte, s.n)
	for src := range out {
		out[src] = c.bufs[src][0]
	}
	d.complete(seq)
	return out
}

// ScatterBytes distributes payloads[i] from root to device i. At
// staleness > 0 a receiver depends only on root's post — stragglers among
// the other receivers cost it nothing.
func (d *shardedDevice) ScatterBytes(root int, payloads [][]byte) []byte {
	s := d.s
	var bufs [][]byte
	if d.rank == root {
		if len(payloads) != s.n {
			panic(fmt.Sprintf("core: ScatterBytes got %d payloads for %d devices", len(payloads), s.n))
		}
		bufs = payloads
	}
	seq := d.post(opScatter, bufs, nil)
	if s.stale > 0 {
		if d.rank == root {
			var t timing.Seconds
			for dst := 0; dst < s.n; dst++ {
				if dst == root {
					continue
				}
				if tt := s.model.TransferTime(root, dst, len(payloads[dst])); tt > t {
					t = tt
				}
			}
			d.Clock().Advance(timing.Comm, t)
			d.complete(seq)
			return payloads[root]
		}
		c := d.waitRank(seq, root)
		d.Clock().AdvanceTo(timing.Idle, c.at[root])
		out := c.bufs[root][d.rank]
		d.Clock().Advance(timing.Comm, s.model.TransferTime(root, d.rank, len(out)))
		d.complete(seq)
		return out
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst == root {
			continue
		}
		if tt := s.model.TransferTime(root, dst, len(c.bufs[root][dst])); tt > t {
			t = tt
		}
	}
	d.Clock().Advance(timing.Comm, t)
	out := c.bufs[root][d.rank]
	d.complete(seq)
	return out
}

// BroadcastBytes sends root's payload to all devices (sequential broadcast
// timing — SANCUS's pattern). At staleness > 0 a receiver waits only for
// root and charges the sequential prefix up to its own turn, so late
// receivers never delay early ones.
func (d *shardedDevice) BroadcastBytes(root int, payload []byte) []byte {
	s := d.s
	var bufs [][]byte
	if d.rank == root {
		bufs = [][]byte{payload}
	}
	seq := d.post(opBroadcast, bufs, nil)
	if s.stale > 0 {
		if d.rank == root {
			var t timing.Seconds
			for dst := 0; dst < s.n; dst++ {
				if dst != root {
					t += s.model.TransferTime(root, dst, len(payload))
					s.addBytes(root, dst, len(payload))
				}
			}
			d.Clock().Advance(timing.Comm, t)
			d.complete(seq)
			return payload
		}
		c := d.waitRank(seq, root)
		buf := c.bufs[root][0]
		d.Clock().AdvanceTo(timing.Idle, c.at[root])
		var t timing.Seconds
		for dst := 0; dst <= d.rank; dst++ {
			if dst != root {
				t += s.model.TransferTime(root, dst, len(buf))
			}
		}
		d.Clock().Advance(timing.Comm, t)
		d.complete(seq)
		return buf
	}
	c := d.waitAll(seq)
	d.Clock().AdvanceTo(timing.Idle, c.maxAt())
	buf := c.bufs[root][0]
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst != root {
			t += s.model.TransferTime(root, dst, len(buf))
		}
	}
	d.Clock().Advance(timing.Comm, t)
	if d.rank == root {
		for dst := 0; dst < s.n; dst++ {
			if dst != root {
				s.addBytes(root, dst, len(buf))
			}
		}
	}
	d.complete(seq)
	return buf
}

// StartBroadcast begins a split-phase broadcast. Start never blocks (not
// even on the staleness bound); Wait performs the same rendezvous and
// charges the same (align, wire) schedule as the blocking BroadcastBytes
// at the current staleness, routed through timing.FinishDeferred so
// compute issued between Start and Wait hides wire time as Overlap.
func (d *shardedDevice) StartBroadcast(root int, payload []byte) PendingCollective {
	var bufs [][]byte
	if d.rank == root {
		bufs = [][]byte{payload}
	}
	seq, start := d.postNoWait(opStartBroadcast, bufs)
	return &shardedPending{d: d, seq: seq, op: opStartBroadcast, root: root, start: start}
}

// StartScatter begins a split-phase scatter under the same contract as
// StartBroadcast. payloads is only read on root.
func (d *shardedDevice) StartScatter(root int, payloads [][]byte) PendingCollective {
	var bufs [][]byte
	if d.rank == root {
		if len(payloads) != d.s.n {
			panic(fmt.Sprintf("core: StartScatter got %d payloads for %d devices", len(payloads), d.s.n))
		}
		bufs = payloads
	}
	seq, start := d.postNoWait(opStartScatter, bufs)
	return &shardedPending{d: d, seq: seq, op: opStartScatter, root: root, start: start}
}

// shardedPending implements PendingCollective for the sharded backend.
type shardedPending struct {
	d     *shardedDevice
	seq   int
	op    string
	root  int
	start timing.Seconds
	done  bool
}

func (p *shardedPending) Wait() []byte {
	if p.done {
		panic("core: sharded split-phase handle waited twice")
	}
	p.done = true
	if p.op == opStartScatter {
		return p.d.finishScatter(p)
	}
	return p.d.finishBroadcast(p)
}

// finishBroadcast completes a split-phase broadcast, charging exactly the
// blocking schedule's (align, wire) pair for the current staleness bound
// through timing.FinishDeferred.
func (d *shardedDevice) finishBroadcast(p *shardedPending) []byte {
	s := d.s
	root := p.root
	if s.stale > 0 {
		c := d.waitRank(p.seq, root)
		buf := c.bufs[root][0]
		var t timing.Seconds
		if d.rank == root {
			for dst := 0; dst < s.n; dst++ {
				if dst != root {
					t += s.model.TransferTime(root, dst, len(buf))
					s.addBytes(root, dst, len(buf))
				}
			}
		} else {
			for dst := 0; dst <= d.rank; dst++ {
				if dst != root {
					t += s.model.TransferTime(root, dst, len(buf))
				}
			}
		}
		timing.FinishDeferred(d.Clock(), p.start, c.at[root], t)
		d.complete(p.seq)
		return buf
	}
	c := d.waitAll(p.seq)
	buf := c.bufs[root][0]
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst != root {
			t += s.model.TransferTime(root, dst, len(buf))
		}
	}
	if d.rank == root {
		for dst := 0; dst < s.n; dst++ {
			if dst != root {
				s.addBytes(root, dst, len(buf))
			}
		}
	}
	timing.FinishDeferred(d.Clock(), p.start, c.maxAt(), t)
	d.complete(p.seq)
	return buf
}

// finishScatter completes a split-phase scatter (blocking ScatterBytes
// schedule: max outgoing transfer at rendezvous, or root-only dependency
// beyond staleness 0).
func (d *shardedDevice) finishScatter(p *shardedPending) []byte {
	s := d.s
	root := p.root
	if s.stale > 0 {
		c := d.waitRank(p.seq, root)
		if d.rank == root {
			payloads := c.bufs[root]
			var t timing.Seconds
			for dst := 0; dst < s.n; dst++ {
				if dst == root {
					continue
				}
				if tt := s.model.TransferTime(root, dst, len(payloads[dst])); tt > t {
					t = tt
				}
			}
			timing.FinishDeferred(d.Clock(), p.start, c.at[root], t)
			d.complete(p.seq)
			return payloads[root]
		}
		out := c.bufs[root][d.rank]
		timing.FinishDeferred(d.Clock(), p.start, c.at[root],
			s.model.TransferTime(root, d.rank, len(out)))
		d.complete(p.seq)
		return out
	}
	c := d.waitAll(p.seq)
	var t timing.Seconds
	for dst := 0; dst < s.n; dst++ {
		if dst == root {
			continue
		}
		if tt := s.model.TransferTime(root, dst, len(c.bufs[root][dst])); tt > t {
			t = tt
		}
	}
	out := c.bufs[root][d.rank]
	timing.FinishDeferred(d.Clock(), p.start, c.maxAt(), t)
	d.complete(p.seq)
	return out
}

// RawAll2All moves buffers like RingAll2All but charges no time.
func (d *shardedDevice) RawAll2All(payloads [][]byte) [][]byte {
	s := d.s
	if len(payloads) != s.n {
		panic(fmt.Sprintf("core: RawAll2All got %d payloads for %d devices", len(payloads), s.n))
	}
	// Same container-copy rule as RingAll2All: the caller may reuse its
	// payloads container while run-ahead stragglers still read this one.
	posted := make([][]byte, s.n)
	copy(posted, payloads)
	seq := d.post(opRawRing, posted, nil)
	c := d.waitAll(seq)
	received := make([][]byte, s.n)
	for p := 0; p < s.n; p++ {
		if p != d.rank {
			received[p] = c.bufs[p][d.rank]
		}
	}
	d.complete(seq)
	return received
}

// RawAllGather shares one buffer from every device with every device,
// charging no time (metrics sideband).
func (d *shardedDevice) RawAllGather(payload []byte) [][]byte {
	s := d.s
	seq := d.post(opRawGather, [][]byte{payload}, nil)
	c := d.waitAll(seq)
	out := make([][]byte, s.n)
	for p := 0; p < s.n; p++ {
		out[p] = c.bufs[p][0]
	}
	d.complete(seq)
	return out
}

var _ Transport = (*shardedDevice)(nil)
