package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/synthetic"
)

// TestTransportConformance runs every registered backend through the
// collective-contract suite at two cluster sizes.
func TestTransportConformance(t *testing.T) {
	for _, name := range TransportNames() {
		f, err := LookupTransport(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{2, 4} {
			vs := ConformTransport(f, parts)
			for _, v := range vs {
				t.Errorf("%s parts=%d: %v", name, parts, v)
			}
		}
	}
}

// TestShardedWorkerPoolConformance pins that multiplexing devices onto a
// worker pool smaller than the device count changes neither semantics nor
// simulated time — even a single execution slot must conform.
func TestShardedWorkerPoolConformance(t *testing.T) {
	for _, workers := range []int{1, 2} {
		f := func(spec TransportSpec) Runtime {
			spec.Workers = workers
			return newShardedRuntime(spec)
		}
		for _, v := range ConformTransport(f, 5) {
			t.Errorf("workers=%d: %v", workers, v)
		}
	}
}

// confTrainConfig is a small fixed-seed training scenario every backend
// must reproduce bit-for-bit.
func confTrainConfig(codec string) Config {
	cfg := DefaultConfig()
	cfg.Codec = codec
	cfg.Epochs = 6
	cfg.Hidden = 32
	cfg.EvalEvery = 3
	cfg.ReassignPeriod = 2 // exercise AdaQP's gather/scatter re-assignment
	cfg.SancusMaxStale = 2
	return cfg
}

func confTrain(t *testing.T, dep *Deployment, cfg Config) *metrics.RunResult {
	t.Helper()
	res, err := TrainDeployed(dep, cfg, nil)
	if err != nil {
		t.Fatalf("transport %q codec %q: %v", cfg.Transport, cfg.Codec, err)
	}
	return res
}

// TestTransportLossParity trains the same fixed-seed scenario on every
// registered transport with every registered codec and requires
// bit-identical loss curves, epoch sim-times, final accuracy and byte
// accounting at staleness 0.
func TestTransportLossParity(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	for _, codec := range CodecNames() {
		ref := confTrain(t, dep, confTrainConfig(codec))
		for _, name := range TransportNames() {
			if name == TransportInprocess {
				continue
			}
			cfg := confTrainConfig(codec)
			cfg.Transport = name
			got := confTrain(t, dep, cfg)
			compareRuns(t, name+"/"+codec, ref, got, true)
		}
	}
}

// TestShardedStalenessLossParity pins the async guarantee: because
// payloads are sequence-matched (never stale data), loss curves and final
// accuracy stay bit-identical at any staleness bound and worker count —
// only the simulated time changes.
func TestShardedStalenessLossParity(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	// Adaptive and SANCUS exercise the gather/scatter and broadcast paths;
	// ef-quant and delta pin that residual state carried across epochs
	// survives the run-ahead.
	for _, codec := range []string{CodecAdaptive, CodecSancus, CodecEFQuant, CodecDelta} {
		ref := confTrain(t, dep, confTrainConfig(codec))
		for _, stale := range []int{1, 4, 16} {
			cfg := confTrainConfig(codec)
			cfg.Transport = TransportShardedAsync
			cfg.TransportStaleness = stale
			cfg.TransportWorkers = 2
			got := confTrain(t, dep, cfg)
			compareRuns(t, codec, ref, got, false)
		}
	}
}

// TestOverlapLossParity pins the overlap schedule's core guarantee: with
// TransportOverlap set the SANCUS payload routing is unchanged, so loss
// curves, accuracies and byte ledgers stay bit-identical to the blocking
// schedule — only where the simulated time lands changes. At staleness 0
// both backends run the identical split-phase schedule through
// timing.FinishDeferred, so between them even the clocks must agree.
func TestOverlapLossParity(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	blocking := confTrain(t, dep, confTrainConfig(CodecSancus))

	ovl := confTrainConfig(CodecSancus)
	ovl.TransportOverlap = true
	inproc := confTrain(t, dep, ovl)
	compareRuns(t, "inprocess overlap vs blocking", blocking, inproc, false)

	sh := ovl
	sh.Transport = TransportShardedAsync
	compareRuns(t, "sharded overlap vs inprocess overlap", inproc, confTrain(t, dep, sh), true)

	stale := sh
	stale.TransportStaleness = 8
	stale.TransportWorkers = 2
	compareRuns(t, "sharded overlap staleness=8", inproc, confTrain(t, dep, stale), false)
}

// TestOverlapReducesWallClock: hiding broadcast wire time behind the
// central-graph forward compute must strictly shorten the simulated epoch
// (the win BENCH_9 records), and the hidden seconds must be visible under
// the Overlap phase.
func TestOverlapReducesWallClock(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	blocking := confTrain(t, dep, confTrainConfig(CodecSancus))
	cfg := confTrainConfig(CodecSancus)
	cfg.TransportOverlap = true
	overlap := confTrain(t, dep, cfg)
	if overlap.WallClock >= blocking.WallClock {
		t.Errorf("overlap wall-clock %v not below blocking %v", overlap.WallClock, blocking.WallClock)
	}
	if overlap.OverlapSeconds() <= 0 {
		t.Error("overlap run recorded no hidden wire time")
	}
}

// TestOverlapChaosLossParity: the overlap schedule composed with fault
// injection must still leave training results bit-identical on every
// backend — faults and overlap both perturb simulated time only.
func TestOverlapChaosLossParity(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	base := confTrainConfig(CodecSancus)
	base.Faults = chaos.Spec{Seed: 14, Stragglers: 2, SlowFactor: 2, LinkFactor: 3, FailRate: 0.3, MaxRetries: 3, Backoff: 0.02}
	ref := confTrain(t, dep, base)
	for _, name := range TransportNames() {
		cfg := base
		cfg.Transport = name
		cfg.TransportOverlap = true
		compareRuns(t, name+"/overlap+chaos", ref, confTrain(t, dep, cfg), false)
	}
}

// compareRuns requires bit-identical convergence; withTime additionally
// requires identical simulated clocks (only guaranteed at staleness 0).
// It reports via runDivergence so the conformance suite and the parity
// tests share one definition of "bit-identical".
func compareRuns(t *testing.T, label string, ref, got *metrics.RunResult, withTime bool) {
	t.Helper()
	if desc := runDivergence(ref, got, withTime); desc != "" {
		t.Errorf("%s: runs diverged (%s)", label, desc)
	}
}

// TestNewCodecCrossBackendParity pins the PR-5 codec family explicitly:
// at staleness 0 each of ef-quant, topk and delta must produce loss
// curves, simulated clocks and byte ledgers bit-identical to the
// in-process reference regardless of the sharded backend's worker-pool
// size (TestTransportLossParity covers them too via the registry, but
// this test survives a registry reshuffle).
func TestNewCodecCrossBackendParity(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	for _, codec := range []string{CodecEFQuant, CodecTopK, CodecDelta} {
		cfg := confTrainConfig(codec)
		cfg.DeltaKeyframeEvery = 2 // hit both keyframe and residual epochs
		ref := confTrain(t, dep, cfg)
		for _, workers := range []int{1, 3} {
			got := cfg
			got.Transport = TransportShardedAsync
			got.TransportWorkers = workers
			res := confTrain(t, dep, got)
			compareRuns(t, fmt.Sprintf("%s/workers=%d", codec, workers), ref, res, true)
		}
	}
}

// TestShardedStalenessReducesIdle checks the async backend actually models
// straggler tolerance: on a broadcast-heavy SANCUS run over a skewed cost
// model, a positive staleness bound must not increase simulated wall-clock
// and must strictly reduce it when stragglers exist.
func TestShardedStalenessReducesIdle(t *testing.T) {
	ds := synthetic.MustLoad("tiny", synthetic.Scale(1))
	dep := Deploy(ds, 4, GCN, partition.Block)
	run := func(stale int) *metrics.RunResult {
		cfg := confTrainConfig(CodecSancus)
		cfg.Transport = TransportShardedAsync
		cfg.TransportStaleness = stale
		res, err := TrainDeployed(dep, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sync, async := run(0), run(8)
	if async.WallClock > sync.WallClock {
		t.Errorf("staleness 8 wall-clock %v exceeds lockstep %v", async.WallClock, sync.WallClock)
	}
	if async.WallClock == sync.WallClock {
		t.Errorf("staleness 8 wall-clock %v identical to lockstep — async relaxation had no effect", async.WallClock)
	}
}

// TestShardedRunErrorPropagation: a device body failing mid-collective
// must surface its error instead of stranding peers in a wait.
func TestShardedRunErrorPropagation(t *testing.T) {
	rt := newShardedRuntime(TransportSpec{Parts: 4, Workers: 2})
	err := rt.Run(1, func(dev Transport) error {
		if dev.Rank() == 2 {
			return errTestBody
		}
		dev.Barrier()
		dev.Barrier()
		return nil
	})
	if err != errTestBody {
		t.Fatalf("Run returned %v, want the failing device's error", err)
	}
}

var errTestBody = &testBodyError{}

type testBodyError struct{}

func (*testBodyError) Error() string { return "device body failed" }

// ---- deliberately broken transports: the conformance suite must catch
// each class of contract violation ----

// wrappedRuntime lets a stub intercept individual Transport methods while
// delegating everything else to the in-process reference.
type wrappedRuntime struct {
	Runtime
	wrap func(Transport) Transport
}

func (w wrappedRuntime) Run(seed uint64, body func(Transport) error) error {
	return w.Runtime.Run(seed, func(dev Transport) error { return body(w.wrap(dev)) })
}

func brokenFactory(wrap func(Transport) Transport) RuntimeFactory {
	return func(spec TransportSpec) Runtime {
		ref, err := LookupTransport(TransportInprocess)
		if err != nil {
			panic(err)
		}
		return wrappedRuntime{Runtime: ref(spec), wrap: wrap}
	}
}

// noBarrierDev drops Barrier entirely: no rendezvous, no clock alignment.
type noBarrierDev struct{ Transport }

func (noBarrierDev) Barrier() {}

// unchargedDev moves all2all data correctly but charges no simulated time
// (it routes the collective through the metrics sideband).
type unchargedDev struct{ Transport }

func (d unchargedDev) RingAll2All(p [][]byte) [][]byte { return d.Transport.RawAll2All(p) }

// scratchDev violates receiver ownership: it copies results into a
// per-device scratch arena it recycles on the next collective.
type scratchDev struct {
	Transport
	scratch [][]byte
}

func (d *scratchDev) RingAll2All(p [][]byte) [][]byte {
	recv := d.Transport.RingAll2All(p)
	if d.scratch == nil {
		d.scratch = make([][]byte, len(recv))
	}
	out := make([][]byte, len(recv))
	for i, b := range recv {
		if b == nil {
			continue
		}
		if cap(d.scratch[i]) < len(b) {
			d.scratch[i] = make([]byte, len(b))
		}
		out[i] = d.scratch[i][:len(b)]
		copy(out[i], b)
	}
	return out
}

// eagerWaitDev fakes the split-phase contract by running the blocking
// collective inside Start: immediate Waits look right, but compute issued
// between Start and Wait hides nothing — the wire time was already paid.
type eagerWaitDev struct{ Transport }

type eagerPending struct{ out []byte }

func (p eagerPending) Wait() []byte { return p.out }

func (d eagerWaitDev) StartBroadcast(root int, payload []byte) PendingCollective {
	return eagerPending{d.Transport.BroadcastBytes(root, payload)}
}

func (d eagerWaitDev) StartScatter(root int, payloads [][]byte) PendingCollective {
	return eagerPending{d.Transport.ScatterBytes(root, payloads)}
}

// lateWaitDev fakes it the other way: Start records the arguments and Wait
// runs the blocking collective from the current clock — so nothing issued
// in between is credited as overlap and the wire time is charged late.
type lateWaitDev struct{ Transport }

type lateBroadcast struct {
	d       Transport
	root    int
	payload []byte
}

func (p lateBroadcast) Wait() []byte { return p.d.BroadcastBytes(p.root, p.payload) }

type lateScatter struct {
	d        Transport
	root     int
	payloads [][]byte
}

func (p lateScatter) Wait() []byte { return p.d.ScatterBytes(p.root, p.payloads) }

func (d lateWaitDev) StartBroadcast(root int, payload []byte) PendingCollective {
	return lateBroadcast{d.Transport, root, payload}
}

func (d lateWaitDev) StartScatter(root int, payloads [][]byte) PendingCollective {
	return lateScatter{d.Transport, root, payloads}
}

func TestConformanceCatchesBrokenTransports(t *testing.T) {
	cases := []struct {
		name      string
		factory   RuntimeFactory
		wantCheck string
	}{
		{"no-op barrier", brokenFactory(func(d Transport) Transport { return noBarrierDev{d} }), "barrier"},
		{"uncharged all2all", brokenFactory(func(d Transport) Transport { return unchargedDev{d} }), "all2all-clock-charge"},
		{"recycled buffers", brokenFactory(func(d Transport) Transport { return &scratchDev{Transport: d} }), "payload-ownership"},
		{"eager-wait split-phase", brokenFactory(func(d Transport) Transport { return eagerWaitDev{d} }), "overlap-charge"},
		{"late-wait split-phase", brokenFactory(func(d Transport) Transport { return lateWaitDev{d} }), "overlap-charge"},
	}
	for _, tc := range cases {
		vs := ConformTransport(tc.factory, 4)
		found := false
		for _, v := range vs {
			if strings.HasPrefix(v.Check, tc.wantCheck) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: conformance missed the violation (want a %q check); got %v", tc.name, tc.wantCheck, vs)
		}
	}
}
