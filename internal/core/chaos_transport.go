package core

import (
	"sync"

	"repro/internal/chaos"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// This file injects a chaos.FaultPlan into any Runtime by wrapping its
// devices. Injection is centralized here — backends stay fault-agnostic —
// and charges simulated time only, which preserves the repo's invariant
// that fixed-seed loss curves are bit-identical with and without faults:
//
//   - straggler compute slowdown: on entering a charged collective, the
//     local work done since the previous collective is re-charged
//     (factor-1)× to Comp, so the device arrives late and the collective's
//     own alignment rules propagate the slack;
//   - transient failures: after the collective completes, each scheduled
//     failed attempt re-charges the collective's measured Comm cost (the
//     lost transfer) plus an exponentially growing backoff charged to
//     Idle. Retries move no extra payload bytes — the byte ledger of a
//     faulted run must equal the fault-free ledger, and the chaos
//     conformance mode checks exactly that;
//   - crash/restart is a trainer-level protocol (worker.run), not a
//     transport concern: the plan only fixes the site.
//
// Both backends issue the same per-device sequence of charged collectives,
// so the op counter below — and with it the whole failure schedule — is
// identical across backends by construction.

// faultStats accumulates fault/recovery counters across all devices of a
// run; TrainDeployedCtx surfaces them as metrics.FaultStats.
type faultStats struct {
	mu           sync.Mutex
	retries      int64
	retryTime    timing.Seconds
	crashes      int64
	recoveryTime timing.Seconds
}

func (s *faultStats) addRetries(n int64, t timing.Seconds) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retries += n
	s.retryTime += t
	s.mu.Unlock()
}

func (s *faultStats) addCrash(t timing.Seconds) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.crashes++
	s.recoveryTime += t
	s.mu.Unlock()
}

// snapshot returns the accumulated counters.
func (s *faultStats) snapshot() (retries int64, retryTime timing.Seconds, crashes int64, recoveryTime timing.Seconds) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries, s.retryTime, s.crashes, s.recoveryTime
}

// faultFactory wraps a runtime factory so every runtime it builds injects
// plan's faults: the spec's cost model is derived through the plan (slowed
// straggler links) and every device is wrapped in a faultDevice. stats may
// be nil when the caller doesn't need counters.
func faultFactory(f RuntimeFactory, plan *chaos.FaultPlan, stats *faultStats) RuntimeFactory {
	return func(spec TransportSpec) Runtime {
		spec.Model = plan.ApplyToModel(spec.Model)
		spec.Faults = plan
		return &faultRuntime{inner: f(spec), plan: plan, stats: stats}
	}
}

// faultRuntime wraps a backend's Runtime, handing each body a faultDevice.
type faultRuntime struct {
	inner Runtime
	plan  *chaos.FaultPlan
	stats *faultStats
}

func (r *faultRuntime) Size() int               { return r.inner.Size() }
func (r *faultRuntime) Clocks() []*timing.Clock { return r.inner.Clocks() }
func (r *faultRuntime) BytesMoved() [][]int64   { return r.inner.BytesMoved() }

func (r *faultRuntime) Run(seed uint64, body func(Transport) error) error {
	return r.inner.Run(seed, func(dev Transport) error {
		return body(&faultDevice{Transport: dev, plan: r.plan, stats: r.stats})
	})
}

// faultDevice threads one device's charged collectives through the fault
// plan. Raw* sideband collectives and plain accessors pass through.
type faultDevice struct {
	Transport
	plan  *chaos.FaultPlan
	stats *faultStats
	// op indexes this device's charged collectives (the failure
	// schedule's key); last is the clock position after the previous
	// charged collective (the slowdown window's start).
	op   int
	last timing.Seconds
}

// around runs one charged collective under the plan: pre-charge the
// straggler slowdown on the local work since the last collective, run the
// collective, then charge any scheduled transient failures.
func (d *faultDevice) around(fn func()) {
	r := d.Transport.Rank()
	ck := d.Transport.Clock()
	if s := d.plan.Slowdown[r]; s > 1 {
		if work := ck.Now() - d.last; work > 0 {
			ck.Advance(timing.Comp, work*timing.Seconds(s-1))
		}
	}
	commBefore := ck.Spent(timing.Comm)
	fn()
	if fails := d.plan.Failures(r, d.op); fails > 0 {
		// Each failed attempt lost the transfer it had started (the
		// collective's measured Comm charge) and then backed off before
		// retrying. Charged after the collective's own alignment: peers
		// observe the retries at the next rendezvous, not this one.
		lost := ck.Spent(timing.Comm) - commBefore
		backoff := timing.Seconds(d.plan.Spec.Backoff)
		var retryTime timing.Seconds
		for i := 0; i < fails; i++ {
			ck.Advance(timing.Idle, backoff)
			ck.Advance(timing.Comm, lost)
			retryTime += backoff + lost
			backoff *= 2
		}
		d.stats.addRetries(int64(fails), retryTime)
	}
	d.op++
	d.last = ck.Now()
}

func (d *faultDevice) Barrier() {
	d.around(func() { d.Transport.Barrier() })
}

func (d *faultDevice) RingAll2All(payloads [][]byte) [][]byte {
	var out [][]byte
	d.around(func() { out = d.Transport.RingAll2All(payloads) })
	return out
}

func (d *faultDevice) AllReduceSum(ms []*tensor.Matrix) {
	d.around(func() { d.Transport.AllReduceSum(ms) })
}

func (d *faultDevice) GatherBytes(root int, payload []byte) [][]byte {
	var out [][]byte
	d.around(func() { out = d.Transport.GatherBytes(root, payload) })
	return out
}

func (d *faultDevice) ScatterBytes(root int, payloads [][]byte) []byte {
	var out []byte
	d.around(func() { out = d.Transport.ScatterBytes(root, payloads) })
	return out
}

func (d *faultDevice) BroadcastBytes(root int, payload []byte) []byte {
	var out []byte
	d.around(func() { out = d.Transport.BroadcastBytes(root, payload) })
	return out
}

// chargeSlowdown applies the straggler factor to the local work done since
// the previous charging point and moves the window forward. Split-phase
// collectives have two charging points — Start (work before the post) and
// Wait entry (work overlapped with the in-flight collective) — so every
// instant of a straggler's compute pays the factor exactly once and its
// posts/rendezvous happen at the slowed times, exactly as in the blocking
// path.
func (d *faultDevice) chargeSlowdown() {
	r := d.Transport.Rank()
	ck := d.Transport.Clock()
	if s := d.plan.Slowdown[r]; s > 1 {
		if work := ck.Now() - d.last; work > 0 {
			ck.Advance(timing.Comp, work*timing.Seconds(s-1))
		}
	}
	d.last = ck.Now()
}

// startSplit claims the next op index for a split-phase collective. The
// index is claimed at Start — matching the blocking path, where the op
// counter advances in collective-issue order — so the failure schedule is
// identical whether a collective is issued blocking or split.
func (d *faultDevice) startSplit() int {
	d.chargeSlowdown()
	op := d.op
	d.op++
	return op
}

func (d *faultDevice) StartBroadcast(root int, payload []byte) PendingCollective {
	op := d.startSplit()
	return &faultPending{d: d, inner: d.Transport.StartBroadcast(root, payload), op: op}
}

func (d *faultDevice) StartScatter(root int, payloads [][]byte) PendingCollective {
	op := d.startSplit()
	return &faultPending{d: d, inner: d.Transport.StartScatter(root, payloads), op: op}
}

// faultPending wraps an inner split-phase handle with the fault plan's
// charging: straggler slowdown on the overlapped compute at Wait entry,
// then transient-failure retries against the Comm this device actually
// paid for the collective (measured from Wait entry, not Start — other
// handles' Waits may charge Comm in between; a fully hidden transfer
// loses nothing but the backoff).
type faultPending struct {
	d     *faultDevice
	inner PendingCollective
	op    int
}

func (p *faultPending) Wait() []byte {
	d := p.d
	r := d.Transport.Rank()
	ck := d.Transport.Clock()
	d.chargeSlowdown()
	commBefore := ck.Spent(timing.Comm)
	out := p.inner.Wait()
	if fails := d.plan.Failures(r, p.op); fails > 0 {
		lost := ck.Spent(timing.Comm) - commBefore
		backoff := timing.Seconds(d.plan.Spec.Backoff)
		var retryTime timing.Seconds
		for i := 0; i < fails; i++ {
			ck.Advance(timing.Idle, backoff)
			ck.Advance(timing.Comm, lost)
			retryTime += backoff + lost
			backoff *= 2
		}
		d.stats.addRetries(int64(fails), retryTime)
	}
	d.last = ck.Now()
	return out
}
