//go:build race

package core

// raceEnabled gates exact allocation-count assertions: the race detector
// instruments the allocator, so counts differ under -race while the code
// paths themselves still run.
const raceEnabled = true
