package cluster

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
	"repro/internal/timing"
)

func TestRunAllRanks(t *testing.T) {
	c := New(5, nil)
	var mask int64
	err := c.Run(1, func(d *Device) error {
		atomic.AddInt64(&mask, 1<<d.Rank())
		if d.Size() != 5 {
			return fmt.Errorf("size %d", d.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mask != 31 {
		t.Fatalf("ranks mask %b", mask)
	}
}

func TestRunPropagatesError(t *testing.T) {
	c := New(3, nil)
	err := c.Run(1, func(d *Device) error {
		if d.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestRingAll2AllDelivery(t *testing.T) {
	const n = 4
	c := New(n, nil)
	err := c.Run(1, func(d *Device) error {
		payloads := make([][]byte, n)
		for q := 0; q < n; q++ {
			if q != d.Rank() {
				payloads[q] = []byte{byte(d.Rank()), byte(q)}
			}
		}
		got := d.RingAll2All(payloads)
		for p := 0; p < n; p++ {
			if p == d.Rank() {
				if got[p] != nil {
					return fmt.Errorf("self slot must be nil")
				}
				continue
			}
			if len(got[p]) != 2 || got[p][0] != byte(p) || got[p][1] != byte(d.Rank()) {
				return fmt.Errorf("rank %d from %d got %v", d.Rank(), p, got[p])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingAll2AllChargesStragglerTime(t *testing.T) {
	// Device 0 sends a huge buffer to 1; every device must be charged the
	// same per-round max (synchronized rounds).
	const n = 3
	c := New(n, nil)
	err := c.Run(1, func(d *Device) error {
		payloads := make([][]byte, n)
		for q := 0; q < n; q++ {
			if q == d.Rank() {
				continue
			}
			size := 10
			if d.Rank() == 0 && q == 1 {
				size = 10_000_000
			}
			payloads[q] = make([]byte, size)
		}
		d.RingAll2All(payloads)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	clocks := c.Clocks()
	want := clocks[0].Spent(timing.Comm)
	for r, cl := range clocks {
		if cl.Spent(timing.Comm) != want {
			t.Fatalf("rank %d comm %v != rank0 %v", r, cl.Spent(timing.Comm), want)
		}
	}
	// The big transfer dominates: 10MB at 12.5GB/s = 0.8ms.
	if want < timing.Seconds(0.0007) {
		t.Fatalf("straggler not charged: %v", want)
	}
}

func TestAll2AllTimeMatchesCharges(t *testing.T) {
	const n = 4
	model := timing.Default()
	c := New(n, model)
	sizes := make([][]int, n)
	for s := range sizes {
		sizes[s] = make([]int, n)
		for q := 0; q < n; q++ {
			if q != s {
				sizes[s][q] = 1000 * (s + 1) * (q + 1)
			}
		}
	}
	err := c.Run(1, func(d *Device) error {
		payloads := make([][]byte, n)
		for q := 0; q < n; q++ {
			if q != d.Rank() {
				payloads[q] = make([]byte, sizes[d.Rank()][q])
			}
		}
		d.RingAll2All(payloads)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := All2AllTime(model, sizes)
	got := c.Clocks()[0].Spent(timing.Comm)
	if diff := float64(want - got); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("All2AllTime %v != charged %v", want, got)
	}
}

func TestAllReduceSum(t *testing.T) {
	const n = 4
	c := New(n, nil)
	results := make([]float32, n)
	err := c.Run(1, func(d *Device) error {
		m := tensor.New(2, 2)
		m.Fill(float32(d.Rank() + 1))
		d.AllReduceSum([]*tensor.Matrix{m})
		results[d.Rank()] = m.At(0, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		if v != 10 { // 1+2+3+4
			t.Fatalf("rank %d sum %v", r, v)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 3
	c := New(n, nil)
	err := c.Run(1, func(d *Device) error {
		gathered := d.GatherBytes(0, []byte{byte(d.Rank() + 100)})
		if d.Rank() == 0 {
			for r := 0; r < n; r++ {
				if gathered[r][0] != byte(r+100) {
					return fmt.Errorf("gather slot %d = %v", r, gathered[r])
				}
			}
		} else if gathered != nil {
			return fmt.Errorf("non-root got gather results")
		}
		var out [][]byte
		if d.Rank() == 0 {
			out = [][]byte{{0}, {11}, {22}}
		}
		mine := d.ScatterBytes(0, out)
		if mine[0] != byte(11*d.Rank()) {
			return fmt.Errorf("rank %d scatter got %v", d.Rank(), mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSequentialTiming(t *testing.T) {
	// Broadcast charges the SUM over destinations (sequential sends),
	// unlike ring all2all's per-round max.
	const n = 4
	model := timing.Default()
	c := New(n, model)
	payload := make([]byte, 1_000_000)
	err := c.Run(1, func(d *Device) error {
		var p []byte
		if d.Rank() == 2 {
			p = payload
		}
		got := d.BroadcastBytes(2, p)
		if len(got) != len(payload) {
			return fmt.Errorf("rank %d got %d bytes", d.Rank(), len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	perMsg := float64(model.TransferTime(2, 0, len(payload)))
	want := 3 * perMsg
	got := float64(c.Clocks()[0].Spent(timing.Comm))
	if diff := want - got; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("broadcast time %v, want %v", got, want)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	const n = 3
	c := New(n, nil)
	err := c.Run(1, func(d *Device) error {
		d.Clock().Advance(timing.Comp, timing.Seconds(float64(d.Rank())*0.5))
		d.Barrier()
		if d.Clock().Now() != timing.Seconds(1.0) {
			return fmt.Errorf("rank %d clock %v after barrier", d.Rank(), d.Clock().Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 waited 1.0s, rank 2 waited 0.
	if idle := c.Clocks()[0].Spent(timing.Idle); idle != 1.0 {
		t.Fatalf("rank0 idle %v", idle)
	}
	if idle := c.Clocks()[2].Spent(timing.Idle); idle != 0 {
		t.Fatalf("rank2 idle %v", idle)
	}
}

func TestRawAll2AllUncharged(t *testing.T) {
	const n = 3
	c := New(n, nil)
	err := c.Run(1, func(d *Device) error {
		payloads := make([][]byte, n)
		for q := 0; q < n; q++ {
			if q != d.Rank() {
				payloads[q] = make([]byte, 1_000_000)
			}
		}
		got := d.RawAll2All(payloads)
		for p := 0; p < n; p++ {
			if p != d.Rank() && len(got[p]) != 1_000_000 {
				return fmt.Errorf("raw delivery broken")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, cl := range c.Clocks() {
		if cl.Now() != 0 {
			t.Fatalf("rank %d charged %v by raw exchange", r, cl.Now())
		}
	}
}

func TestRawAllGather(t *testing.T) {
	const n = 4
	c := New(n, nil)
	err := c.Run(1, func(d *Device) error {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(d.Rank()*7))
		all := d.RawAllGather(buf)
		for p := 0; p < n; p++ {
			if binary.LittleEndian.Uint64(all[p]) != uint64(p*7) {
				return fmt.Errorf("allgather slot %d wrong", p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	const n = 2
	c := New(n, nil)
	err := c.Run(1, func(d *Device) error {
		payloads := make([][]byte, n)
		payloads[1-d.Rank()] = make([]byte, 100*(d.Rank()+1))
		d.RingAll2All(payloads)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bm := c.BytesMoved()
	if bm[0][1] != 100 || bm[1][0] != 200 {
		t.Fatalf("bytes moved %v", bm)
	}
}

func TestDeterministicTraining(t *testing.T) {
	// Two identical runs must produce bit-identical allreduce results even
	// though goroutine scheduling differs.
	run := func() float32 {
		c := New(4, nil)
		var out float32
		_ = c.Run(7, func(d *Device) error {
			m := tensor.New(8, 8)
			m.FillNormal(d.RNG, 0, 1)
			for i := 0; i < 5; i++ {
				d.AllReduceSum([]*tensor.Matrix{m})
				m.Scale(0.25)
			}
			if d.Rank() == 0 {
				out = m.At(3, 3)
			}
			return nil
		})
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestNewPanicsOnZeroDevices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, nil)
}
