// Package cluster is the in-process distributed runtime: each training
// device is a goroutine, and collectives (ring all2all, allreduce, gather,
// scatter, barrier) move real byte buffers between them while charging
// simulated time to each device's timing.Clock.
//
// Synchronization model: every collective is entered by all devices.
// Internally the devices meet at reusable barriers; a barrier also aligns
// simulated clocks (everyone advances to the latest arrival, charging the
// gap to Idle) — exactly the waiting the paper's Fig. 4 depicts. Because
// all cross-device data flows through collectives and each device owns a
// private RNG, training runs are deterministic regardless of goroutine
// scheduling.
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
	"repro/internal/timing"
)

// Cluster owns the shared state for N devices.
type Cluster struct {
	n      int
	model  *timing.CostModel
	clocks []*timing.Clock

	barrier *barrier
	// exchange[src][dst] is the buffer src posted for dst in the current
	// collective.
	exchange [][][]byte
	// mats[src] is the matrix slice src posted (for allreduce).
	mats [][]*tensor.Matrix
	// times[d] is scratch for clock alignment.
	times []timing.Seconds
	// bytesMoved accumulates total payload bytes per (src,dst) pair.
	bytesMu    sync.Mutex
	bytesMoved [][]int64

	// Split-phase collective state: the barrier cannot serve a
	// non-blocking Start, so in-flight start/wait collectives rendezvous
	// through this sequence-keyed store instead.
	splitMu    sync.Mutex
	splitCond  *sync.Cond
	splitColls map[int]*splitColl
}

// splitColl is one in-flight split-phase collective, keyed by each
// device's program-order sequence number (SPMD: every device's k-th Start
// is the same collective).
type splitColl struct {
	op     string
	root   int
	bufs   [][]byte // broadcast: bufs[dst] for dst != root; scatter: root's payloads
	at     []timing.Seconds
	posted int
	done   int
}

// New creates a cluster of n devices with the given cost model
// (timing.Default() if nil).
func New(n int, model *timing.CostModel) *Cluster {
	if n <= 0 {
		panic("cluster: need at least one device")
	}
	if model == nil {
		model = timing.Default()
	}
	c := &Cluster{
		n:        n,
		model:    model,
		clocks:   make([]*timing.Clock, n),
		barrier:  newBarrier(n),
		exchange: make([][][]byte, n),
		mats:     make([][]*tensor.Matrix, n),
		times:    make([]timing.Seconds, n),
	}
	for i := range c.clocks {
		c.clocks[i] = timing.NewClock()
	}
	c.bytesMoved = make([][]int64, n)
	for i := range c.bytesMoved {
		c.bytesMoved[i] = make([]int64, n)
		c.exchange[i] = make([][]byte, n)
	}
	c.splitCond = sync.NewCond(&c.splitMu)
	c.splitColls = make(map[int]*splitColl)
	return c
}

// Size returns the device count.
func (c *Cluster) Size() int { return c.n }

// Model returns the cost model.
func (c *Cluster) Model() *timing.CostModel { return c.model }

// Clocks returns the per-device simulated clocks (read after Run returns).
func (c *Cluster) Clocks() []*timing.Clock { return c.clocks }

// BytesMoved returns a copy of the per-pair payload byte totals.
func (c *Cluster) BytesMoved() [][]int64 {
	c.bytesMu.Lock()
	defer c.bytesMu.Unlock()
	out := make([][]int64, c.n)
	for i := range out {
		out[i] = append([]int64(nil), c.bytesMoved[i]...)
	}
	return out
}

// ResetClocks zeroes all device clocks and byte counters.
func (c *Cluster) ResetClocks() {
	for _, cl := range c.clocks {
		cl.Reset()
	}
	c.bytesMu.Lock()
	for i := range c.bytesMoved {
		for j := range c.bytesMoved[i] {
			c.bytesMoved[i][j] = 0
		}
	}
	c.bytesMu.Unlock()
}

// Device is the per-goroutine handle passed to Run's body.
type Device struct {
	c    *Cluster
	rank int
	RNG  *tensor.RNG

	// sizes is reusable accounting scratch for RingAll2All (every entry is
	// rewritten per call). The received containers themselves are always
	// freshly allocated: callers are allowed to retain them.
	sizes [][]int
	// sums is reusable reduction scratch for AllReduceSum, private to this
	// device between barriers.
	sums []*tensor.Matrix
	// splitSeq numbers this device's split-phase Starts in program order;
	// the k-th Start on every device is the same collective.
	splitSeq int
}

// sizesScratch returns the n×n RingAll2All size table, reused across calls.
func (d *Device) sizesScratch(n int) [][]int {
	if len(d.sizes) != n {
		d.sizes = make([][]int, n)
		for i := range d.sizes {
			d.sizes[i] = make([]int, n)
		}
	}
	return d.sizes
}

// Rank returns this device's id in [0, Size).
func (d *Device) Rank() int { return d.rank }

// Rand returns this device's private RNG (method form of the RNG field, so
// interfaces can abstract Device).
func (d *Device) Rand() *tensor.RNG { return d.RNG }

// Size returns the cluster size.
func (d *Device) Size() int { return d.c.n }

// Clock returns this device's simulated clock.
func (d *Device) Clock() *timing.Clock { return d.c.clocks[d.rank] }

// Model returns the shared cost model.
func (d *Device) Model() *timing.CostModel { return d.c.model }

// DeviceRNG derives device rank's private deterministic RNG for a run
// seeded with seed. Every runtime backend must use this same derivation so
// training results are bit-identical across transports.
func DeviceRNG(seed uint64, rank int) *tensor.RNG {
	return tensor.NewRNG(seed ^ (uint64(rank+1) * 0x9e3779b97f4a7c15))
}

// Run starts n goroutines executing body and waits for all to finish.
// Each device gets an RNG derived from seed and its rank. The first
// non-nil error is returned.
func (c *Cluster) Run(seed uint64, body func(*Device) error) error {
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for r := 0; r < c.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			dev := &Device{c: c, rank: rank, RNG: DeviceRNG(seed, rank)}
			errs[rank] = body(dev)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Barrier aligns all devices; everyone's clock advances to the slowest
// arrival (gap charged to Idle).
func (d *Device) Barrier() {
	c := d.c
	c.times[d.rank] = d.Clock().Now()
	c.barrier.wait()
	var mx timing.Seconds
	for _, t := range c.times {
		if t > mx {
			mx = t
		}
	}
	d.Clock().AdvanceTo(timing.Idle, mx)
	c.barrier.wait()
}

// RingAll2All exchanges byte buffers with every other device using the
// paper's ring pattern (Fig. 8): N−1 rounds, round i sends to (rank+i)%N
// and receives from (rank−i+N)%N, with a synchronization point per round so
// each round costs as much as its slowest link — the straggler effect of
// §2.2. payloads[q] is the buffer for device q (payloads[rank] ignored,
// may be nil). Returns received[p] = buffer device p sent us (nil for
// self). The Comm category is charged; the entry wait is charged to Idle.
func (d *Device) RingAll2All(payloads [][]byte) [][]byte {
	c := d.c
	n := c.n
	if len(payloads) != n {
		panic(fmt.Sprintf("cluster: RingAll2All got %d payloads for %d devices", len(payloads), n))
	}
	d.Barrier()
	// Post all outgoing buffers, then account time round by round.
	for q := 0; q < n; q++ {
		if q != d.rank {
			c.exchange[d.rank][q] = payloads[q]
		}
	}
	c.barrier.wait()
	sizes := d.sizesScratch(n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst != src {
				sizes[src][dst] = len(c.exchange[src][dst])
			} else {
				sizes[src][dst] = 0
			}
		}
	}
	for round := 1; round < n; round++ {
		dst := (d.rank + round) % n
		d.Clock().Advance(timing.Comm, All2AllRoundTime(c.model, sizes, round))
		c.bytesMu.Lock()
		c.bytesMoved[d.rank][dst] += int64(len(c.exchange[d.rank][dst]))
		c.bytesMu.Unlock()
	}
	received := make([][]byte, n)
	for p := 0; p < n; p++ {
		if p != d.rank {
			received[p] = c.exchange[p][d.rank]
		}
	}
	c.barrier.wait()
	return received
}

// All2AllRoundTime returns ring round `round`'s cost for the given
// per-destination sizes (bytes[src][dst]): the slowest pair of that round
// (synchronized rounds — the straggler effect of §2.2). Every runtime
// backend must charge this same schedule, round by round in order, so
// simulated clocks stay bit-identical across transports.
func All2AllRoundTime(model *timing.CostModel, bytes [][]int, round int) timing.Seconds {
	n := len(bytes)
	var roundTime timing.Seconds
	for src := 0; src < n; src++ {
		dst := (src + round) % n
		t := model.TransferTime(src, dst, bytes[src][dst])
		if t > roundTime {
			roundTime = t
		}
	}
	return roundTime
}

// All2AllTime returns what one RingAll2All with the given per-destination
// sizes (bytes[src][dst]) would cost, without moving data. Used by the
// bit-width assigner's time objective and by schedulers that overlap
// communication with computation.
func All2AllTime(model *timing.CostModel, bytes [][]int) timing.Seconds {
	n := len(bytes)
	var total timing.Seconds
	for round := 1; round < n; round++ {
		total += All2AllRoundTime(model, bytes, round)
	}
	return total
}

// AllReduceTime returns what one device's share of a ring allreduce over
// bytes payload bytes costs on an n-device runtime: the bandwidth-optimal
// 2·(N−1)/N · bytes · θ + 2·(N−1)·γ. Every runtime backend must charge
// this same formula so simulated clocks stay identical across transports.
func AllReduceTime(model *timing.CostModel, n, rank, bytes int) timing.Seconds {
	if n <= 1 {
		return 0
	}
	frac := 2 * float64(n-1) / float64(n)
	return timing.Seconds(frac*float64(bytes)*model.Theta(rank, (rank+1)%n)) +
		timing.Seconds(2*float64(n-1)*model.Gamma())
}

// AllReduceSum sums the given matrices elementwise across devices; every
// device ends with the identical total (summed in rank order, so the
// result is deterministic). Time is charged per the bandwidth-optimal ring
// allreduce: 2·(N−1)/N · bytes · θ + 2·(N−1)·γ.
func (d *Device) AllReduceSum(ms []*tensor.Matrix) {
	c := d.c
	d.Barrier()
	c.mats[d.rank] = ms
	c.barrier.wait()
	// Deterministic reduction: every device sums rank-ordered copies into
	// its private, reusable scratch.
	if len(d.sums) != len(ms) {
		d.sums = make([]*tensor.Matrix, len(ms))
	}
	sums := d.sums
	for i := range ms {
		if sums[i] == nil || !sums[i].SameShape(c.mats[0][i]) {
			sums[i] = tensor.New(c.mats[0][i].Rows, c.mats[0][i].Cols)
		}
		sums[i].CopyFrom(c.mats[0][i])
		for r := 1; r < c.n; r++ {
			sums[i].AddInPlace(c.mats[r][i])
		}
	}
	// Time model.
	bytes := 0
	for _, m := range ms {
		bytes += len(m.Data) * 4
	}
	d.Clock().Advance(timing.Comm, AllReduceTime(c.model, c.n, d.rank, bytes))
	c.barrier.wait()
	for i := range ms {
		ms[i].CopyFrom(sums[i])
	}
	c.barrier.wait()
}

// GatherBytes collects every device's payload at root. Non-root devices
// receive nil. Charged as N−1 point-to-point transfers into root.
func (d *Device) GatherBytes(root int, payload []byte) [][]byte {
	c := d.c
	d.Barrier()
	c.exchange[d.rank][root] = payload
	c.barrier.wait()
	var out [][]byte
	var t timing.Seconds
	for src := 0; src < c.n; src++ {
		if src == root {
			continue
		}
		tt := c.model.TransferTime(src, root, len(c.exchange[src][root]))
		if tt > t {
			t = tt
		}
	}
	d.Clock().Advance(timing.Comm, t)
	if d.rank != root {
		c.bytesMu.Lock()
		c.bytesMoved[d.rank][root] += int64(len(payload))
		c.bytesMu.Unlock()
	}
	if d.rank == root {
		out = make([][]byte, c.n)
		for src := 0; src < c.n; src++ {
			out[src] = c.exchange[src][root]
		}
	}
	c.barrier.wait()
	return out
}

// ScatterBytes distributes payloads[i] from root to device i; returns this
// device's slice. payloads is only read on root.
func (d *Device) ScatterBytes(root int, payloads [][]byte) []byte {
	c := d.c
	d.Barrier()
	if d.rank == root {
		for q := 0; q < c.n; q++ {
			c.exchange[root][q] = payloads[q]
		}
	}
	c.barrier.wait()
	var t timing.Seconds
	for dst := 0; dst < c.n; dst++ {
		if dst == root {
			continue
		}
		tt := c.model.TransferTime(root, dst, len(c.exchange[root][dst]))
		if tt > t {
			t = tt
		}
	}
	d.Clock().Advance(timing.Comm, t)
	out := c.exchange[root][d.rank]
	c.barrier.wait()
	return out
}

// BroadcastBytes sends root's payload to all devices (sequential broadcast
// timing: root serializes its sends — SANCUS's pattern, §5.1).
func (d *Device) BroadcastBytes(root int, payload []byte) []byte {
	c := d.c
	d.Barrier()
	if d.rank == root {
		for q := 0; q < c.n; q++ {
			if q != root {
				c.exchange[root][q] = payload
			}
		}
	}
	c.barrier.wait()
	var t timing.Seconds
	for dst := 0; dst < c.n; dst++ {
		if dst == root {
			continue
		}
		t += c.model.TransferTime(root, dst, len(c.exchange[root][dst]))
	}
	d.Clock().Advance(timing.Comm, t)
	var out []byte
	if d.rank == root {
		out = payload
		c.bytesMu.Lock()
		for dst := 0; dst < c.n; dst++ {
			if dst != root {
				c.bytesMoved[root][dst] += int64(len(c.exchange[root][dst]))
			}
		}
		c.bytesMu.Unlock()
	} else {
		out = c.exchange[root][d.rank]
	}
	c.barrier.wait()
	return out
}

// PendingBytes is the handle returned by a split-phase collective's
// Start call. Wait blocks until every device has posted the collective,
// charges this device's clock via timing.FinishDeferred, and returns the
// same bytes the blocking form would return. Handles must be waited
// exactly once, in Start order (FIFO) — the completion schedule is part
// of the deterministic clock contract. A Start immediately followed by
// its Wait charges bitwise-identically to the blocking collective.
type PendingBytes interface {
	Wait() []byte
}

// Split-phase op tags; devices must agree on the op and root of each
// sequence-numbered collective or the run panics (programming error).
const (
	opSplitBroadcast = "split-broadcast"
	opSplitScatter   = "split-scatter"
)

// splitGet returns (creating if needed) the in-flight collective for seq,
// panicking if devices disagree on what collective seq is. Caller holds
// c.splitMu.
func (c *Cluster) splitGet(seq int, op string, root int) *splitColl {
	coll := c.splitColls[seq]
	if coll == nil {
		coll = &splitColl{
			op:   op,
			root: root,
			bufs: make([][]byte, c.n),
			at:   make([]timing.Seconds, c.n),
		}
		c.splitColls[seq] = coll
	}
	if coll.op != op || coll.root != root {
		panic(fmt.Sprintf("cluster: split collective %d diverged: %s root %d vs %s root %d",
			seq, coll.op, coll.root, op, root))
	}
	return coll
}

// startSplit posts this device's part of a split-phase collective and
// returns its handle. post fills in the root's payload(s); it runs under
// the split lock.
func (d *Device) startSplit(op string, root int, post func(*splitColl)) *splitPending {
	c := d.c
	seq := d.splitSeq
	d.splitSeq++
	start := d.Clock().Now()
	c.splitMu.Lock()
	coll := c.splitGet(seq, op, root)
	if d.rank == root {
		post(coll)
	}
	coll.at[d.rank] = start
	coll.posted++
	c.splitCond.Broadcast()
	c.splitMu.Unlock()
	return &splitPending{d: d, seq: seq, op: op, root: root, start: start}
}

// StartBroadcast begins a split-phase broadcast of root's payload to all
// devices (same payload, sequential-send timing — the blocking
// BroadcastBytes schedule). It never blocks; the returned handle's Wait
// delivers the payload and charges the clock.
func (d *Device) StartBroadcast(root int, payload []byte) PendingBytes {
	return d.startSplit(opSplitBroadcast, root, func(coll *splitColl) {
		for q := 0; q < d.c.n; q++ {
			coll.bufs[q] = payload
		}
	})
}

// StartScatter begins a split-phase scatter of payloads[i] from root to
// device i (max-transfer timing — the blocking ScatterBytes schedule).
// payloads is only read on root. It never blocks; the returned handle's
// Wait delivers this device's slice and charges the clock.
func (d *Device) StartScatter(root int, payloads [][]byte) PendingBytes {
	return d.startSplit(opSplitScatter, root, func(coll *splitColl) {
		copy(coll.bufs, payloads)
	})
}

// splitPending implements PendingBytes for the in-process backend.
type splitPending struct {
	d     *Device
	seq   int
	op    string
	root  int
	start timing.Seconds
	done  bool
}

func (p *splitPending) Wait() []byte {
	if p.done {
		panic("cluster: split-phase handle waited twice")
	}
	p.done = true
	d := p.d
	c := d.c
	c.splitMu.Lock()
	coll := c.splitColls[p.seq]
	for coll.posted < c.n {
		c.splitCond.Wait()
	}
	// align is the blocking path's barrier point: the latest Start. wire
	// replicates the blocking collective's charge exactly (same loop, same
	// accumulation order) so staleness-0 clocks stay bit-identical.
	var align timing.Seconds
	for _, t := range coll.at {
		if t > align {
			align = t
		}
	}
	var wire timing.Seconds
	for dst := 0; dst < c.n; dst++ {
		if dst == p.root {
			continue
		}
		tt := c.model.TransferTime(p.root, dst, len(coll.bufs[dst]))
		switch p.op {
		case opSplitBroadcast:
			wire += tt // root serializes its sends
		case opSplitScatter:
			if tt > wire {
				wire = tt
			}
		}
	}
	out := coll.bufs[d.rank]
	if p.op == opSplitBroadcast && d.rank == p.root {
		c.bytesMu.Lock()
		for dst := 0; dst < c.n; dst++ {
			if dst != p.root {
				c.bytesMoved[p.root][dst] += int64(len(coll.bufs[dst]))
			}
		}
		c.bytesMu.Unlock()
	}
	coll.done++
	if coll.done == c.n {
		delete(c.splitColls, p.seq)
	}
	c.splitMu.Unlock()
	timing.FinishDeferred(d.Clock(), p.start, align, wire)
	return out
}

// RawAll2All moves buffers exactly like RingAll2All but charges no
// simulated time. Use it only for out-of-band work that does not exist in
// the modeled system — e.g. computing validation metrics, which the paper
// also excludes from per-epoch timings.
func (d *Device) RawAll2All(payloads [][]byte) [][]byte {
	c := d.c
	if len(payloads) != c.n {
		panic(fmt.Sprintf("cluster: RawAll2All got %d payloads for %d devices", len(payloads), c.n))
	}
	c.barrier.wait()
	for q := 0; q < c.n; q++ {
		if q != d.rank {
			c.exchange[d.rank][q] = payloads[q]
		}
	}
	c.barrier.wait()
	received := make([][]byte, c.n)
	for p := 0; p < c.n; p++ {
		if p != d.rank {
			received[p] = c.exchange[p][d.rank]
		}
	}
	c.barrier.wait()
	return received
}

// RawAllGather shares one buffer from every device with every device,
// charging no simulated time (metrics sideband).
func (d *Device) RawAllGather(payload []byte) [][]byte {
	c := d.c
	c.barrier.wait()
	c.exchange[d.rank][d.rank] = payload
	c.barrier.wait()
	out := make([][]byte, c.n)
	for p := 0; p < c.n; p++ {
		out[p] = c.exchange[p][p]
	}
	c.barrier.wait()
	return out
}

// barrier is a reusable N-party barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
