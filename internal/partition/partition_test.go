package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/synthetic"
	"repro/internal/tensor"
)

func ringGraph(n int) *graph.CSR {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		edges = append(edges, graph.Edge{Src: int32(i), Dst: int32(j)}, graph.Edge{Src: int32(j), Dst: int32(i)})
	}
	return graph.FromEdges(n, edges)
}

func TestPartitionCoversAllNodes(t *testing.T) {
	g := ringGraph(30)
	for _, s := range []Strategy{LDG, Hash, Block} {
		a := Partition(g, 4, s)
		if len(a.Of) != 30 {
			t.Fatalf("%v: assignment length %d", s, len(a.Of))
		}
		for i, p := range a.Of {
			if p < 0 || int(p) >= 4 {
				t.Fatalf("%v: node %d assigned to %d", s, i, p)
			}
		}
		sizes := a.Sizes()
		total := 0
		for _, sz := range sizes {
			total += sz
		}
		if total != 30 {
			t.Fatalf("%v: sizes sum %d", s, total)
		}
	}
}

func TestLDGBalance(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	a := Partition(ds.Graph, 4, LDG)
	if imb := a.Imbalance(); imb > 0.15 {
		t.Fatalf("LDG imbalance %v too high", imb)
	}
}

func TestLDGBeatsHashOnCommunityGraph(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	ldg := Partition(ds.Graph, 4, LDG).EdgeCut(ds.Graph)
	hash := Partition(ds.Graph, 4, Hash).EdgeCut(ds.Graph)
	if ldg >= hash {
		t.Fatalf("LDG cut %d should beat hash cut %d on a community graph", ldg, hash)
	}
	t.Logf("edge cut: ldg=%d hash=%d total=%d", ldg, hash, ds.Graph.NumEdges())
}

func TestEdgeCutRing(t *testing.T) {
	g := ringGraph(8)
	a := Partition(g, 2, Block) // blocks 0-3 and 4-7 cut exactly 2 undirected edges
	if cut := a.EdgeCut(g); cut != 4 {
		t.Fatalf("ring block cut %d, want 4 directed edges", cut)
	}
}

func TestBuildLocalGraphInvariants(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	g := ds.Graph.WithSelfLoops()
	a := Partition(g, 3, LDG)
	g2 := &graph.CSR{N: g.N, Cols: g.Cols, RowPtr: g.RowPtr, ColIdx: g.ColIdx}
	lgs := Build(g2, a, graph.NormSym)
	WireSendSets(lgs)

	totalLocal := 0
	for p, lg := range lgs {
		totalLocal += lg.NumLocal
		if lg.Part != p {
			t.Fatalf("part id mismatch")
		}
		// Every local node maps back to its global id's partition.
		for _, gid := range lg.GlobalID {
			if a.Of[gid] != int32(p) {
				t.Fatalf("node %d in wrong partition", gid)
			}
		}
		// Halo owners are never self.
		for s, owner := range lg.HaloOwner {
			if owner == int32(p) {
				t.Fatalf("halo slot %d owned by self", s)
			}
		}
		// RecvFrom slots partition the halo exactly.
		seen := make([]bool, lg.NumHalo)
		for _, slots := range lg.RecvFrom {
			for _, s := range slots {
				if seen[s] {
					t.Fatalf("halo slot %d duplicated", s)
				}
				seen[s] = true
			}
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("halo slot %d not covered by RecvFrom", s)
			}
		}
		// Central ∪ Marginal == local nodes, disjoint.
		if len(lg.CentralRows)+len(lg.MarginalRows) != lg.NumLocal {
			t.Fatal("central/marginal decomposition incomplete")
		}
		// Marginal nodes have ≥1 halo neighbor; central nodes none.
		for i := 0; i < lg.NumLocal; i++ {
			hasRemote := false
			for _, v := range lg.Adj.Neighbors(i) {
				if int(v) >= lg.NumLocal {
					hasRemote = true
				}
			}
			if hasRemote != lg.Marginal[i] {
				t.Fatalf("node %d marginal flag %v but hasRemote %v", i, lg.Marginal[i], hasRemote)
			}
		}
	}
	if totalLocal != g.N {
		t.Fatalf("local nodes sum %d != %d", totalLocal, g.N)
	}
}

func TestWireSendSetsMatchRecv(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	g := ds.Graph.WithSelfLoops()
	a := Partition(g, 4, LDG)
	lgs := Build(g, a, graph.NormSym)
	WireSendSets(lgs)
	for q, lq := range lgs {
		for p := range lgs {
			if p == q {
				continue
			}
			send := lgs[p].SendTo[q]
			recv := lq.RecvFrom[p]
			if len(send) != len(recv) {
				t.Fatalf("pair %d→%d: send %d recv %d", p, q, len(send), len(recv))
			}
			for j := range send {
				gidSent := lgs[p].GlobalID[send[j]]
				gidWanted := lq.HaloGlobalID[recv[j]]
				if gidSent != gidWanted {
					t.Fatalf("pair %d→%d slot %d: sent %d, wanted %d", p, q, j, gidSent, gidWanted)
				}
			}
		}
	}
}

// TestDistributedSpMMMatchesGlobal: aggregating locally over the partitioned
// graph with halo rows filled must reproduce the global aggregation exactly
// — the invariant the whole distributed forward pass rests on.
func TestDistributedSpMMMatchesGlobal(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	g := ds.Graph.WithSelfLoops()
	gw := &graph.CSR{N: g.N, Cols: g.Cols, RowPtr: g.RowPtr, ColIdx: g.ColIdx}
	gw.NormalizeWeights(graph.NormSym)

	rng := tensor.NewRNG(42)
	x := tensor.New(g.N, 8)
	x.FillUniform(rng, -1, 1)
	want := tensor.New(g.N, 8)
	gw.SpMM(want, x)

	a := Partition(g, 3, LDG)
	lgs := Build(g, a, graph.NormSym)
	WireSendSets(lgs)
	for _, lg := range lgs {
		xFull := tensor.New(lg.NumLocal+lg.NumHalo, 8)
		for i, gid := range lg.GlobalID {
			copy(xFull.Row(i), x.Row(int(gid)))
		}
		for s, gid := range lg.HaloGlobalID {
			copy(xFull.Row(lg.NumLocal+s), x.Row(int(gid)))
		}
		out := tensor.New(lg.NumLocal, 8)
		lg.Adj.SpMM(out, xFull)
		for i, gid := range lg.GlobalID {
			for j := 0; j < 8; j++ {
				if d := out.At(i, j) - want.At(int(gid), j); d > 1e-5 || d < -1e-5 {
					t.Fatalf("node %d col %d: local %v global %v", gid, j, out.At(i, j), want.At(int(gid), j))
				}
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	g := ds.Graph
	a := Partition(g, 4, LDG)
	lgs := Build(g, a, graph.NormNone)
	WireSendSets(lgs)
	s := ComputeStats(g, a, lgs)
	if s.Parts != 4 || len(s.HaloPerPart) != 4 {
		t.Fatal("stats shape")
	}
	if s.RemoteNeighborAvg <= 0 || s.MarginalFraction <= 0 || s.MarginalFraction > 1 {
		t.Fatalf("odd stats: %+v", s)
	}
}

func TestPartitionSinglePart(t *testing.T) {
	ds := synthetic.MustLoad("tiny", 1)
	a := Partition(ds.Graph, 1, LDG)
	lgs := Build(ds.Graph, a, graph.NormNone)
	WireSendSets(lgs)
	if lgs[0].NumHalo != 0 || lgs[0].NumMarginal() != 0 {
		t.Fatal("single partition must have no halo / marginal nodes")
	}
}

func TestPartitionPropertyEveryNodeOnce(t *testing.T) {
	err := quick.Check(func(seed uint64, partsRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(100)
		parts := 1 + int(partsRaw%6)
		var edges []graph.Edge
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges = append(edges, graph.Edge{Src: int32(u), Dst: int32(v)}, graph.Edge{Src: int32(v), Dst: int32(u)})
		}
		g := graph.FromEdges(n, edges)
		a := Partition(g, parts, LDG)
		lgs := Build(g, a, graph.NormNone)
		seen := map[int32]int{}
		for _, lg := range lgs {
			for _, gid := range lg.GlobalID {
				seen[gid]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}
