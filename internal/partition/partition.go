// Package partition splits a graph among training devices and builds the
// per-device local structures distributed training needs: the local CSR
// over [local nodes | halo nodes], the send/receive index sets for halo
// exchange, and the central/marginal node decomposition at the heart of
// AdaQP's computation–communication parallelization.
//
// The paper uses METIS. METIS is not available offline in pure Go, so the
// default partitioner is Linear Deterministic Greedy (LDG, Stanton &
// Kliot): it streams nodes in BFS order and places each on the partition
// holding most of its already-placed neighbors, subject to a balance
// cap — a standard quality streaming partitioner whose edge-cut on
// community-structured graphs lands in the same remote-neighbor-ratio range
// the paper reports for METIS (Table 1). A hash partitioner is provided as
// the low-locality baseline.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Strategy selects the partitioning algorithm.
type Strategy int

const (
	// LDG is linear deterministic greedy streaming partitioning in BFS
	// order (the METIS stand-in; see package comment).
	LDG Strategy = iota
	// Hash assigns node i to partition i mod P (worst-case locality).
	Hash
	// Block assigns contiguous node ranges (best case when node ids
	// correlate with communities, as in our generators).
	Block
)

func (s Strategy) String() string {
	switch s {
	case LDG:
		return "ldg"
	case Hash:
		return "hash"
	case Block:
		return "block"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Assignment maps each node to its partition.
type Assignment struct {
	Parts int
	Of    []int32 // node → partition
}

// Partition computes a P-way assignment of g's nodes.
func Partition(g *graph.CSR, parts int, strategy Strategy) *Assignment {
	if parts <= 0 {
		panic("partition: parts must be positive")
	}
	of := make([]int32, g.N)
	switch strategy {
	case Hash:
		for i := range of {
			of[i] = int32(i % parts)
		}
	case Block:
		per := (g.N + parts - 1) / parts
		for i := range of {
			of[i] = int32(i / per)
		}
	case LDG:
		ldg(g, parts, of)
	default:
		panic(fmt.Sprintf("partition: unknown strategy %v", strategy))
	}
	return &Assignment{Parts: parts, Of: of}
}

// ldg streams nodes in BFS order from node 0 (restarting for disconnected
// components) and places each node greedily.
func ldg(g *graph.CSR, parts int, of []int32) {
	const unassigned = -1
	for i := range of {
		of[i] = unassigned
	}
	capPer := float64(g.N)/float64(parts) + 1
	sizes := make([]int, parts)
	order := bfsOrder(g)
	score := make([]float64, parts)
	for _, u := range order {
		for p := range score {
			score[p] = 0
		}
		for _, v := range g.Neighbors(int(u)) {
			if pv := of[v]; pv != unassigned {
				score[pv]++
			}
		}
		best, bestScore := 0, -1.0
		for p := 0; p < parts; p++ {
			// LDG weighting: neighbors × remaining capacity fraction.
			s := score[p] * (1 - float64(sizes[p])/capPer)
			if s > bestScore || (s == bestScore && sizes[p] < sizes[best]) {
				best, bestScore = p, s
			}
		}
		of[u] = int32(best)
		sizes[best]++
	}
}

func bfsOrder(g *graph.CSR) []int32 {
	order := make([]int32, 0, g.N)
	seen := make([]bool, g.N)
	queue := make([]int32, 0, g.N)
	for start := 0; start < g.N; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range g.Neighbors(int(u)) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return order
}

// EdgeCut returns the number of (directed) edges crossing partitions.
func (a *Assignment) EdgeCut(g *graph.CSR) int {
	cut := 0
	for u := 0; u < g.N; u++ {
		pu := a.Of[u]
		for _, v := range g.Neighbors(u) {
			if a.Of[v] != pu {
				cut++
			}
		}
	}
	return cut
}

// Sizes returns the node count per partition.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.Parts)
	for _, p := range a.Of {
		sizes[p]++
	}
	return sizes
}

// Imbalance returns max(size)/mean(size) − 1.
func (a *Assignment) Imbalance() float64 {
	sizes := a.Sizes()
	mx, sum := 0, 0
	for _, s := range sizes {
		sum += s
		if s > mx {
			mx = s
		}
	}
	mean := float64(sum) / float64(len(sizes))
	if mean == 0 {
		return 0
	}
	return float64(mx)/mean - 1
}

// LocalGraph is everything one device needs about its partition.
//
// Column space layout of Adj: columns [0, NumLocal) are this device's own
// nodes in local order; columns [NumLocal, NumLocal+NumHalo) are remote
// neighbors ("halo" nodes) grouped by owner device and ordered to match the
// wire order of halo exchange.
type LocalGraph struct {
	Part     int
	Parts    int
	NumLocal int
	NumHalo  int

	// Adj aggregates over local rows from [local | halo] columns; weights
	// carry the aggregation coefficients α.
	Adj *graph.CSR

	// GlobalID maps local row index → global node id.
	GlobalID []int32
	// HaloGlobalID maps halo slot (0-based within the halo block) → global id.
	HaloGlobalID []int32
	// HaloOwner maps halo slot → owning partition.
	HaloOwner []int32
	// RecvFrom[p] lists halo slots owned by partition p, in wire order.
	RecvFrom [][]int32
	// SendTo[p] lists the *local row indices* whose messages partition p
	// needs, in the wire order p expects (matching p's RecvFrom[this]).
	SendTo [][]int32

	// Marginal[i] is true iff local node i has at least one remote
	// neighbor (paper §2.2: marginal vs central nodes).
	Marginal []bool
	// CentralRows / MarginalRows are the local row indices of each class.
	CentralRows  []int32
	MarginalRows []int32
}

// NumMarginal returns the number of marginal (boundary) nodes.
func (lg *LocalGraph) NumMarginal() int { return len(lg.MarginalRows) }

// Build constructs the per-device LocalGraphs for assignment a over the
// global graph g (g must already contain whatever self-loops/symmetry the
// model wants; weights are recomputed locally with the given norm so local
// coefficients equal the global ones).
//
// Important subtlety: aggregation coefficients must match full-graph
// training exactly, so they are computed on the *global* graph first and
// then copied into each local CSR.
func Build(g *graph.CSR, a *Assignment, norm graph.Norm) []*LocalGraph {
	if len(a.Of) != g.N {
		panic("partition: assignment size mismatch")
	}
	gw := &graph.CSR{N: g.N, Cols: g.Cols, RowPtr: g.RowPtr, ColIdx: g.ColIdx}
	gw.NormalizeWeights(norm)

	parts := a.Parts
	// Local ordering: global nodes of partition p sorted by global id.
	localOf := make([]int32, g.N) // global → local row (within its partition)
	locals := make([][]int32, parts)
	for u := 0; u < g.N; u++ {
		p := a.Of[u]
		localOf[u] = int32(len(locals[p]))
		locals[p] = append(locals[p], int32(u))
	}

	out := make([]*LocalGraph, parts)
	for p := 0; p < parts; p++ {
		out[p] = buildOne(gw, a, p, locals[p], localOf)
	}
	return out
}

func buildOne(g *graph.CSR, a *Assignment, p int, locals []int32, localOf []int32) *LocalGraph {
	numLocal := len(locals)
	// Discover halo nodes: remote neighbors of local nodes, grouped by owner.
	haloSet := map[int32]bool{}
	for _, u := range locals {
		for _, v := range g.Neighbors(int(u)) {
			if a.Of[v] != int32(p) {
				haloSet[v] = true
			}
		}
	}
	// Order halo slots by (owner, global id): this is the wire order.
	halo := make([]int32, 0, len(haloSet))
	for v := range haloSet {
		halo = append(halo, v)
	}
	sort.Slice(halo, func(i, j int) bool {
		oi, oj := a.Of[halo[i]], a.Of[halo[j]]
		if oi != oj {
			return oi < oj
		}
		return halo[i] < halo[j]
	})
	haloSlot := make(map[int32]int32, len(halo))
	haloOwner := make([]int32, len(halo))
	recvFrom := make([][]int32, a.Parts)
	for slot, v := range halo {
		haloSlot[v] = int32(slot)
		haloOwner[slot] = a.Of[v]
		recvFrom[a.Of[v]] = append(recvFrom[a.Of[v]], int32(slot))
	}

	// Build the local adjacency with global weights copied over.
	var rowPtr []int32
	var colIdx []int32
	var weights []float32
	rowPtr = append(rowPtr, 0)
	marginal := make([]bool, numLocal)
	for li, u := range locals {
		nbrs := g.Neighbors(int(u))
		ws := g.EdgeWeights(int(u))
		for k, v := range nbrs {
			var col int32
			if a.Of[v] == int32(p) {
				col = localOf[v]
			} else {
				col = int32(numLocal) + haloSlot[v]
				marginal[li] = true
			}
			colIdx = append(colIdx, col)
			if ws != nil {
				weights = append(weights, ws[k])
			}
		}
		rowPtr = append(rowPtr, int32(len(colIdx)))
	}
	adj := &graph.CSR{
		N: numLocal, Cols: numLocal + len(halo),
		RowPtr: rowPtr, ColIdx: colIdx, Weights: weights,
	}
	if len(weights) == 0 {
		adj.Weights = nil
	}

	var centralRows, marginalRows []int32
	for i, m := range marginal {
		if m {
			marginalRows = append(marginalRows, int32(i))
		} else {
			centralRows = append(centralRows, int32(i))
		}
	}

	return &LocalGraph{
		Part: p, Parts: a.Parts,
		NumLocal: numLocal, NumHalo: len(halo),
		Adj:          adj,
		GlobalID:     locals,
		HaloGlobalID: halo,
		HaloOwner:    haloOwner,
		RecvFrom:     recvFrom,
		Marginal:     marginal,
		CentralRows:  centralRows,
		MarginalRows: marginalRows,
	}
}

// WireSendSets fills in SendTo for every local graph: partition p must send
// exactly the nodes q lists in q.RecvFrom[p], translated to p's local rows,
// in the same order.
func WireSendSets(lgs []*LocalGraph) {
	parts := len(lgs)
	for p := 0; p < parts; p++ {
		lgs[p].SendTo = make([][]int32, parts)
	}
	for q := 0; q < parts; q++ {
		lq := lgs[q]
		for p := 0; p < parts; p++ {
			if p == q {
				continue
			}
			slots := lq.RecvFrom[p]
			if len(slots) == 0 {
				continue
			}
			send := make([]int32, len(slots))
			for i, slot := range slots {
				gid := lq.HaloGlobalID[slot]
				send[i] = localRowOf(lgs[p], gid)
			}
			lgs[p].SendTo[q] = send
		}
	}
}

// localRowOf finds gid's local row in lg via binary search (GlobalID is
// sorted ascending by construction).
func localRowOf(lg *LocalGraph, gid int32) int32 {
	ids := lg.GlobalID
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= gid })
	if i == len(ids) || ids[i] != gid {
		panic(fmt.Sprintf("partition: node %d not found in partition %d", gid, lg.Part))
	}
	return int32(i)
}

// Stats summarizes a built partitioning (Table 1's right column and §2.2).
type Stats struct {
	Parts             int
	EdgeCut           int
	TotalEdges        int
	Imbalance         float64
	RemoteNeighborAvg float64 // avg #halo nodes / avg #local nodes (paper's "remote neighbor ratio")
	MarginalFraction  float64 // marginal nodes / all nodes
	HaloPerPart       []int
	LocalPerPart      []int
	MarginalPerPart   []int
}

// ComputeStats derives partition statistics from built local graphs.
func ComputeStats(g *graph.CSR, a *Assignment, lgs []*LocalGraph) Stats {
	s := Stats{Parts: a.Parts, EdgeCut: a.EdgeCut(g), TotalEdges: g.NumEdges(), Imbalance: a.Imbalance()}
	var sumHalo, sumLocal, sumMarginal int
	for _, lg := range lgs {
		s.HaloPerPart = append(s.HaloPerPart, lg.NumHalo)
		s.LocalPerPart = append(s.LocalPerPart, lg.NumLocal)
		s.MarginalPerPart = append(s.MarginalPerPart, lg.NumMarginal())
		sumHalo += lg.NumHalo
		sumLocal += lg.NumLocal
		sumMarginal += lg.NumMarginal()
	}
	if sumLocal > 0 {
		s.RemoteNeighborAvg = float64(sumHalo) / float64(sumLocal)
		s.MarginalFraction = float64(sumMarginal) / float64(sumLocal)
	}
	return s
}
