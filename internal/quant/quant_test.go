package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestBitWidthHelpers(t *testing.T) {
	cases := []struct {
		b      BitWidth
		levels uint32
		vpb    int
	}{{B2, 3, 4}, {B4, 15, 2}, {B8, 255, 1}}
	for _, c := range cases {
		if c.b.Levels() != c.levels {
			t.Fatalf("%d-bit levels %d", c.b, c.b.Levels())
		}
		if c.b.ValuesPerByte() != c.vpb {
			t.Fatalf("%d-bit vpb %d", c.b, c.b.ValuesPerByte())
		}
	}
	if !B4.Valid() || BitWidth(3).Valid() || BitWidth(0).Valid() {
		t.Fatal("Valid wrong")
	}
	if B2.PackedSize(5) != 2 || B4.PackedSize(5) != 3 || B8.PackedSize(5) != 5 {
		t.Fatal("PackedSize wrong")
	}
}

func TestRoundTripValuesWithinOneStep(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, b := range Candidates {
		h := make([]float32, 33)
		for i := range h {
			h[i] = rng.Float32()*10 - 5
		}
		dst := make([]byte, b.PackedSize(len(h)))
		meta := QuantizeRow(h, b, dst, rng)
		out := make([]float32, len(h))
		DequantizeRow(dst, meta, b, out)
		for i := range h {
			if math.Abs(float64(out[i]-h[i])) > float64(meta.Scale)+1e-6 {
				t.Fatalf("%d-bit: |dq(q(x))−x| = %v exceeds one step %v",
					b, out[i]-h[i], meta.Scale)
			}
		}
	}
}

func TestConstantRowExact(t *testing.T) {
	rng := tensor.NewRNG(2)
	h := []float32{3.5, 3.5, 3.5, 3.5}
	dst := make([]byte, B2.PackedSize(4))
	meta := QuantizeRow(h, B2, dst, rng)
	out := make([]float32, 4)
	DequantizeRow(dst, meta, B2, out)
	for _, v := range out {
		if v != 3.5 {
			t.Fatalf("constant row must round-trip exactly, got %v", v)
		}
	}
}

func TestEndpointsExact(t *testing.T) {
	// min and max of a row always land exactly on quantization levels.
	rng := tensor.NewRNG(3)
	h := []float32{-2, 0.7, 5, 1.1}
	for _, b := range Candidates {
		dst := make([]byte, b.PackedSize(len(h)))
		meta := QuantizeRow(h, b, dst, rng)
		out := make([]float32, len(h))
		DequantizeRow(dst, meta, b, out)
		if out[0] != -2 {
			t.Fatalf("%d-bit: min not exact: %v", b, out[0])
		}
		if math.Abs(float64(out[2]-5)) > 1e-6 {
			t.Fatalf("%d-bit: max not exact: %v", b, out[2])
		}
	}
}

// TestUnbiasedness verifies Theorem 1's E[dq(q(h))] = h by averaging many
// independent stochastic quantizations.
func TestUnbiasedness(t *testing.T) {
	rng := tensor.NewRNG(7)
	h := []float32{-1.3, 0.2, 0.9, 2.7, -0.4}
	const trials = 30000
	for _, b := range []BitWidth{B2, B4} {
		sums := make([]float64, len(h))
		dst := make([]byte, b.PackedSize(len(h)))
		out := make([]float32, len(h))
		var meta RowMeta
		for tr := 0; tr < trials; tr++ {
			for i := range dst {
				dst[i] = 0
			}
			meta = QuantizeRow(h, b, dst, rng)
			DequantizeRow(dst, meta, b, out)
			for i, v := range out {
				sums[i] += float64(v)
			}
		}
		for i := range h {
			mean := sums[i] / trials
			// Standard error of the mean ≈ S/sqrt(6·trials); allow 5σ.
			tol := 5 * float64(meta.Scale) / math.Sqrt(6*trials)
			if math.Abs(mean-float64(h[i])) > tol {
				t.Fatalf("%d-bit: E[dq(q)] = %v but h = %v (tol %v)", b, mean, h[i], tol)
			}
		}
	}
}

// TestVarianceBound verifies Var[dq(q(h))] ≤ D·S²/6 with empirical variance
// close to but not exceeding the bound by more than sampling noise.
func TestVarianceBound(t *testing.T) {
	rng := tensor.NewRNG(11)
	h := make([]float32, 64)
	for i := range h {
		h[i] = rng.Float32()*4 - 2
	}
	const trials = 5000
	for _, b := range []BitWidth{B2, B4} {
		dst := make([]byte, b.PackedSize(len(h)))
		out := make([]float32, len(h))
		var total float64
		var meta RowMeta
		for tr := 0; tr < trials; tr++ {
			for i := range dst {
				dst[i] = 0
			}
			meta = QuantizeRow(h, b, dst, rng)
			DequantizeRow(dst, meta, b, out)
			for i, v := range out {
				d := float64(v - h[i])
				total += d * d
			}
		}
		empirical := total / trials
		bound := RowVarianceBound(h, b)
		if empirical > bound*1.05 {
			t.Fatalf("%d-bit: empirical variance %v exceeds Theorem 1 bound %v", b, empirical, bound)
		}
		// The bound is achieved when fractional parts are uniform; the
		// empirical value should not be absurdly below it either.
		if empirical < bound*0.2 {
			t.Logf("%d-bit: variance %v far below bound %v (OK, bound is worst-case)", b, empirical, bound)
		}
	}
}

func TestQuantizeRowsStreamRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := tensor.New(10, 17)
	x.FillUniform(rng, -3, 3)
	for _, b := range Candidates {
		idx := []int32{2, 5, 9}
		stream := QuantizeRows(x, idx, b, rng)
		if len(stream) != WireSize(len(idx), x.Cols, b) {
			t.Fatalf("%d-bit stream size %d != WireSize %d", b, len(stream), WireSize(len(idx), x.Cols, b))
		}
		dst := tensor.New(10, 17)
		if err := DequantizeRows(stream, dst, idx, len(idx), b); err != nil {
			t.Fatal(err)
		}
		for _, r := range idx {
			for j := 0; j < x.Cols; j++ {
				diff := math.Abs(float64(dst.At(int(r), j) - x.At(int(r), j)))
				mn, mx := tensor.MinMax(x.Row(int(r)))
				step := float64(mx-mn) / float64(b.Levels())
				if diff > step+1e-6 {
					t.Fatalf("%d-bit row %d col %d: err %v > step %v", b, r, j, diff, step)
				}
			}
		}
	}
}

func TestDequantizeRowsSizeMismatch(t *testing.T) {
	dst := tensor.New(2, 4)
	if err := DequantizeRows(make([]byte, 3), dst, nil, 2, B8); err == nil {
		t.Fatal("expected size error")
	}
}

func TestCompressionRatio(t *testing.T) {
	// Large rows: 2-bit ≈ 16×, 4-bit ≈ 8×, 8-bit ≈ 4× (minus header).
	r := CompressionRatio(100, 1024, B2)
	if r < 12 || r > 16 {
		t.Fatalf("2-bit ratio %v", r)
	}
	r = CompressionRatio(100, 1024, B8)
	if r < 3.5 || r > 4 {
		t.Fatalf("8-bit ratio %v", r)
	}
}

func TestStochasticRoundingIsActuallyStochastic(t *testing.T) {
	rng := tensor.NewRNG(13)
	// With range [0,1] and 3 levels (step 1/3), 0.5 lies strictly between
	// levels 1 and 2 and must round both ways.
	h := []float32{0, 0.5, 0.8, 1}
	dst := make([]byte, B2.PackedSize(4))
	out := make([]float32, 4)
	seen := map[float32]bool{}
	for tr := 0; tr < 200; tr++ {
		for i := range dst {
			dst[i] = 0
		}
		meta := QuantizeRow(h, B2, dst, rng)
		DequantizeRow(dst, meta, B2, out)
		seen[out[1]] = true
	}
	if len(seen) < 2 {
		t.Fatal("interior value should round both ways across 200 trials")
	}
}

func TestQuantizeRowsPropertyNoNaN(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(40)
		x := tensor.New(rows, cols)
		x.FillNormal(rng, 0, 5)
		for _, b := range Candidates {
			stream := QuantizeRows(x, nil, b, rng)
			dst := tensor.New(rows, cols)
			if err := DequantizeRows(stream, dst, nil, rows, b); err != nil {
				return false
			}
			for _, v := range dst.Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
