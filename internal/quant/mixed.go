package quant

import (
	"fmt"

	"repro/internal/tensor"
)

// Mixed-bit-width streams. The adaptive assigner gives every message (row)
// its own bit-width; to ship them in one buffer the sender groups rows by
// width, quantizes each group at its single width, and concatenates the
// groups (paper §5, "Implementation"). Both sides hold the same width
// assignment (the master assigner scatters it), so the layout
//
//	[8-bit group][4-bit group][2-bit group]
//
// with rows in wire order *within* each group is self-describing given the
// widths slice — this plays the role of the paper's "bit-retrieval index".

// MixedSize returns the exact wire size for rows whose widths are given
// (dim columns each).
func MixedSize(widths []BitWidth, dim int) int {
	n := 0
	for _, b := range widths {
		n += headerBytes + b.PackedSize(dim)
	}
	return n
}

// groupOrder fixes the concatenation order of width groups on the wire.
var groupOrder = []BitWidth{B8, B4, B2}

// QuantizeMixed encodes row x[idx[i]] at width widths[i] for every i,
// grouped by width in groupOrder. idx nil means rows 0..len(widths)-1.
func QuantizeMixed(x *tensor.Matrix, idx []int32, widths []BitWidth, rng *tensor.RNG) ([]byte, error) {
	if idx != nil && len(idx) != len(widths) {
		return nil, fmt.Errorf("quant: %d indices but %d widths", len(idx), len(widths))
	}
	for i, b := range widths {
		if !b.Packable() {
			return nil, fmt.Errorf("quant: row %d has unpackable bit-width %d", i, b)
		}
	}
	out := make([]byte, 0, MixedSize(widths, x.Cols))
	for _, b := range groupOrder {
		var rows []int32
		for i, w := range widths {
			if w != b {
				continue
			}
			r := int32(i)
			if idx != nil {
				r = idx[i]
			}
			rows = append(rows, r)
		}
		if len(rows) == 0 {
			continue
		}
		out = append(out, QuantizeRows(x, rows, b, rng)...)
	}
	return out, nil
}

// DequantizeMixed decodes a QuantizeMixed stream into dst rows dstRows[i]
// (or rows 0..len(widths)-1 if nil), using the same widths assignment the
// sender used.
func DequantizeMixed(stream []byte, dst *tensor.Matrix, dstRows []int32, widths []BitWidth) error {
	if dstRows != nil && len(dstRows) != len(widths) {
		return fmt.Errorf("quant: %d dst rows but %d widths", len(dstRows), len(widths))
	}
	for i, b := range widths {
		if !b.Packable() {
			return fmt.Errorf("quant: row %d has unpackable bit-width %d", i, b)
		}
	}
	if want := MixedSize(widths, dst.Cols); len(stream) != want {
		return fmt.Errorf("quant: mixed stream is %d bytes, want %d", len(stream), want)
	}
	off := 0
	for _, b := range groupOrder {
		var rows []int32
		for i, w := range widths {
			if w != b {
				continue
			}
			r := int32(i)
			if dstRows != nil {
				r = dstRows[i]
			}
			rows = append(rows, r)
		}
		if len(rows) == 0 {
			continue
		}
		sz := WireSize(len(rows), dst.Cols, b)
		if err := DequantizeRows(stream[off:off+sz], dst, rows, len(rows), b); err != nil {
			return err
		}
		off += sz
	}
	return nil
}

// UniformWidths returns a widths slice assigning b to all n rows.
func UniformWidths(n int, b BitWidth) []BitWidth {
	w := make([]BitWidth, n)
	for i := range w {
		w[i] = b
	}
	return w
}

// RandomWidths samples each row's width uniformly from Candidates — the
// "uniform bit-width sampling" ablation of Table 6.
func RandomWidths(n int, rng *tensor.RNG) []BitWidth {
	w := make([]BitWidth, n)
	for i := range w {
		w[i] = Candidates[rng.Intn(len(Candidates))]
	}
	return w
}
