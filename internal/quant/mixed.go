package quant

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Mixed-bit-width streams. The adaptive assigner gives every message (row)
// its own bit-width; to ship them in one buffer the sender groups rows by
// width, quantizes each group at its single width, and concatenates the
// groups (paper §5, "Implementation"). Both sides hold the same width
// assignment (the master assigner scatters it), so the layout
//
//	[8-bit group][4-bit group][2-bit group]
//
// with rows in wire order *within* each group is self-describing given the
// widths slice — this plays the role of the paper's "bit-retrieval index".

// MixedSize returns the exact wire size for rows whose widths are given
// (dim columns each).
func MixedSize(widths []BitWidth, dim int) int {
	n := 0
	for _, b := range widths {
		n += headerBytes + b.PackedSize(dim)
	}
	return n
}

// groupOrder fixes the concatenation order of width groups on the wire.
var groupOrder = []BitWidth{B8, B4, B2}

// AppendQuantizedMixed appends the QuantizeMixed stream to dst and returns
// the extended slice: row x[idx[i]] is encoded at width widths[i], grouped
// by width in groupOrder. idx nil means rows 0..len(widths)-1. The caller
// owns dst; every appended byte is overwritten, so a dirty pooled buffer
// is a valid dst. Rows are encoded one at a time straight into the output
// — no per-group index slices or sub-buffers are built.
func AppendQuantizedMixed(dst []byte, x *tensor.Matrix, idx []int32, widths []BitWidth, rng *tensor.RNG) ([]byte, error) {
	if idx != nil && len(idx) != len(widths) {
		return nil, fmt.Errorf("quant: %d indices but %d widths", len(idx), len(widths))
	}
	for i, b := range widths {
		if !b.Packable() {
			return nil, fmt.Errorf("quant: row %d has unpackable bit-width %d", i, b)
		}
	}
	for _, b := range groupOrder {
		packed := b.PackedSize(x.Cols)
		for i, w := range widths {
			if w != b {
				continue
			}
			r := i
			if idx != nil {
				r = int(idx[i])
			}
			off := len(dst)
			dst = Grow(dst, headerBytes+packed)
			meta := QuantizeRow(x.Row(r), b, dst[off+headerBytes:off+headerBytes+packed], rng)
			binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(meta.Zero))
			binary.LittleEndian.PutUint32(dst[off+4:], math.Float32bits(meta.Scale))
		}
	}
	return dst, nil
}

// QuantizeMixed encodes row x[idx[i]] at width widths[i] for every i,
// grouped by width in groupOrder. idx nil means rows 0..len(widths)-1.
// Allocates a fresh exact-size buffer; hot paths should use
// AppendQuantizedMixed with a reused buffer instead.
func QuantizeMixed(x *tensor.Matrix, idx []int32, widths []BitWidth, rng *tensor.RNG) ([]byte, error) {
	return AppendQuantizedMixed(make([]byte, 0, MixedSize(widths, x.Cols)), x, idx, widths, rng)
}

// DequantizeMixed decodes a QuantizeMixed stream into dst rows dstRows[i]
// (or rows 0..len(widths)-1 if nil), using the same widths assignment the
// sender used.
func DequantizeMixed(stream []byte, dst *tensor.Matrix, dstRows []int32, widths []BitWidth) error {
	if dstRows != nil && len(dstRows) != len(widths) {
		return fmt.Errorf("quant: %d dst rows but %d widths", len(dstRows), len(widths))
	}
	for i, b := range widths {
		if !b.Packable() {
			return fmt.Errorf("quant: row %d has unpackable bit-width %d", i, b)
		}
	}
	if want := MixedSize(widths, dst.Cols); len(stream) != want {
		return fmt.Errorf("quant: mixed stream is %d bytes, want %d", len(stream), want)
	}
	off := 0
	for _, b := range groupOrder {
		packed := b.PackedSize(dst.Cols)
		for i, w := range widths {
			if w != b {
				continue
			}
			r := i
			if dstRows != nil {
				r = int(dstRows[i])
			}
			meta := RowMeta{
				Zero:  math.Float32frombits(binary.LittleEndian.Uint32(stream[off:])),
				Scale: math.Float32frombits(binary.LittleEndian.Uint32(stream[off+4:])),
			}
			DequantizeRow(stream[off+headerBytes:off+headerBytes+packed], meta, b, dst.Row(r))
			off += headerBytes + packed
		}
	}
	return nil
}

// UniformWidths returns a widths slice assigning b to all n rows.
func UniformWidths(n int, b BitWidth) []BitWidth {
	w := make([]BitWidth, n)
	for i := range w {
		w[i] = b
	}
	return w
}

// RandomWidths samples each row's width uniformly from Candidates — the
// "uniform bit-width sampling" ablation of Table 6.
func RandomWidths(n int, rng *tensor.RNG) []BitWidth {
	w := make([]BitWidth, n)
	for i := range w {
		w[i] = Candidates[rng.Intn(len(Candidates))]
	}
	return w
}
