package quant

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestMixedRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(9, 12)
	x.FillUniform(rng, -2, 2)
	widths := []BitWidth{B2, B8, B4, B4, B2, B8, B2, B4, B8}
	stream, err := QuantizeMixed(x, nil, widths, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != MixedSize(widths, x.Cols) {
		t.Fatalf("stream %d bytes, MixedSize says %d", len(stream), MixedSize(widths, x.Cols))
	}
	dst := tensor.New(9, 12)
	if err := DequantizeMixed(stream, dst, nil, widths); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		mn, mx := tensor.MinMax(x.Row(i))
		step := float64(mx-mn) / float64(widths[i].Levels())
		for j := 0; j < 12; j++ {
			if d := math.Abs(float64(dst.At(i, j) - x.At(i, j))); d > step+1e-6 {
				t.Fatalf("row %d (width %d): err %v > step %v", i, widths[i], d, step)
			}
		}
	}
}

func TestMixedWithIndices(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := tensor.New(20, 8)
	x.FillUniform(rng, 0, 1)
	srcIdx := []int32{19, 0, 7}
	widths := []BitWidth{B8, B2, B8}
	stream, err := QuantizeMixed(x, srcIdx, widths, rng)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(5, 8)
	dstIdx := []int32{4, 2, 0}
	if err := DequantizeMixed(stream, dst, dstIdx, widths); err != nil {
		t.Fatal(err)
	}
	// Row mapping: src 19 → dst 4 at 8-bit.
	for j := 0; j < 8; j++ {
		if d := math.Abs(float64(dst.At(4, j) - x.At(19, j))); d > 1.0/255+1e-5 {
			t.Fatalf("mapped row mismatch: %v", d)
		}
	}
}

func TestMixedRejectsBadWidth(t *testing.T) {
	x := tensor.New(1, 4)
	if _, err := QuantizeMixed(x, nil, []BitWidth{3}, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected invalid-width error")
	}
}

func TestMixedRejectsLengthMismatch(t *testing.T) {
	x := tensor.New(2, 4)
	if _, err := QuantizeMixed(x, []int32{0}, []BitWidth{B2, B2}, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected length error")
	}
	dst := tensor.New(2, 4)
	if err := DequantizeMixed(nil, dst, []int32{0}, []BitWidth{B2, B2}); err == nil {
		t.Fatal("expected dst length error")
	}
}

func TestMixedStreamSizeMismatch(t *testing.T) {
	dst := tensor.New(2, 4)
	if err := DequantizeMixed(make([]byte, 1), dst, nil, []BitWidth{B2, B2}); err == nil {
		t.Fatal("expected stream size error")
	}
}

func TestUniformWidths(t *testing.T) {
	ws := UniformWidths(5, B4)
	if len(ws) != 5 {
		t.Fatal("length")
	}
	for _, w := range ws {
		if w != B4 {
			t.Fatal("value")
		}
	}
}

func TestRandomWidthsValidAndVaried(t *testing.T) {
	rng := tensor.NewRNG(3)
	ws := RandomWidths(300, rng)
	seen := map[BitWidth]int{}
	for _, w := range ws {
		if !w.Valid() {
			t.Fatalf("invalid width %d", w)
		}
		seen[w]++
	}
	if len(seen) != 3 {
		t.Fatalf("300 samples should hit all 3 widths, got %v", seen)
	}
}

func TestMixedEmptyWidths(t *testing.T) {
	x := tensor.New(0, 4)
	stream, err := QuantizeMixed(x, nil, nil, tensor.NewRNG(1))
	if err != nil || len(stream) != 0 {
		t.Fatalf("empty mixed stream: %v, %d bytes", err, len(stream))
	}
	dst := tensor.New(0, 4)
	if err := DequantizeMixed(stream, dst, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixedRejectsPassthroughWidth(t *testing.T) {
	// B32 is a codec-level passthrough: mixed wire streams must refuse it
	// with a clean error on both sides, never panic in the size math.
	rng := tensor.NewRNG(1)
	x := tensor.New(3, 8)
	x.FillUniform(rng, -1, 1)
	widths := []BitWidth{B8, B32, B2}
	if _, err := QuantizeMixed(x, nil, widths, rng); err == nil {
		t.Fatal("QuantizeMixed must reject B32")
	}
	if err := DequantizeMixed(nil, x, nil, widths); err == nil {
		t.Fatal("DequantizeMixed must reject B32")
	}
	if got := WireSize(2, 8, B32); got != 2*4*8 {
		t.Fatalf("WireSize at B32 = %d, want raw fp32 size %d", got, 2*4*8)
	}
	if B32.Packable() || !B32.Valid() {
		t.Fatal("B32 must be Valid but not Packable")
	}
}
