package quant

import (
	"testing"

	"repro/internal/tensor"
)

// TestRoundTripSteadyStateAllocs pins the zero-allocation contract of the
// append-style pack/unpack hot path: once the destination buffer has grown
// to wire size, quantize → dequantize round trips must not allocate at
// all, for every packed width and for the mixed-width grouped layout.
// The race detector instruments allocations, so the exact assertion only
// runs in normal builds (the bodies still execute under -race).
func TestRoundTripSteadyStateAllocs(t *testing.T) {
	x := tensor.New(16, 32)
	rng := tensor.NewRNG(7)
	x.FillUniform(rng, -2, 2)
	idx := make([]int32, x.Rows)
	for i := range idx {
		idx[i] = int32(i)
	}
	dst := tensor.New(16, 32)

	for _, b := range []BitWidth{B2, B4, B8} {
		buf := make([]byte, 0, WireSize(len(idx), x.Cols, b))
		avg := testing.AllocsPerRun(20, func() {
			stream := AppendQuantizedRows(buf, x, idx, b, rng)
			if err := DequantizeRows(stream, dst, idx, len(idx), b); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 && !raceEnabled {
			t.Errorf("B%d round trip allocates %.1f times per run, want 0", b, avg)
		}
	}

	widths := make([]BitWidth, len(idx))
	for i := range widths {
		widths[i] = []BitWidth{B2, B4, B8}[i%3]
	}
	buf := make([]byte, 0, MixedSize(widths, x.Cols))
	avg := testing.AllocsPerRun(20, func() {
		stream, err := AppendQuantizedMixed(buf, x, idx, widths, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := DequantizeMixed(stream, dst, idx, widths); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 && !raceEnabled {
		t.Errorf("mixed round trip allocates %.1f times per run, want 0", avg)
	}
}
