//go:build !race

package quant

// raceEnabled gates exact allocation-count assertions; see
// race_enabled_test.go.
const raceEnabled = false
