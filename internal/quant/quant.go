// Package quant implements the paper's stochastic integer quantization
// (Eqn. 4), deterministic de-quantization (Eqn. 5) and the 2/4/8-bit
// packing of quantized messages into byte streams used on the wire
// (following the EXACT-style merge into uint8 streams described in §5).
//
// Each message (one node's feature/embedding/gradient row) is quantized
// independently with its own zero-point Z = min(h) and scale
// S = (max(h)−min(h))/(2^b−1). Stochastic rounding makes the de-quantized
// estimate unbiased with variance D·S²/6 (Theorem 1) — both properties are
// verified by tests.
package quant

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BitWidth is a supported quantization precision.
type BitWidth uint8

// Candidate bit-widths B = {2, 4, 8} (paper §3.2).
const (
	B2 BitWidth = 2
	B4 BitWidth = 4
	B8 BitWidth = 8
	// B32 is full precision — a passthrough marker, not a packed format.
	// The assigner never selects it and the mixed-stream kernels reject
	// it (see Packable); codecs that see it ship raw float32 rows, and
	// the size helpers account it at 4 bytes per value with no row meta.
	B32 BitWidth = 32
)

// Candidates lists the optional bit-width set B in ascending order.
var Candidates = []BitWidth{B2, B4, B8}

// Valid reports whether b is one of the supported widths (including the
// 32-bit passthrough).
func (b BitWidth) Valid() bool { return b == B2 || b == B4 || b == B8 || b == B32 }

// Packable reports whether b can be packed into a quantized wire stream
// (everything Valid except the full-precision passthrough).
func (b BitWidth) Packable() bool { return b == B2 || b == B4 || b == B8 }

// Levels returns 2^b − 1, the number of quantization steps.
func (b BitWidth) Levels() uint32 { return (1 << b) - 1 }

// ValuesPerByte returns how many codes fit in one byte.
func (b BitWidth) ValuesPerByte() int { return 8 / int(b) }

// PackedSize returns the number of bytes needed for n codes at width b
// (raw float32 bytes for the B32 passthrough).
func (b BitWidth) PackedSize(n int) int {
	if b == B32 {
		return 4 * n
	}
	vp := b.ValuesPerByte()
	return (n + vp - 1) / vp
}

// RowMeta carries the per-row affine parameters needed to de-quantize.
type RowMeta struct {
	Zero  float32 // Z = min(h)
	Scale float32 // S = (max−min)/(2^b−1)
}

// headerBytes is the wire size of one RowMeta (two float32).
const headerBytes = 8

// WireSize returns the exact number of bytes QuantizeRows produces for
// rows rows of dim columns at width b. B32 is the raw full-precision row
// size (4 bytes per value, no per-row meta).
func WireSize(rows, dim int, b BitWidth) int {
	if b == B32 {
		return rows * 4 * dim
	}
	return rows * (headerBytes + b.PackedSize(dim))
}

// QuantizeRow quantizes one float32 vector into codes at width b, writing
// packed bytes to dst (len ≥ PackedSize(len(h))) and returning the row
// meta. rng supplies stochastic-rounding randomness.
//
// Codes are packed LSB-first: value i occupies bits [i*b, (i+1)*b) of the
// stream, accumulated into a uint64 and flushed eight bytes at a time, so
// the hot loop has no per-value division or read-modify-write. Every byte
// of dst[:PackedSize(len(h))] is overwritten, so dst may hold stale data
// (e.g. a pooled buffer).
func QuantizeRow(h []float32, b BitWidth, dst []byte, rng *tensor.RNG) RowMeta {
	mn, mx := tensor.MinMax(h)
	levels := float32(b.Levels())
	scale := (mx - mn) / levels
	meta := RowMeta{Zero: mn, Scale: scale}
	packed := b.PackedSize(len(h))
	if scale == 0 {
		// Constant row: all codes zero; de-quantization returns Zero.
		for i := range dst[:packed] {
			dst[i] = 0
		}
		return meta
	}
	inv := 1 / scale
	shift := uint(b)
	maxCode := b.Levels()
	perWord := 64 / int(b)
	i, o, n := 0, 0, len(h)
	for ; n-i >= perWord; i += perWord {
		var word uint64
		pos := uint(0)
		for _, v := range h[i : i+perWord] {
			t := (v - mn) * inv
			code := stochasticRound(t, rng)
			if code > maxCode {
				code = maxCode
			}
			word |= uint64(code) << pos
			pos += shift
		}
		binary.LittleEndian.PutUint64(dst[o:], word)
		o += 8
	}
	if i < n {
		var word uint64
		pos := uint(0)
		for _, v := range h[i:n] {
			t := (v - mn) * inv
			code := stochasticRound(t, rng)
			if code > maxCode {
				code = maxCode
			}
			word |= uint64(code) << pos
			pos += shift
		}
		for ; o < packed; o++ {
			dst[o] = byte(word)
			word >>= 8
		}
	}
	return meta
}

// stochasticRound rounds t to ⌈t⌉ with probability t−⌊t⌋, else ⌊t⌋.
func stochasticRound(t float32, rng *tensor.RNG) uint32 {
	if t <= 0 {
		return 0
	}
	fl := float32(math.Floor(float64(t)))
	frac := t - fl
	c := uint32(fl)
	if rng.Float32() < frac {
		c++
	}
	return c
}

// DequantizeRow recovers dim float32 values from packed codes, reading the
// stream a uint64 word at a time (mirror of QuantizeRow's layout).
func DequantizeRow(src []byte, meta RowMeta, b BitWidth, out []float32) {
	mask := uint64(b.Levels())
	shift := uint(b)
	scale, zero := meta.Scale, meta.Zero
	perWord := 64 / int(b)
	i, o, n := 0, 0, len(out)
	for ; n-i >= perWord; i += perWord {
		word := binary.LittleEndian.Uint64(src[o:])
		o += 8
		for j := 0; j < perWord; j++ {
			out[i+j] = float32(word&mask)*scale + zero
			word >>= shift
		}
	}
	if i < n {
		var word uint64
		for k := b.PackedSize(n) - 1; k >= o; k-- {
			word = word<<8 | uint64(src[k])
		}
		for ; i < n; i++ {
			out[i] = float32(word&mask)*scale + zero
			word >>= shift
		}
	}
}

// Grow extends dst by n bytes and returns the extended slice, reusing
// capacity when available. The added bytes are NOT zeroed — callers (the
// Append* encoders) overwrite every byte they claim, which is what lets
// pooled buffers be reused without scrubbing.
func Grow(dst []byte, n int) []byte {
	l := len(dst)
	if cap(dst)-l >= n {
		return dst[:l+n]
	}
	out := make([]byte, l+n, (l+n)*2)
	copy(out, dst)
	return out
}

// AppendQuantizedRows appends the QuantizeRows stream for the selected rows
// of x (all rows if idx is nil) to dst and returns the extended slice. The
// caller owns dst and may reuse it across calls; every appended byte is
// overwritten, so a dirty pooled buffer is a valid dst.
func AppendQuantizedRows(dst []byte, x *tensor.Matrix, idx []int32, b BitWidth, rng *tensor.RNG) []byte {
	rows := x.Rows
	if idx != nil {
		rows = len(idx)
	}
	packed := b.PackedSize(x.Cols)
	off := len(dst)
	dst = Grow(dst, WireSize(rows, x.Cols, b))
	for i := 0; i < rows; i++ {
		r := i
		if idx != nil {
			r = int(idx[i])
		}
		meta := QuantizeRow(x.Row(r), b, dst[off+headerBytes:off+headerBytes+packed], rng)
		binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(meta.Zero))
		binary.LittleEndian.PutUint32(dst[off+4:], math.Float32bits(meta.Scale))
		off += headerBytes + packed
	}
	return dst
}

// QuantizeRows encodes the given rows of x (selected by idx; all rows if
// idx is nil) into a self-describing byte stream:
//
//	for each row: [Zero float32][Scale float32][packed codes]
//
// The stream layout is fixed given (rows, dim, b), so the receiver needs
// only those three to decode. Allocates a fresh exact-size buffer; hot
// paths should use AppendQuantizedRows with a reused buffer instead.
func QuantizeRows(x *tensor.Matrix, idx []int32, b BitWidth, rng *tensor.RNG) []byte {
	rows := x.Rows
	if idx != nil {
		rows = len(idx)
	}
	return AppendQuantizedRows(make([]byte, 0, WireSize(rows, x.Cols, b)), x, idx, b, rng)
}

// DequantizeRows decodes a stream produced by QuantizeRows into dst rows
// dstRows[i] (or rows 0..n-1 if dstRows is nil).
func DequantizeRows(stream []byte, dst *tensor.Matrix, dstRows []int32, rows int, b BitWidth) error {
	packed := b.PackedSize(dst.Cols)
	want := rows * (headerBytes + packed)
	if len(stream) != want {
		return fmt.Errorf("quant: stream is %d bytes, want %d (rows=%d dim=%d b=%d)",
			len(stream), want, rows, dst.Cols, b)
	}
	off := 0
	for i := 0; i < rows; i++ {
		meta := RowMeta{
			Zero:  math.Float32frombits(binary.LittleEndian.Uint32(stream[off:])),
			Scale: math.Float32frombits(binary.LittleEndian.Uint32(stream[off+4:])),
		}
		r := i
		if dstRows != nil {
			r = int(dstRows[i])
		}
		DequantizeRow(stream[off+headerBytes:off+headerBytes+packed], meta, b, dst.Row(r))
		off += headerBytes + packed
	}
	return nil
}

// RowVarianceBound returns Theorem 1's variance bound D·S²/6 for one row at
// width b.
func RowVarianceBound(h []float32, b BitWidth) float64 {
	mn, mx := tensor.MinMax(h)
	s := float64(mx-mn) / float64(b.Levels())
	return float64(len(h)) * s * s / 6
}

// FullPrecisionSize returns the bytes for rows×dim float32 (the Vanilla
// wire size).
func FullPrecisionSize(rows, dim int) int { return rows * dim * 4 }

// CompressionRatio returns full-precision bytes ÷ quantized bytes for a
// rows×dim block at width b.
func CompressionRatio(rows, dim int, b BitWidth) float64 {
	q := WireSize(rows, dim, b)
	if q == 0 {
		return 0
	}
	return float64(FullPrecisionSize(rows, dim)) / float64(q)
}
