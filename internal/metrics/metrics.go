// Package metrics collects the measurements the paper reports: convergence
// curves (epoch → validation accuracy), per-epoch time breakdowns
// (communication / computation / quantization, Fig. 10a), wall-clock
// decomposition (training vs bit-width assignment, Fig. 10b), throughput
// and summary statistics over repeated runs (Table 4's mean ± std).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/timing"
)

// EpochStat is one epoch's record.
type EpochStat struct {
	Epoch   int
	Loss    float64
	ValAcc  float64 // NaN when evaluation was skipped this epoch
	SimTime timing.Seconds
}

// Breakdown aggregates simulated time by category across one run.
// Overlap is bookkeeping-only — collective latency hidden behind
// concurrent compute by a split-phase schedule — and is excluded from
// Total (the hidden seconds already elapsed under Comp).
type Breakdown struct {
	Comm, Comp, Quant, Idle, Assign, Overlap timing.Seconds
}

// Total returns the sum of all wall-clock categories (Overlap excluded:
// it annotates hidden time, it is not additional time).
func (b Breakdown) Total() timing.Seconds {
	return b.Comm + b.Comp + b.Quant + b.Idle + b.Assign
}

// FromClock extracts a Breakdown from a device clock.
func FromClock(c *timing.Clock) Breakdown {
	return Breakdown{
		Comm:    c.Spent(timing.Comm),
		Comp:    c.Spent(timing.Comp),
		Quant:   c.Spent(timing.Quant),
		Idle:    c.Spent(timing.Idle),
		Assign:  c.Spent(timing.Assign),
		Overlap: c.Spent(timing.Overlap),
	}
}

// Add returns b + o.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Comm: b.Comm + o.Comm, Comp: b.Comp + o.Comp,
		Quant: b.Quant + o.Quant, Idle: b.Idle + o.Idle,
		Assign: b.Assign + o.Assign, Overlap: b.Overlap + o.Overlap,
	}
}

// Scale returns b × f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Comm: b.Comm * timing.Seconds(f), Comp: b.Comp * timing.Seconds(f),
		Quant: b.Quant * timing.Seconds(f), Idle: b.Idle * timing.Seconds(f),
		Assign: b.Assign * timing.Seconds(f), Overlap: b.Overlap * timing.Seconds(f),
	}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("comm=%.4fs comp=%.4fs quant=%.4fs idle=%.4fs assign=%.4fs overlap=%.4fs",
		b.Comm, b.Comp, b.Quant, b.Idle, b.Assign, b.Overlap)
}

// RunResult is everything one training run produced.
type RunResult struct {
	Dataset string
	Model   string
	Method  string
	// Codec names the message codec the run used (registry name).
	Codec string
	Parts int

	Epochs []EpochStat

	FinalVal  float64
	FinalTest float64

	// WallClock is the simulated end-to-end training time (slowest
	// device), including assignment overhead, excluding evaluation.
	WallClock timing.Seconds
	// AssignTime is the portion of WallClock spent in bit-width
	// assignment (Fig. 10b's "Assign").
	AssignTime timing.Seconds
	// PerDevice holds each device's breakdown.
	PerDevice []Breakdown
	// BytesMoved[src][dst] counts payload bytes over the run.
	BytesMoved [][]int64
	// Faults summarizes the run's injected faults and recovery work
	// (zero value when the run had no fault plan).
	Faults FaultStats
}

// FaultStats counts injected faults and what recovering from them cost.
// Faults charge simulated time only, so a faulted run's loss curve stays
// bit-identical to the fault-free run — these counters plus the inflated
// clocks are the whole observable difference.
type FaultStats struct {
	// Stragglers is how many devices the fault plan slowed down.
	Stragglers int
	// Retries counts transient collective failures that were retried.
	Retries int64
	// RetryTime is the simulated time those retries cost (re-transfers
	// charged to Comm plus exponential backoff charged to Idle).
	RetryTime timing.Seconds
	// Crashes counts device crash/restart events.
	Crashes int64
	// RecoveryTime is the simulated restart downtime crashed devices paid
	// (the replayed epochs' cost shows up in WallClock, not here).
	RecoveryTime timing.Seconds
}

// Any reports whether any fault was injected or any device slowed.
func (f FaultStats) Any() bool {
	return f.Stragglers > 0 || f.Retries > 0 || f.Crashes > 0
}

// PhaseBreakdown is one device's per-phase simulated time — the
// structured form of the Fig. 10 breakdown for programmatic consumers
// (examples, dashboards), replacing hand-rolled per-field prints.
// Overlap is hidden — not additional — time; see Breakdown.
type PhaseBreakdown struct {
	Device  int
	Comp    timing.Seconds
	Comm    timing.Seconds
	Quant   timing.Seconds
	Idle    timing.Seconds
	Assign  timing.Seconds
	Overlap timing.Seconds
}

// Total returns the device's wall-clock phase sum (Overlap excluded).
func (p PhaseBreakdown) Total() timing.Seconds {
	return p.Comp + p.Comm + p.Quant + p.Idle + p.Assign
}

func (p PhaseBreakdown) String() string {
	return fmt.Sprintf("dev %d: comp=%.4fs comm=%.4fs quant=%.4fs idle=%.4fs assign=%.4fs overlap=%.4fs",
		p.Device, p.Comp, p.Comm, p.Quant, p.Idle, p.Assign, p.Overlap)
}

// Phases returns the per-device phase breakdowns of the run.
func (r *RunResult) Phases() []PhaseBreakdown {
	out := make([]PhaseBreakdown, len(r.PerDevice))
	for i, b := range r.PerDevice {
		out[i] = PhaseBreakdown{
			Device: i,
			Comp:   b.Comp, Comm: b.Comm, Quant: b.Quant,
			Idle: b.Idle, Assign: b.Assign, Overlap: b.Overlap,
		}
	}
	return out
}

// OverlapSeconds sums the hidden collective latency across all devices
// (zero unless the run used the split-phase overlap schedule).
func (r *RunResult) OverlapSeconds() timing.Seconds {
	var t timing.Seconds
	for _, b := range r.PerDevice {
		t += b.Overlap
	}
	return t
}

// Throughput returns steady-state epochs per simulated second, excluding
// the periodic bit-width assignment stalls (which the paper reports
// separately in its wall-clock decomposition, Fig. 10b).
func (r *RunResult) Throughput() float64 {
	t := r.WallClock - r.AssignTime
	if t <= 0 {
		return 0
	}
	return float64(len(r.Epochs)) / float64(t)
}

// EndToEndThroughput includes assignment overhead.
func (r *RunResult) EndToEndThroughput() float64 {
	if r.WallClock <= 0 {
		return 0
	}
	return float64(len(r.Epochs)) / float64(r.WallClock)
}

// AvgBreakdown averages the per-device breakdowns.
func (r *RunResult) AvgBreakdown() Breakdown {
	var sum Breakdown
	for _, b := range r.PerDevice {
		sum = sum.Add(b)
	}
	if len(r.PerDevice) == 0 {
		return sum
	}
	return sum.Scale(1 / float64(len(r.PerDevice)))
}

// CommCost returns communication time ÷ total time averaged over devices —
// Table 1's "Communication Cost". Idle (straggler wait at barriers)
// counts toward communication, as it does when the paper divides average
// communication time by average epoch time.
func (r *RunResult) CommCost() float64 {
	b := r.AvgBreakdown()
	tot := b.Total()
	if tot <= 0 {
		return 0
	}
	return float64((b.Comm + b.Idle) / tot)
}

// PerEpoch returns the average per-epoch breakdown.
func (r *RunResult) PerEpoch() Breakdown {
	if len(r.Epochs) == 0 {
		return Breakdown{}
	}
	return r.AvgBreakdown().Scale(1 / float64(len(r.Epochs)))
}

// Curve returns (epochs, val accuracies) for plotting, skipping epochs
// where evaluation did not run.
func (r *RunResult) Curve() (xs []int, ys []float64) {
	for _, e := range r.Epochs {
		if !math.IsNaN(e.ValAcc) {
			xs = append(xs, e.Epoch)
			ys = append(ys, e.ValAcc)
		}
	}
	return xs, ys
}

// Summary holds mean ± std over repeated runs (Table 4 reports 3 runs).
type Summary struct {
	MeanAcc, StdAcc float64
	MeanThroughput  float64
	MeanWallClock   timing.Seconds
	Runs            int
}

// Summarize aggregates repeated runs of the same configuration.
func Summarize(runs []*RunResult) Summary {
	s := Summary{Runs: len(runs)}
	if len(runs) == 0 {
		return s
	}
	var accs []float64
	for _, r := range runs {
		accs = append(accs, r.FinalTest)
		s.MeanThroughput += r.Throughput()
		s.MeanWallClock += r.WallClock
	}
	s.MeanThroughput /= float64(len(runs))
	s.MeanWallClock /= timing.Seconds(len(runs))
	s.MeanAcc, s.StdAcc = MeanStd(accs)
	return s
}

// MeanStd returns the mean and (population) standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// EpochsToReach returns the first epoch whose recorded validation accuracy
// reaches target, or -1.
func (r *RunResult) EpochsToReach(target float64) int {
	for _, e := range r.Epochs {
		if !math.IsNaN(e.ValAcc) && e.ValAcc >= target {
			return e.Epoch
		}
	}
	return -1
}

// BestVal returns the best recorded validation accuracy.
func (r *RunResult) BestVal() float64 {
	best := 0.0
	for _, e := range r.Epochs {
		if !math.IsNaN(e.ValAcc) && e.ValAcc > best {
			best = e.ValAcc
		}
	}
	return best
}

// PairVolumes flattens BytesMoved into sorted "src_dst" → bytes entries
// (Fig. 2's per-device-pair data sizes).
func (r *RunResult) PairVolumes() []PairVolume {
	var out []PairVolume
	for s := range r.BytesMoved {
		for d, b := range r.BytesMoved[s] {
			if s != d && b > 0 {
				out = append(out, PairVolume{Src: s, Dst: d, Bytes: b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// PairVolume is one device pair's transferred byte count.
type PairVolume struct {
	Src, Dst int
	Bytes    int64
}

func (p PairVolume) String() string {
	return fmt.Sprintf("%d_%d: %.2f MB", p.Src, p.Dst, float64(p.Bytes)/1e6)
}
