package metrics

import (
	"math"
	"testing"

	"repro/internal/timing"
)

func TestBreakdownFromClock(t *testing.T) {
	c := timing.NewClock()
	c.Advance(timing.Comm, 2)
	c.Advance(timing.Comp, 3)
	c.Advance(timing.Quant, 0.5)
	b := FromClock(c)
	if b.Comm != 2 || b.Comp != 3 || b.Quant != 0.5 || b.Idle != 0 {
		t.Fatalf("breakdown %+v", b)
	}
	if b.Total() != 5.5 {
		t.Fatalf("total %v", b.Total())
	}
}

func TestBreakdownAddScale(t *testing.T) {
	a := Breakdown{Comm: 1, Comp: 2}
	b := Breakdown{Comm: 3, Quant: 4}
	s := a.Add(b)
	if s.Comm != 4 || s.Comp != 2 || s.Quant != 4 {
		t.Fatalf("add %+v", s)
	}
	h := s.Scale(0.5)
	if h.Comm != 2 || h.Comp != 1 || h.Quant != 2 {
		t.Fatalf("scale %+v", h)
	}
}

func result() *RunResult {
	return &RunResult{
		Epochs: []EpochStat{
			{Epoch: 0, Loss: 2, ValAcc: 0.5, SimTime: 1},
			{Epoch: 1, Loss: 1, ValAcc: math.NaN(), SimTime: 2},
			{Epoch: 2, Loss: 0.5, ValAcc: 0.8, SimTime: 3},
		},
		FinalTest:  0.75,
		WallClock:  10,
		AssignTime: 2,
		PerDevice: []Breakdown{
			{Comm: 4, Comp: 2, Idle: 1},
			{Comm: 6, Comp: 2, Idle: 3},
		},
	}
}

func TestThroughputExcludesAssign(t *testing.T) {
	r := result()
	if got := r.Throughput(); math.Abs(got-3.0/8.0) > 1e-12 {
		t.Fatalf("throughput %v", got)
	}
	if got := r.EndToEndThroughput(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("end-to-end %v", got)
	}
}

func TestAvgBreakdownAndCommCost(t *testing.T) {
	r := result()
	avg := r.AvgBreakdown()
	if avg.Comm != 5 || avg.Comp != 2 || avg.Idle != 2 {
		t.Fatalf("avg %+v", avg)
	}
	// comm+idle / total = 7/9
	if got := r.CommCost(); math.Abs(got-7.0/9.0) > 1e-12 {
		t.Fatalf("comm cost %v", got)
	}
}

func TestCurveSkipsNaN(t *testing.T) {
	xs, ys := result().Curve()
	if len(xs) != 2 || xs[1] != 2 || ys[1] != 0.8 {
		t.Fatalf("curve %v %v", xs, ys)
	}
}

func TestEpochsToReach(t *testing.T) {
	r := result()
	if r.EpochsToReach(0.7) != 2 {
		t.Fatal("EpochsToReach")
	}
	if r.EpochsToReach(0.99) != -1 {
		t.Fatal("unreachable target should give -1")
	}
	if r.BestVal() != 0.8 {
		t.Fatal("BestVal")
	}
}

func TestSummarize(t *testing.T) {
	a, b := result(), result()
	b.FinalTest = 0.85
	s := Summarize([]*RunResult{a, b})
	if s.Runs != 2 {
		t.Fatal("runs")
	}
	if math.Abs(s.MeanAcc-0.8) > 1e-12 || math.Abs(s.StdAcc-0.05) > 1e-12 {
		t.Fatalf("mean/std %v %v", s.MeanAcc, s.StdAcc)
	}
	if Summarize(nil).Runs != 0 {
		t.Fatal("empty summarize")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 2, 3})
	if m != 2 || math.Abs(s-math.Sqrt(2.0/3.0)) > 1e-12 {
		t.Fatalf("mean %v std %v", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty MeanStd")
	}
}

func TestPairVolumes(t *testing.T) {
	r := result()
	r.BytesMoved = [][]int64{{0, 100}, {200, 0}}
	pv := r.PairVolumes()
	if len(pv) != 2 || pv[0].Src != 0 || pv[0].Bytes != 100 || pv[1].Bytes != 200 {
		t.Fatalf("pair volumes %v", pv)
	}
	if pv[0].String() == "" {
		t.Fatal("stringer empty")
	}
}
