package synthetic

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestRMATBasicShape(t *testing.T) {
	g := GenerateRMAT(RMATConfig{Nodes: 500, Edges: 3000, A: 0.57, B: 0.19, C: 0.19, Seed: 1})
	if g.N != 500 {
		t.Fatalf("nodes %d", g.N)
	}
	if g.NumEdges() < 3000 || g.NumEdges() > 6000 {
		t.Fatalf("directed edges %d outside [3000, 6000]", g.NumEdges())
	}
}

func TestRMATSymmetric(t *testing.T) {
	g := GenerateRMAT(RMATConfig{Nodes: 200, Edges: 1000, A: 0.57, B: 0.19, C: 0.19, Seed: 2})
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if !g.HasEdge(int(v), u) {
				t.Fatalf("edge (%d,%d) has no reverse", u, v)
			}
		}
	}
}

func TestRMATNoSelfLoops(t *testing.T) {
	g := GenerateRMAT(RMATConfig{Nodes: 300, Edges: 2000, A: 0.57, B: 0.19, C: 0.19, Seed: 3})
	for u := 0; u < g.N; u++ {
		if g.HasEdge(u, u) {
			t.Fatalf("self loop at %d", u)
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Nodes: 300, Edges: 2000, A: 0.57, B: 0.19, C: 0.19, Seed: 7}
	a, b := GenerateRMAT(cfg), GenerateRMAT(cfg)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("same seed must give same edges")
		}
	}
}

func TestRMATPowerLawSkew(t *testing.T) {
	g := GenerateRMAT(RMATConfig{Nodes: 2000, Edges: 20000, A: 0.57, B: 0.19, C: 0.19, Seed: 5})
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Fatalf("R-MAT should be skewed: max deg %d vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestCommunityLocality(t *testing.T) {
	// With CommunityP high, intra-community edges dominate.
	withComm := GenerateRMAT(RMATConfig{Nodes: 1000, Edges: 8000, A: 0.57, B: 0.19, C: 0.19,
		Communities: 10, CommunityP: 0.8, Seed: 11})
	intra := func(g interface {
		Neighbors(int) []int32
		Degree(int) int
	}, n, k int) float64 {
		per := (n + k - 1) / k
		in, tot := 0, 0
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				tot++
				if u/per == int(v)/per {
					in++
				}
			}
		}
		return float64(in) / float64(tot)
	}
	frac := intra(withComm, 1000, 10)
	if frac < 0.5 {
		t.Fatalf("community rewiring ineffective: intra fraction %.2f", frac)
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := map[string]bool{"reddit-sim": true, "yelp-sim": true, "products-sim": true, "amazon-sim": true, "tiny": true, "tiny-multi": true}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries: %v", len(names), names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected dataset %q", n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := LookupSpec("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadTinyShape(t *testing.T) {
	ds := MustLoad("tiny", 1)
	if ds.NumNodes() != 400 || ds.Features.Cols != 32 || ds.NumClasses != 7 {
		t.Fatalf("tiny shape wrong: %v", ds)
	}
	if ds.Task != SingleLabel {
		t.Fatal("tiny is single-label")
	}
	if ds.Labels.Rows != 400 || ds.Labels.Cols != 1 {
		t.Fatal("single-label matrix shape")
	}
}

func TestMasksPartition(t *testing.T) {
	ds := MustLoad("tiny", 1)
	for i := 0; i < ds.NumNodes(); i++ {
		c := 0
		if ds.TrainMask[i] {
			c++
		}
		if ds.ValMask[i] {
			c++
		}
		if ds.TestMask[i] {
			c++
		}
		if c != 1 {
			t.Fatalf("node %d in %d splits", i, c)
		}
	}
	if MaskedCount(ds.TrainMask) < 200 {
		t.Fatalf("train split too small: %d", MaskedCount(ds.TrainMask))
	}
}

func TestLabelsInRange(t *testing.T) {
	ds := MustLoad("tiny", 1)
	for _, l := range ds.LabelVector() {
		if l < 0 || l >= ds.NumClasses {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestLabelVectorPanicsOnMultiLabel(t *testing.T) {
	ds := MustLoad("tiny-multi", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.LabelVector()
}

func TestMultiLabelTargets(t *testing.T) {
	ds := MustLoad("tiny-multi", 1)
	if ds.Labels.Rows != ds.NumNodes() || ds.Labels.Cols != ds.NumClasses {
		t.Fatal("multi-label matrix shape")
	}
	for i := 0; i < ds.NumNodes(); i++ {
		pos := 0
		for _, v := range ds.Labels.Row(i) {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary target %v", v)
			}
			if v == 1 {
				pos++
			}
		}
		if pos == 0 {
			t.Fatalf("node %d has no labels", i)
		}
	}
}

func TestFeaturesClassSeparated(t *testing.T) {
	// Class-conditioned features: mean distance between same-class rows
	// must be below different-class rows.
	ds := MustLoad("tiny", 1)
	labels := ds.LabelVector()
	dist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i] - b[i])
			s += d * d
		}
		return math.Sqrt(s)
	}
	rng := tensor.NewRNG(1)
	var same, diff float64
	var ns, nd int
	for trial := 0; trial < 4000; trial++ {
		i, j := rng.Intn(ds.NumNodes()), rng.Intn(ds.NumNodes())
		if i == j {
			continue
		}
		d := dist(ds.Features.Row(i), ds.Features.Row(j))
		if labels[i] == labels[j] {
			same += d
			ns++
		} else {
			diff += d
			nd++
		}
	}
	if same/float64(ns) >= diff/float64(nd) {
		t.Fatalf("features not class-separated: same=%.3f diff=%.3f", same/float64(ns), diff/float64(nd))
	}
}

func TestScaleChangesSize(t *testing.T) {
	small := MustLoad("tiny", 0.5)
	if small.NumNodes() != 200 {
		t.Fatalf("scaled nodes %d", small.NumNodes())
	}
	// Scale floor: never fewer than 2 nodes per class.
	micro := MustLoad("tiny", 0.001)
	if micro.NumNodes() < 2*micro.NumClasses {
		t.Fatalf("scale floor broken: %d nodes", micro.NumNodes())
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad("tiny", 1)
	b := MustLoad("tiny", 1)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("graph differs across loads")
	}
	if !tensorEqual(a.Features, b.Features) {
		t.Fatal("features differ across loads")
	}
}

func tensorEqual(x, y *tensor.Matrix) bool {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return false
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			return false
		}
	}
	return true
}

func TestDatasetDensityOrdering(t *testing.T) {
	// The paper's key density fact: Reddit ≫ Amazon ≫ products ≫ Yelp.
	avg := func(name string) float64 {
		s, err := LookupSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		return 2 * float64(s.Edges) / float64(s.Nodes)
	}
	r, a, p, y := avg("reddit-sim"), avg("amazon-sim"), avg("products-sim"), avg("yelp-sim")
	if !(r > a && a > p && p > y) {
		t.Fatalf("density ordering broken: reddit=%.0f amazon=%.0f products=%.0f yelp=%.0f", r, a, p, y)
	}
}
