// Package synthetic generates the benchmark graphs used by the
// reproduction. The paper evaluates on Reddit, Yelp, ogbn-products and
// AmazonProducts, which are not redistributable here; instead we generate
// power-law graphs (R-MAT) with planted community structure whose shape
// parameters — node/edge ratio, feature dimensionality, class count,
// single- vs multi-label task — match each dataset, scaled down ~100× so
// the full experiment suite runs on a laptop. See DESIGN.md for the
// substitution rationale.
package synthetic

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Task distinguishes the two node-classification settings in the paper.
type Task int

const (
	// SingleLabel is softmax classification (Reddit, ogbn-products);
	// metric is accuracy.
	SingleLabel Task = iota
	// MultiLabel is per-class sigmoid classification (Yelp,
	// AmazonProducts); metric is micro-F1.
	MultiLabel
)

func (t Task) String() string {
	if t == MultiLabel {
		return "multi-label"
	}
	return "single-label"
}

// Dataset is a full-graph node classification problem.
type Dataset struct {
	Name     string
	Graph    *graph.CSR // symmetric, no self-loops
	Features *tensor.Matrix
	// Labels: single-label → one column of class ids;
	// multi-label → N×C {0,1} matrix.
	Labels     *tensor.Matrix
	NumClasses int
	Task       Task
	TrainMask  []bool
	ValMask    []bool
	TestMask   []bool
}

// NumNodes returns the node count.
func (d *Dataset) NumNodes() int { return d.Graph.N }

// MaskedCount returns how many entries of mask are set.
func MaskedCount(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// RMATConfig parameterizes the recursive-matrix power-law generator of
// Chakrabarti et al., plus planted community structure: a fraction of edges
// is rewired to connect nodes of the same (latent) community, which gives
// the partitioner locality to exploit — mirroring how METIS finds good cuts
// on real social/co-purchase graphs.
type RMATConfig struct {
	Nodes       int
	Edges       int     // number of undirected edges to sample
	A, B, C     float64 // R-MAT quadrant probabilities (D = 1-A-B-C)
	Communities int     // latent communities (== classes unless 0)
	CommunityP  float64 // probability an edge is intra-community
	Seed        uint64
}

// GenerateRMAT samples an undirected power-law graph.
func GenerateRMAT(cfg RMATConfig) *graph.CSR {
	if cfg.Nodes <= 1 {
		panic("synthetic: RMAT needs at least 2 nodes")
	}
	rng := tensor.NewRNG(cfg.Seed)
	// levels = ceil(log2(nodes))
	levels := 0
	for (1 << levels) < cfg.Nodes {
		levels++
	}
	comm := cfg.Communities
	if comm <= 0 {
		comm = 1
	}
	commOf := assignCommunities(cfg.Nodes, comm, rng)

	edges := make([]graph.Edge, 0, 2*cfg.Edges)
	sample := func() (int, int) {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits
			case r < cfg.A+cfg.B:
				v |= 1 << l
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		return u % cfg.Nodes, v % cfg.Nodes
	}
	for i := 0; i < cfg.Edges; i++ {
		u, v := sample()
		if u == v {
			v = (v + 1) % cfg.Nodes
		}
		if cfg.CommunityP > 0 {
			// Rewire v by community distance: with probability CommunityP
			// stay inside u's community; otherwise hop a geometrically
			// distributed number of communities away (long-range edges
			// decay fast, as in real social/co-purchase graphs). A small
			// residue stays fully random. This gives graphs whose
			// partition cuts are *surface-dominated* — the property that
			// lets METIS (and our partitioners) keep the unique
			// remote-neighbor count far below the edge cut, matching the
			// paper's Table 1 remote-neighbor ratios.
			r := rng.Float64()
			switch {
			case r < cfg.CommunityP:
				v = randomInCommunity(commOf, comm, commOf[u], rng, cfg.Nodes)
			case r < cfg.CommunityP+(1-cfg.CommunityP)*0.95:
				hop := 1
				for rng.Float64() < 0.4 && hop < comm-1 {
					hop++
				}
				if rng.Float64() < 0.5 {
					hop = -hop
				}
				target := ((commOf[u]+hop)%comm + comm) % comm
				// Cross-community edges land on community *hubs* (cubic
				// skew toward the block head): popular nodes mediate
				// inter-community links, which keeps the number of unique
				// remote neighbors — and hence halo size — far below the
				// raw edge cut.
				v = hubInCommunity(comm, target, rng, cfg.Nodes)
			default:
				// fully random long-range edge: keep RMAT's v
			}
			if u == v {
				continue
			}
		}
		edges = append(edges, graph.Edge{Src: int32(u), Dst: int32(v)})
		edges = append(edges, graph.Edge{Src: int32(v), Dst: int32(u)})
	}
	return graph.FromEdges(cfg.Nodes, edges)
}

// assignCommunities maps node → community in contiguous blocks shuffled a
// little, so community structure correlates with node id (helping BFS-style
// partitioners the way locality helps METIS) without being trivially equal
// to the partition.
func assignCommunities(n, k int, rng *tensor.RNG) []int {
	commOf := make([]int, n)
	per := (n + k - 1) / k
	for i := range commOf {
		commOf[i] = i / per
		if commOf[i] >= k {
			commOf[i] = k - 1
		}
	}
	// Swap 1% of nodes across communities. Each swapped node keeps its id
	// (and thus its partition) but draws its edges from a distant block,
	// adding realistic long-range noise. More than a few percent here
	// would blow up the unique-remote-neighbor count: a swapped node's
	// whole neighborhood becomes halo.
	for s := 0; s < n/100; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		commOf[i], commOf[j] = commOf[j], commOf[i]
	}
	return commOf
}

// hubInCommunity samples a node from community `want` with cubic skew
// toward the community's first nodes (its hubs).
func hubInCommunity(numComm, want int, rng *tensor.RNG, n int) int {
	lo, hi := communityRange(numComm, want, n)
	r := rng.Float64()
	v := lo + int(float64(hi-lo)*r*r*r)
	if v >= hi {
		v = hi - 1
	}
	return v
}

// communityRange returns the [lo, hi) id block of community `want`,
// clamped so the range is never empty even when n is not divisible by
// numComm (trailing communities can be empty blocks).
func communityRange(numComm, want, n int) (int, int) {
	per := (n + numComm - 1) / numComm
	lo := want * per
	hi := lo + per
	if hi > n {
		hi = n
	}
	if lo >= hi {
		hi = n
		lo = n - per
		if lo < 0 {
			lo = 0
		}
	}
	return lo, hi
}

func randomInCommunity(commOf []int, numComm, want int, rng *tensor.RNG, n int) int {
	// Communities are near-contiguous blocks; rejection-sample inside the
	// block range with a few retries, falling back to any node in range.
	lo, hi := communityRange(numComm, want, n)
	for t := 0; t < 8; t++ {
		c := lo + rng.Intn(hi-lo)
		if commOf[c] == want {
			return c
		}
	}
	return lo + rng.Intn(hi-lo)
}

// FeatureConfig controls class-conditioned feature synthesis.
type FeatureConfig struct {
	Dim         int
	ClassSignal float32 // magnitude of the class-mean offset (learnability knob)
	NeighborMix float32 // one smoothing round: x ← (1-μ)x + μ·mean(neighbors)
	Seed        uint64
}

// SynthesizeFeatures draws node features from class-conditioned Gaussians
// and optionally smooths them over the graph. Smoothing makes neighborhood
// aggregation genuinely informative, so GNNs beat linear models on these
// graphs — the property the paper's accuracy comparisons rely on.
func SynthesizeFeatures(g *graph.CSR, labels []int, numClasses int, cfg FeatureConfig) *tensor.Matrix {
	rng := tensor.NewRNG(cfg.Seed)
	classMeans := tensor.New(numClasses, cfg.Dim)
	classMeans.FillNormal(rng, 0, cfg.ClassSignal)
	x := tensor.New(g.N, cfg.Dim)
	x.FillNormal(rng, 0, 1)
	for i := 0; i < g.N; i++ {
		row := x.Row(i)
		mean := classMeans.Row(labels[i])
		for j := range row {
			row[j] += mean[j]
		}
	}
	if cfg.NeighborMix > 0 {
		smoothed := tensor.New(g.N, cfg.Dim)
		gm := *g
		gm.NormalizeWeights(graph.NormMean)
		gm.SpMM(smoothed, x)
		mu := cfg.NeighborMix
		for i := range x.Data {
			x.Data[i] = (1-mu)*x.Data[i] + mu*smoothed.Data[i]
		}
		gm.Weights = nil
	}
	return x
}

// splitMasks assigns nodes to train/val/test with the given fractions.
func splitMasks(n int, trainFrac, valFrac float64, rng *tensor.RNG) (train, val, test []bool) {
	train = make([]bool, n)
	val = make([]bool, n)
	test = make([]bool, n)
	perm := rng.Perm(n)
	nTrain := int(trainFrac * float64(n))
	nVal := int(valFrac * float64(n))
	for i, p := range perm {
		switch {
		case i < nTrain:
			train[p] = true
		case i < nTrain+nVal:
			val[p] = true
		default:
			test[p] = true
		}
	}
	return train, val, test
}

// labelsFromCommunities produces single-label targets equal to the node's
// latent community with a little noise, so the task is learnable but not
// trivial.
func labelsFromCommunities(commOf []int, numClasses int, noise float64, rng *tensor.RNG) []int {
	labels := make([]int, len(commOf))
	for i, c := range commOf {
		if rng.Float64() < noise {
			labels[i] = rng.Intn(numClasses)
		} else {
			labels[i] = c
		}
	}
	return labels
}

// multiLabelsFromCommunities produces a 0/1 matrix: each node gets its
// community label plus a few correlated extra labels.
func multiLabelsFromCommunities(commOf []int, numClasses int, extra float64, rng *tensor.RNG) *tensor.Matrix {
	y := tensor.New(len(commOf), numClasses)
	for i, c := range commOf {
		y.Set(i, c, 1)
		// Correlated extras: neighbors in label space (c±1) flip on with
		// probability extra.
		for _, d := range []int{-1, 1, 2} {
			if rng.Float64() < extra {
				j := ((c+d)%numClasses + numClasses) % numClasses
				y.Set(i, j, 1)
			}
		}
	}
	return y
}

// Spec describes one synthetic stand-in dataset.
type Spec struct {
	Name        string
	Nodes       int
	Edges       int
	FeatureDim  int
	NumClasses  int
	Task        Task
	CommunityP  float64
	ClassSignal float32
	NeighborMix float32
	TrainFrac   float64
	ValFrac     float64
}

// Build materializes the dataset deterministically from (spec, seed).
func (s Spec) Build(seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	g := GenerateRMAT(RMATConfig{
		Nodes: s.Nodes, Edges: s.Edges,
		A: 0.57, B: 0.19, C: 0.19,
		Communities: s.NumClasses, CommunityP: s.CommunityP,
		Seed: rng.Uint64(),
	})
	// Recover the community assignment the generator used: regenerate with
	// the same procedure. Simpler: derive labels from contiguous blocks,
	// matching assignCommunities' near-contiguous layout.
	commRng := tensor.NewRNG(seed + 1)
	commOf := assignCommunities(s.Nodes, s.NumClasses, commRng)

	var labels *tensor.Matrix
	labelVec := labelsFromCommunities(commOf, s.NumClasses, 0.05, rng)
	if s.Task == SingleLabel {
		labels = tensor.New(s.Nodes, 1)
		for i, c := range labelVec {
			labels.Set(i, 0, float32(c))
		}
	} else {
		labels = multiLabelsFromCommunities(commOf, s.NumClasses, 0.25, rng)
	}
	x := SynthesizeFeatures(g, labelVec, s.NumClasses, FeatureConfig{
		Dim: s.FeatureDim, ClassSignal: s.ClassSignal,
		NeighborMix: s.NeighborMix, Seed: rng.Uint64(),
	})
	train, val, test := splitMasks(s.Nodes, s.TrainFrac, s.ValFrac, rng)
	return &Dataset{
		Name: s.Name, Graph: g, Features: x, Labels: labels,
		NumClasses: s.NumClasses, Task: s.Task,
		TrainMask: train, ValMask: val, TestMask: test,
	}
}

// LabelVector returns single-label targets as []int. Panics for multi-label.
func (d *Dataset) LabelVector() []int {
	if d.Task != SingleLabel {
		panic("synthetic: LabelVector on multi-label dataset " + d.Name)
	}
	out := make([]int, d.NumNodes())
	for i := range out {
		out[i] = int(d.Labels.At(i, 0))
	}
	return out
}

func (d *Dataset) String() string {
	return fmt.Sprintf("%s{N=%d, E=%d, F=%d, C=%d, %s}",
		d.Name, d.Graph.N, d.Graph.NumEdges(), d.Features.Cols, d.NumClasses, d.Task)
}
