package synthetic

import (
	"fmt"
	"sort"
)

// Scale multiplies the node/edge counts of every registered spec. 1.0 is
// the default laptop scale (~100× smaller than the paper's datasets).
type Scale float64

// Registered dataset specs. Shape parameters follow Table 3 of the paper:
//
//	Dataset          #Nodes     #Edges      #Feat  #Classes  Task
//	Reddit           232,965    114,615,892   602     41     single
//	Yelp             716,847      6,977,410   300    100     multi
//	ogbn-products  2,449,029     61,859,140   100     47     single
//	AmazonProducts 1,569,960    264,339,468   200    107     multi
//
// The -sim versions keep the feature dim, class count and task of the
// original and preserve the *density ordering* — Reddit by far the densest
// (avg degree ~492), AmazonProducts next (~168), ogbn-products (~25), Yelp
// (~10) — because that ordering drives the paper's
// PipeGCN-wins-on-Reddit observation. Absolute degrees are compressed
// (45/30/18/10) so that graphs scaled ~20-100× down remain sparse: keeping
// degree 492 on a few thousand nodes would make the graph near-complete
// and every neighbor remote, destroying the partition-locality structure
// METIS exploits on the real datasets. CommunityP ≈ 0.9 plants the
// locality that gives the partitioner METIS-like remote-neighbor ratios
// (Table 1 reports 31–63%).
var specs = map[string]Spec{
	"reddit-sim": {
		Name: "reddit-sim", Nodes: 8000, Edges: 180000,
		FeatureDim: 602, NumClasses: 41, Task: SingleLabel,
		CommunityP: 0.92, ClassSignal: 0.6, NeighborMix: 0.4,
		TrainFrac: 0.66, ValFrac: 0.10,
	},
	"yelp-sim": {
		Name: "yelp-sim", Nodes: 10000, Edges: 50000,
		FeatureDim: 300, NumClasses: 100, Task: MultiLabel,
		CommunityP: 0.9, ClassSignal: 0.8, NeighborMix: 0.3,
		TrainFrac: 0.75, ValFrac: 0.10,
	},
	"products-sim": {
		Name: "products-sim", Nodes: 16000, Edges: 144000,
		FeatureDim: 100, NumClasses: 47, Task: SingleLabel,
		CommunityP: 0.9, ClassSignal: 0.7, NeighborMix: 0.4,
		TrainFrac: 0.08, ValFrac: 0.02,
	},
	"amazon-sim": {
		Name: "amazon-sim", Nodes: 12000, Edges: 180000,
		FeatureDim: 200, NumClasses: 107, Task: MultiLabel,
		CommunityP: 0.9, ClassSignal: 0.8, NeighborMix: 0.3,
		TrainFrac: 0.85, ValFrac: 0.05,
	},
	// tiny is for unit tests and the quickstart example.
	"tiny": {
		Name: "tiny", Nodes: 400, Edges: 3000,
		FeatureDim: 32, NumClasses: 7, Task: SingleLabel,
		CommunityP: 0.5, ClassSignal: 1.0, NeighborMix: 0.4,
		TrainFrac: 0.6, ValFrac: 0.2,
	},
	"tiny-multi": {
		Name: "tiny-multi", Nodes: 400, Edges: 3000,
		FeatureDim: 32, NumClasses: 10, Task: MultiLabel,
		CommunityP: 0.5, ClassSignal: 1.0, NeighborMix: 0.4,
		TrainFrac: 0.6, ValFrac: 0.2,
	},
}

// Names returns the registered dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(specs))
	for k := range specs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LookupSpec returns the spec for name.
func LookupSpec(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("synthetic: unknown dataset %q (have %v)", name, Names())
	}
	return s, nil
}

// Load builds the named dataset at the given scale with a fixed per-dataset
// seed, so every experiment in the repo sees identical data.
func Load(name string, scale Scale) (*Dataset, error) {
	s, err := LookupSpec(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = 1
	}
	s.Nodes = int(float64(s.Nodes) * float64(scale))
	s.Edges = int(float64(s.Edges) * float64(scale))
	if s.Nodes < 2*s.NumClasses {
		s.Nodes = 2 * s.NumClasses
	}
	seed := uint64(0xADA0)
	for _, c := range name {
		seed = seed*131 + uint64(c)
	}
	return s.Build(seed), nil
}

// MustLoad is Load, panicking on error (for examples and benches).
func MustLoad(name string, scale Scale) *Dataset {
	d, err := Load(name, scale)
	if err != nil {
		panic(err)
	}
	return d
}
