package timing

import (
	"math"
	"testing"
)

func TestDefaultCalibration(t *testing.T) {
	m := Default()
	if m.Bandwidth != 100e9/8 {
		t.Fatalf("bandwidth %v", m.Bandwidth)
	}
	// 1 GB at 12.5 GB/s = 80 ms + latency.
	got := float64(m.TransferTime(0, 1, 1_000_000_000))
	want := 0.08 + m.Latency
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("transfer time %v want %v", got, want)
	}
}

func TestTransferZeroBytesFree(t *testing.T) {
	m := Default()
	if m.TransferTime(0, 1, 0) != 0 {
		t.Fatal("zero bytes should cost zero (skipped message)")
	}
}

func TestPairThetaOverride(t *testing.T) {
	m := Default()
	m.PairTheta = [][]float64{{0, 1e-6}, {1e-9, 0}}
	if m.Theta(0, 1) != 1e-6 || m.Theta(1, 0) != 1e-9 {
		t.Fatal("pair theta override ignored")
	}
}

func TestComputeCosts(t *testing.T) {
	m := Default()
	// 1000×256×256 GEMM = 131M FLOP at 8 TFLOPS ≈ 16.4 µs.
	got := float64(m.DenseTime(1000, 256, 256))
	want := 2.0 * 1000 * 256 * 256 / 8e12
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("dense %v want %v", got, want)
	}
	if m.SpMMTime(0, 100) != 0 {
		t.Fatal("empty SpMM should be free")
	}
	if m.SpMMTime(1000, 64) <= 0 || m.QuantTime(1000) <= 0 || m.ElementwiseTime(1000) <= 0 {
		t.Fatal("cost kernels must be positive")
	}
}

func TestClockBreakdown(t *testing.T) {
	c := NewClock()
	c.Advance(Comm, 1)
	c.Advance(Comp, 2)
	c.Advance(Comm, 3)
	if c.Now() != 6 {
		t.Fatalf("now %v", c.Now())
	}
	if c.Spent(Comm) != 4 || c.Spent(Comp) != 2 || c.Spent(Quant) != 0 {
		t.Fatalf("breakdown wrong: %v", c.Breakdown())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(Comp, 5)
	c.AdvanceTo(Idle, 3) // in the past: no-op
	if c.Now() != 5 || c.Spent(Idle) != 0 {
		t.Fatal("AdvanceTo must not rewind")
	}
	c.AdvanceTo(Idle, 8)
	if c.Now() != 8 || c.Spent(Idle) != 3 {
		t.Fatalf("AdvanceTo forward failed: now=%v idle=%v", c.Now(), c.Spent(Idle))
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClock().Advance(Comm, -1)
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(Quant, 2)
	c.Reset()
	if c.Now() != 0 || c.Spent(Quant) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMaxSeconds(t *testing.T) {
	a, b := NewClock(), NewClock()
	a.Advance(Comp, 1)
	b.Advance(Comp, 4)
	if MaxSeconds([]*Clock{a, b}) != 4 {
		t.Fatal("MaxSeconds wrong")
	}
	if MaxSeconds(nil) != 0 {
		t.Fatal("empty MaxSeconds should be 0")
	}
}

func TestCategoryStrings(t *testing.T) {
	for cat, want := range map[Category]string{
		Comm: "comm", Comp: "comp", Quant: "quant", Idle: "idle", Assign: "assign",
	} {
		if cat.String() != want {
			t.Fatalf("%d → %q", cat, cat.String())
		}
	}
}

func TestBreakdownIsCopy(t *testing.T) {
	c := NewClock()
	c.Advance(Comm, 1)
	b := c.Breakdown()
	b[Comm] = 99
	if c.Spent(Comm) != 1 {
		t.Fatal("Breakdown must return a copy")
	}
}
