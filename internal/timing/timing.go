// Package timing provides the simulated performance model that stands in
// for the paper's testbed (V100/A100 GPUs on 100 Gbps Ethernet).
//
// Why simulate: in this reproduction devices are goroutines in one process,
// so real wall-clock time reflects neither GPU arithmetic throughput nor
// network bandwidth — communication through a channel is effectively free
// and Go GEMM is orders slower than cuBLAS. All *numerics* are executed for
// real (quantization, aggregation, backprop), but *time* is charged to a
// per-device simulated clock using two analytical cost models:
//
//   - compute: FLOPs ÷ effective device throughput;
//   - network: per-message cost θ·bytes + γ (the affine cost model of
//     Sarvotham et al. that the paper's Eqn. 10 uses), with ring all2all
//     charged round by round, each round as slow as its slowest link.
//
// Calibration targets V100-class compute (~8 TFLOP/s effective on GNN
// kernels) and 100 Gbps links, matching the paper's cluster. The absolute
// seconds these models print are estimates; every conclusion drawn from
// them in EXPERIMENTS.md is about ratios and orderings, which the affine
// model preserves.
package timing

import "fmt"

// Seconds is simulated time.
type Seconds float64

// CostModel holds the calibration constants.
type CostModel struct {
	// FLOPs per second a device sustains on dense GEMM.
	DenseFLOPS float64
	// FLOPs per second on sparse aggregation (SpMM is memory-bound, so
	// its effective rate is much lower).
	SparseFLOPS float64
	// Elements per second for quantize/de-quantize kernels (simple linear
	// maps; bandwidth-bound).
	QuantRate float64
	// Link bandwidth in bytes/second (θ = 1/Bandwidth per pair unless
	// overridden by PairTheta).
	Bandwidth float64
	// Fixed per-message latency γ in seconds.
	Latency float64
	// Optional per-device-pair overrides of θ (seconds per byte),
	// keyed by [src][dst]. Nil means uniform 1/Bandwidth.
	PairTheta [][]float64
}

// Default returns the V100 + 100 Gbps calibration used across experiments.
//
// Latency is not wire latency but the effective per-message software
// overhead of the paper's setup: without GPUDirect RDMA every message is
// staged through host memory (D2H copy, kernel launch, TCP send), which
// the paper calls out in §1 and which dominates small quantized messages —
// it is why the authors' 2-bit transfers still take ~0.1 s (their Table 2)
// rather than the microseconds raw bytes would suggest.
func Default() *CostModel {
	return &CostModel{
		DenseFLOPS:  8e12,   // effective, not peak, for 256-wide GNN GEMMs
		SparseFLOPS: 6e11,   // SpMM is memory-bound
		QuantRate:   1.2e11, // elements/s for the (de)quantization kernels
		Bandwidth:   100e9 / 8,
		Latency:     1e-3,
	}
}

// Theta returns the per-byte cost of the src→dst link.
func (c *CostModel) Theta(src, dst int) float64 {
	if c.PairTheta != nil {
		return c.PairTheta[src][dst]
	}
	return 1 / c.Bandwidth
}

// Gamma returns the fixed latency of one message.
func (c *CostModel) Gamma() float64 { return c.Latency }

// TransferTime returns the simulated time to move `bytes` from src to dst.
func (c *CostModel) TransferTime(src, dst, bytes int) Seconds {
	if bytes == 0 {
		return 0
	}
	return Seconds(c.Theta(src, dst)*float64(bytes) + c.Latency)
}

// DenseTime charges a dense GEMM of m×k by k×n.
func (c *CostModel) DenseTime(m, k, n int) Seconds {
	return Seconds(2 * float64(m) * float64(k) * float64(n) / c.DenseFLOPS)
}

// SpMMTime charges a sparse aggregation with nnz edges over dim features.
func (c *CostModel) SpMMTime(nnz, dim int) Seconds {
	return Seconds(2 * float64(nnz) * float64(dim) / c.SparseFLOPS)
}

// ElementwiseTime charges an activation/norm/elementwise pass.
func (c *CostModel) ElementwiseTime(elems int) Seconds {
	return Seconds(float64(elems) / c.DenseFLOPS * 16) // ~16 flop-equivalents/elem
}

// QuantTime charges quantizing or de-quantizing elems values.
func (c *CostModel) QuantTime(elems int) Seconds {
	return Seconds(float64(elems) / c.QuantRate)
}

// Clock is one device's simulated timeline with a per-category breakdown.
type Clock struct {
	now       Seconds
	breakdown map[Category]Seconds
}

// Category labels where simulated time went (Fig. 10's breakdown).
type Category int

const (
	Comm Category = iota
	Comp
	Quant
	Idle // barrier wait
	Assign
	// Overlap is bookkeeping-only: collective latency that a split-phase
	// start/wait pair hid behind concurrent compute. It never advances the
	// clock (the hidden seconds already elapsed under Comp) and is excluded
	// from wall-clock totals; it exists so breakdowns show how much wire
	// time a schedule managed to hide instead of charging to Comm/Idle.
	Overlap
)

func (c Category) String() string {
	switch c {
	case Comm:
		return "comm"
	case Comp:
		return "comp"
	case Quant:
		return "quant"
	case Idle:
		return "idle"
	case Assign:
		return "assign"
	case Overlap:
		return "overlap"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// NewClock returns a clock at t=0.
func NewClock() *Clock {
	return &Clock{breakdown: make(map[Category]Seconds)}
}

// Now returns the current simulated time.
func (c *Clock) Now() Seconds { return c.now }

// Advance adds dt under the given category.
func (c *Clock) Advance(cat Category, dt Seconds) {
	if dt < 0 {
		panic("timing: negative advance")
	}
	c.now += dt
	c.breakdown[cat] += dt
}

// AdvanceTo moves the clock forward to t (if t is later), charging the gap
// to cat (typically Idle for barrier waits).
func (c *Clock) AdvanceTo(cat Category, t Seconds) {
	if t > c.now {
		c.Advance(cat, t-c.now)
	}
}

// AddOverlap records dt seconds of collective latency hidden behind
// concurrent compute. Unlike Advance it never moves the clock: the hidden
// time already elapsed (charged to Comp by the work that hid it), so this
// only annotates the breakdown. Non-positive dt is a no-op.
func (c *Clock) AddOverlap(dt Seconds) {
	if dt > 0 {
		c.breakdown[Overlap] += dt
	}
}

// FinishDeferred charges the completion of a split-phase collective whose
// Start was issued at time start, whose payload alignment point (the
// blocking path's barrier/post rendezvous) is align, and whose wire time
// is wire. It is the single charging rule every backend's Wait must call,
// so clocks stay bit-identical across transports:
//
//   - If the device arrives at Wait no later than align, it executes
//     exactly the blocking sequence — idle to align, then charge the wire
//     time — so Start immediately followed by Wait is bitwise identical
//     to the blocking collective. Any compute done since Start shortened
//     the idle wait and is recorded as Overlap.
//   - If it arrives after the collective completed (align+wire), the
//     whole window was hidden: nothing is charged, Overlap records the
//     hidden span.
//   - In between, the remaining tail of the wire time is charged to Comm
//     and the part that ran concurrently with compute becomes Overlap.
//
// Invariant: ΔComm + ΔIdle + ΔOverlap = (align + wire) − start (clamped
// at zero), i.e. the full latency of the collective is always accounted,
// split between paid and hidden time.
func FinishDeferred(c *Clock, start, align, wire Seconds) {
	now := c.Now()
	if now <= align {
		hid := now - start
		c.AdvanceTo(Idle, align)
		c.Advance(Comm, wire)
		c.AddOverlap(hid)
		return
	}
	ready := align + wire
	if now >= ready {
		c.AddOverlap(ready - start)
		return
	}
	c.AddOverlap(now - start)
	c.Advance(Comm, ready-now)
}

// Breakdown returns a copy of the per-category totals.
func (c *Clock) Breakdown() map[Category]Seconds {
	out := make(map[Category]Seconds, len(c.breakdown))
	for k, v := range c.breakdown {
		out[k] = v
	}
	return out
}

// Spent returns the total under cat.
func (c *Clock) Spent(cat Category) Seconds { return c.breakdown[cat] }

// Reset zeroes the clock and breakdown.
func (c *Clock) Reset() {
	c.now = 0
	c.breakdown = make(map[Category]Seconds)
}

// MaxSeconds returns the max of a slice of clocks' Now (epoch time is the
// slowest device in synchronous training).
func MaxSeconds(clocks []*Clock) Seconds {
	var mx Seconds
	for _, c := range clocks {
		if c.Now() > mx {
			mx = c.Now()
		}
	}
	return mx
}
