// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2 motivation and §5). Each Table*/Figure* function runs
// the corresponding workload and prints rows shaped like the paper's.
// DESIGN.md carries the experiment index; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synthetic"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// Profile scales the experiments. Quick finishes the whole suite in
// minutes on a laptop; Full approaches the paper's configuration (hours).
type Profile struct {
	Name string
	// Scale multiplies dataset node/edge counts (1.0 = the ~100×-reduced
	// registry defaults).
	Scale synthetic.Scale
	// FeatureCap truncates feature dimension (0 = no cap). Reddit's 602
	// features dominate quick-mode compute; capping preserves behaviour
	// because every synthetic feature dimension carries class signal.
	FeatureCap int
	Hidden     int
	// EpochsLong is for accuracy/convergence experiments; EpochsShort for
	// timing-only experiments.
	EpochsLong, EpochsShort int
	Runs                    int // repeats for mean±std (paper: 3)
	EvalEvery               int
}

// Quick is the default CI-scale profile.
var Quick = Profile{
	Name: "quick", Scale: 0.15, FeatureCap: 96, Hidden: 48,
	EpochsLong: 60, EpochsShort: 5, Runs: 1, EvalEvery: 5,
}

// Standard is a heavier profile for overnight runs.
var Standard = Profile{
	Name: "standard", Scale: 0.5, FeatureCap: 0, Hidden: 128,
	EpochsLong: 200, EpochsShort: 10, Runs: 3, EvalEvery: 5,
}

// Full mirrors the paper's setup on the full synthetic registry scale.
var Full = Profile{
	Name: "full", Scale: 1, FeatureCap: 0, Hidden: 256,
	EpochsLong: 250, EpochsShort: 20, Runs: 3, EvalEvery: 5,
}

// Setting is one "xM-yD" partition configuration from the paper.
type Setting struct {
	Label string
	Parts int
}

// Paper partition settings per dataset (Table 4).
func settingsFor(dataset string) []Setting {
	switch dataset {
	case "reddit-sim", "yelp-sim":
		return []Setting{{"2M-1D", 2}, {"2M-2D", 4}}
	default:
		return []Setting{{"2M-2D", 4}, {"2M-4D", 8}}
	}
}

// loadDataset applies the profile's scale and feature cap.
func (p Profile) loadDataset(name string) (*synthetic.Dataset, error) {
	ds, err := synthetic.Load(name, p.Scale)
	if err != nil {
		return nil, err
	}
	if p.FeatureCap > 0 && ds.Features.Cols > p.FeatureCap {
		capped := tensor.New(ds.Features.Rows, p.FeatureCap)
		for i := 0; i < ds.Features.Rows; i++ {
			copy(capped.Row(i), ds.Features.Row(i)[:p.FeatureCap])
		}
		ds.Features = capped
	}
	return ds, nil
}

func (p Profile) baseConfig(model core.ModelKind, method core.Method, epochs int, seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Model = model
	cfg.Method = method
	cfg.Hidden = p.Hidden
	cfg.Epochs = epochs
	cfg.EvalEvery = p.EvalEvery
	cfg.Seed = seed
	// Re-assign roughly 4 times per run regardless of length.
	cfg.ReassignPeriod = epochs / 4
	if cfg.ReassignPeriod < 2 {
		cfg.ReassignPeriod = 2
	}
	return cfg
}

// runRepeated trains Runs times with different seeds and summarizes.
func (p Profile) runRepeated(dep *core.Deployment, cfg core.Config, model *timing.CostModel) ([]*metrics.RunResult, metrics.Summary, error) {
	var runs []*metrics.RunResult
	for r := 0; r < p.Runs; r++ {
		cfg.Seed = uint64(1000*r + 1)
		res, err := core.TrainDeployed(dep, cfg, model)
		if err != nil {
			return nil, metrics.Summary{}, err
		}
		runs = append(runs, res)
	}
	return runs, metrics.Summarize(runs), nil
}

// Options configures an experiment invocation.
type Options struct {
	Profile Profile
	Out     io.Writer
	Model   *timing.CostModel // nil → scaled default (see modelFor)
}

// realNodeCounts are the node counts of the datasets the -sim graphs stand
// in for (paper Table 3), used to scale the cost model.
var realNodeCounts = map[string]float64{
	"reddit-sim":   232965,
	"yelp-sim":     716847,
	"products-sim": 2449029,
	"amazon-sim":   1569960,
}

// modelFor returns the cost model for experiments on ds. The synthetic
// graphs are 30–150× smaller than the real datasets; running them against
// full V100 + 100 Gbps constants would make every workload latency-bound
// and hide the compute/communication balance the paper measures. Instead
// the device and network rates are divided by the same reduction factor —
// a scaled physical model: per-epoch byte/FLOP ratios, and therefore
// communication-cost percentages, speedups and crossovers, match a
// full-size run. Latency γ is scale-free and kept as is.
func (o Options) modelFor(ds *synthetic.Dataset) *timing.CostModel {
	if o.Model != nil {
		return o.Model
	}
	m := timing.Default()
	real, ok := realNodeCounts[ds.Name]
	if !ok {
		return m
	}
	factor := real / float64(ds.NumNodes())
	if factor < 1 {
		factor = 1
	}
	m.DenseFLOPS /= factor
	m.SparseFLOPS /= factor
	m.QuantRate /= factor
	m.Bandwidth /= factor
	return m
}

func (o *Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// header prints a section banner.
func (o *Options) header(id, title string) {
	o.printf("\n=== %s — %s (profile %s) ===\n", id, title, o.Profile.Name)
}
