package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/synthetic"
)

// Figure2 — data size transferred across each device pair in the GCN's
// first layer, amazon-sim with 4 partitions. The imbalance across pairs is
// what motivates the minimax term of the bit-width assignment (Eqn. 10).
func Figure2(o Options) error {
	o.header("Figure 2", "Per-device-pair data size, amazon-sim, 4 partitions")
	ds, err := o.Profile.loadDataset("amazon-sim")
	if err != nil {
		return err
	}
	dep := core.Deploy(ds, 4, core.GCN, partition.Block)
	pairs := core.PairBytesFirstLayer(dep)
	o.printf("%-12s %14s\n", "Device Pair", "Data size (MB)")
	mn, mx := math.Inf(1), 0.0
	for src := range pairs {
		for dst, b := range pairs[src] {
			if src == dst {
				continue
			}
			mb := float64(b) / 1e6
			o.printf("%d_%-10d %14.3f\n", src, dst, mb)
			if mb < mn {
				mn = mb
			}
			if mb > mx {
				mx = mb
			}
		}
	}
	if mn > 0 {
		o.printf("imbalance (max/min): %.2fx\n", mx/mn)
	}
	return nil
}

// Figure3 — computation time of all nodes vs marginal nodes only,
// products-sim with 8 partitions: the central share is what the overlap
// schedule hides.
func Figure3(o Options) error {
	o.header("Figure 3", "Computation time: all vs marginal nodes, products-sim, 8 partitions")
	// Analytic (no training): always full registry scale, hidden 256.
	ds, err := synthetic.Load("products-sim", 1)
	if err != nil {
		return err
	}
	dep := core.Deploy(ds, 8, core.GCN, partition.Block)
	cfg := o.Profile.baseConfig(core.GCN, core.Vanilla, 1, 1)
	cfg.Hidden = 256
	rep := core.AnalyzeOverlap(dep, cfg, quant.B2, o.modelFor(ds))
	o.printf("%-9s %12s %16s %12s\n", "Device", "All (s)", "Marginal (s)", "Ratio (%)")
	for _, d := range rep {
		ratio := 0.0
		if d.TotalComp > 0 {
			ratio = 100 * float64(d.MarginalComp/d.TotalComp)
		}
		o.printf("Device%-3d %12.4f %16.4f %11.1f%%\n", d.Device, d.TotalComp, d.MarginalComp, ratio)
	}
	return nil
}

// Figure9And12 — epoch-to-validation-accuracy convergence curves for all
// methods. Figure 9 is the Reddit/products subset; Figure 12 covers all
// datasets. Curves are printed as CSV series (epoch,acc per method).
func Figure9And12(o Options, datasets []string) error {
	o.header("Figure 9/12", "Convergence curves (validation accuracy by epoch)")
	if len(datasets) == 0 {
		datasets = []string{"reddit-sim", "products-sim"}
	}
	for _, name := range datasets {
		ds, err := o.Profile.loadDataset(name)
		if err != nil {
			return err
		}
		s := settingsFor(name)[0]
		for _, mk := range []core.ModelKind{core.GCN, core.GraphSAGE} {
			dep := core.Deploy(ds, s.Parts, mk, partition.Block)
			methods := []core.Method{core.Vanilla, core.SANCUS, core.AdaQP}
			if mk == core.GraphSAGE {
				methods = []core.Method{core.Vanilla, core.PipeGCN, core.AdaQP}
			}
			o.printf("\n# %s %s %s\n", name, mk, s.Label)
			o.printf("method,epoch,val_acc\n")
			for _, m := range methods {
				cfg := o.Profile.baseConfig(mk, m, o.Profile.EpochsLong, 1)
				res, err := core.TrainDeployed(dep, cfg, o.modelFor(ds))
				if err != nil {
					return err
				}
				xs, ys := res.Curve()
				for i := range xs {
					o.printf("%s,%d,%.4f\n", m, xs[i], ys[i])
				}
			}
		}
	}
	return nil
}

// Figure10 — time breakdown: (a) per-epoch communication / computation /
// quantization for Vanilla vs AdaQP; (b) wall-clock training vs assignment.
func Figure10(o Options) error {
	o.header("Figure 10", "Time breakdown of Vanilla and AdaQP (GCN)")
	o.printf("%-14s %-8s %-9s %10s %10s %10s | %10s %10s\n",
		"Dataset", "Parts", "Method", "Comm(s)", "Comp(s)", "Quant(s)", "Train(s)", "Assign(s)")
	for _, name := range []string{"reddit-sim", "yelp-sim", "products-sim", "amazon-sim"} {
		ds, err := o.Profile.loadDataset(name)
		if err != nil {
			return err
		}
		for _, s := range settingsFor(name) {
			dep := core.Deploy(ds, s.Parts, core.GCN, partition.Block)
			for _, m := range []core.Method{core.Vanilla, core.AdaQP} {
				cfg := o.Profile.baseConfig(core.GCN, m, o.Profile.EpochsShort*4, 1)
				cfg.EvalEvery = 0
				res, err := core.TrainDeployed(dep, cfg, o.modelFor(ds))
				if err != nil {
					return err
				}
				per := res.PerEpoch()
				o.printf("%-14s %-8s %-9s %10.4f %10.4f %10.4f | %10.2f %10.2f\n",
					name, s.Label, m, per.Comm+per.Idle, per.Comp, per.Quant,
					res.WallClock-res.AssignTime, res.AssignTime)
			}
		}
	}
	return nil
}

// Figure11 — sensitivity of AdaQP to group size, λ and the re-assignment
// period: accuracy and assignment overhead, GCN on products-sim 2M-4D.
func Figure11(o Options) error {
	o.header("Figure 11", "Sensitivity: group size, lambda, re-assignment period")
	ds, err := o.Profile.loadDataset("products-sim")
	if err != nil {
		return err
	}
	dep := core.Deploy(ds, 8, core.GCN, partition.Block)
	run := func(mut func(*core.Config)) (acc float64, overhead float64, err error) {
		cfg := o.Profile.baseConfig(core.GCN, core.AdaQP, o.Profile.EpochsLong, 1)
		mut(&cfg)
		res, err := core.TrainDeployed(dep, cfg, o.modelFor(ds))
		if err != nil {
			return 0, 0, err
		}
		return res.FinalTest, float64(res.AssignTime), nil
	}
	o.printf("%-12s %-10s %12s %14s\n", "Knob", "Value", "Accuracy(%)", "Overhead(s)")
	for _, gs := range []int{50, 500, 2000, 10000} {
		acc, ov, err := run(func(c *core.Config) { c.GroupSize = gs })
		if err != nil {
			return err
		}
		o.printf("%-12s %-10d %11.2f%% %14.4f\n", "group-size", gs, 100*acc, ov)
	}
	for _, lam := range []float64{0, 0.25, 0.5, 0.75, 1} {
		acc, ov, err := run(func(c *core.Config) { c.Lambda = lam })
		if err != nil {
			return err
		}
		o.printf("%-12s %-10.2f %11.2f%% %14.4f\n", "lambda", lam, 100*acc, ov)
	}
	for _, period := range []int{10, 25, 50} {
		acc, ov, err := run(func(c *core.Config) { c.ReassignPeriod = period })
		if err != nil {
			return err
		}
		o.printf("%-12s %-10d %11.2f%% %14.4f\n", "period", period, 100*acc, ov)
	}
	return nil
}
