package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synthetic"
)

// smoke is an ultra-reduced profile so each experiment finishes in well
// under a second while still executing its full code path.
var smoke = Profile{
	Name: "smoke", Scale: 0.05, FeatureCap: 24, Hidden: 16,
	EpochsLong: 3, EpochsShort: 2, Runs: 1, EvalEvery: 2,
}

func smokeOptions() (Options, *bytes.Buffer) {
	var buf bytes.Buffer
	return Options{Profile: smoke, Out: &buf}, &buf
}

func TestTable1Smoke(t *testing.T) {
	o, buf := smokeOptions()
	if err := Table1(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "reddit-sim", "2M-2D", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Smoke(t *testing.T) {
	o, buf := smokeOptions()
	if err := Figure2(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "imbalance") {
		t.Fatalf("figure 2 should report imbalance:\n%s", buf.String())
	}
}

func TestTable6Smoke(t *testing.T) {
	o, buf := smokeOptions()
	if err := Table6(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Uniform") || !strings.Contains(out, "Adaptive") {
		t.Fatalf("table 6 incomplete:\n%s", out)
	}
}

func TestFigure9Smoke(t *testing.T) {
	o, buf := smokeOptions()
	if err := Figure9And12(o, []string{"products-sim"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"method,epoch,val_acc", "Vanilla,0,", "AdaQP,0,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("curves missing %q:\n%s", want, out)
		}
	}
}

func TestLoadDatasetFeatureCap(t *testing.T) {
	ds, err := smoke.loadDataset("yelp-sim")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Features.Cols != smoke.FeatureCap {
		t.Fatalf("feature cap not applied: %d cols", ds.Features.Cols)
	}
}

func TestModelForScales(t *testing.T) {
	o, _ := smokeOptions()
	ds, err := smoke.loadDataset("products-sim")
	if err != nil {
		t.Fatal(err)
	}
	m := o.modelFor(ds)
	def := o.modelFor(&synthetic.Dataset{Name: "not-registered"})
	if m.Bandwidth >= def.Bandwidth || m.DenseFLOPS >= def.DenseFLOPS {
		t.Fatal("scaled model should be slower than default")
	}
	// Latency is scale-free.
	if m.Latency != def.Latency {
		t.Fatal("latency must not scale")
	}
	factor := def.Bandwidth / m.Bandwidth
	want := realNodeCounts["products-sim"] / float64(ds.NumNodes())
	if diff := factor - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("scale factor %v, want %v", factor, want)
	}
}

func TestSettingsFor(t *testing.T) {
	if s := settingsFor("reddit-sim"); s[0].Parts != 2 || s[1].Parts != 4 {
		t.Fatalf("reddit settings %v", s)
	}
	if s := settingsFor("amazon-sim"); s[0].Parts != 4 || s[1].Parts != 8 {
		t.Fatalf("amazon settings %v", s)
	}
}
