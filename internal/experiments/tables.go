package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/quant"
	"repro/internal/synthetic"
)

// Table1 — communication overhead of Vanilla: communication cost (% of
// epoch time) and remote-neighbor ratio per dataset/partition setting.
func Table1(o Options) error {
	o.header("Table 1", "Communication overhead in Vanilla")
	o.printf("%-14s %-10s %18s %22s\n", "Dataset", "Partition", "Communication Cost", "Remote Neighbor Ratio")
	cases := []struct {
		ds       string
		settings []Setting
	}{
		{"reddit-sim", []Setting{{"2M-1D", 2}, {"2M-2D", 4}}},
		{"products-sim", []Setting{{"2M-2D", 4}, {"2M-4D", 8}}},
		{"amazon-sim", []Setting{{"2M-2D", 4}, {"2M-4D", 8}}},
	}
	for _, c := range cases {
		ds, err := o.Profile.loadDataset(c.ds)
		if err != nil {
			return err
		}
		for _, s := range c.settings {
			dep := core.Deploy(ds, s.Parts, core.GCN, partition.Block)
			cfg := o.Profile.baseConfig(core.GCN, core.Vanilla, o.Profile.EpochsShort, 1)
			cfg.EvalEvery = 0
			res, err := core.TrainDeployed(dep, cfg, o.modelFor(ds))
			if err != nil {
				return err
			}
			o.printf("%-14s %-10s %17.2f%% %21.2f%%\n",
				c.ds, s.Label, 100*res.CommCost(), 100*dep.Stats.RemoteNeighborAvg)
		}
	}
	return nil
}

// Table2 — central-node computation time vs marginal-node communication
// time with 2-bit quantized messages, products-sim on 8 partitions.
// Communication must exceed computation on every device for the overlap to
// hide central computation completely (§2.2).
func Table2(o Options) error {
	o.header("Table 2", "Central comp vs 2-bit marginal comm, products-sim 8 partitions")
	// This experiment is analytic (no training), so it always runs at the
	// registry's full scale with the paper's hidden size 256.
	ds, err := synthetic.Load("products-sim", 1)
	if err != nil {
		return err
	}
	dep := core.Deploy(ds, 8, core.GCN, partition.Block)
	cfg := o.Profile.baseConfig(core.GCN, core.AdaQPUniform, 1, 1)
	cfg.Hidden = 256
	rep := core.AnalyzeOverlap(dep, cfg, quant.B2, o.modelFor(ds))
	o.printf("%-9s %10s %10s %10s\n", "Device", "comm. (s)", "Comp. (s)", "hidden?")
	for _, d := range rep {
		hidden := "yes"
		if d.CentralComp > d.CommSeconds {
			hidden = "NO"
		}
		o.printf("Device%-3d %10.4f %10.4f %10s\n", d.Device, d.CommSeconds, d.CentralComp, hidden)
	}
	return nil
}

// Table4 — the headline comparison: accuracy and throughput of Vanilla,
// PipeGCN/SANCUS and AdaQP over datasets × models × partition settings.
func Table4(o Options) error {
	o.header("Table 4", "Training performance comparison")
	o.printf("%-14s %-7s %-10s %-13s %12s %22s\n",
		"Dataset", "Parts", "Model", "Method", "Accuracy(%)", "Throughput (epoch/s)")
	for _, name := range []string{"reddit-sim", "yelp-sim", "products-sim", "amazon-sim"} {
		ds, err := o.Profile.loadDataset(name)
		if err != nil {
			return err
		}
		for _, s := range settingsFor(name) {
			for _, mk := range []core.ModelKind{core.GCN, core.GraphSAGE} {
				dep := core.Deploy(ds, s.Parts, mk, partition.Block)
				methods := []core.Method{core.Vanilla, core.SANCUS, core.AdaQP}
				if mk == core.GraphSAGE {
					methods = []core.Method{core.Vanilla, core.PipeGCN, core.AdaQP}
				}
				var vanillaTP float64
				for _, m := range methods {
					cfg := o.Profile.baseConfig(mk, m, o.Profile.EpochsLong, 1)
					runs, sum, err := o.Profile.runRepeated(dep, cfg, o.modelFor(ds))
					if err != nil {
						return err
					}
					_ = runs
					speedup := ""
					if m == core.Vanilla {
						vanillaTP = sum.MeanThroughput
					} else if vanillaTP > 0 {
						speedup = fmt.Sprintf(" (%.2fx)", sum.MeanThroughput/vanillaTP)
					}
					o.printf("%-14s %-7s %-10s %-13s %6.2f±%.2f %15.3f%s\n",
						name, s.Label, mk, m, 100*sum.MeanAcc, 100*sum.StdAcc,
						sum.MeanThroughput, speedup)
				}
			}
		}
	}
	return nil
}

// Table5And9 — wall-clock training time for every dataset (Table 9); the
// paper's Table 5 is the AmazonProducts subset.
func Table5And9(o Options) error {
	o.header("Table 5/9", "Wall-clock training time (s)")
	o.printf("%-14s %-7s %-10s %-13s %16s %14s\n",
		"Dataset", "Parts", "Model", "Method", "Wall-clock (s)", "Assign (s)")
	for _, name := range []string{"reddit-sim", "yelp-sim", "products-sim", "amazon-sim"} {
		ds, err := o.Profile.loadDataset(name)
		if err != nil {
			return err
		}
		for _, s := range settingsFor(name) {
			for _, mk := range []core.ModelKind{core.GCN, core.GraphSAGE} {
				dep := core.Deploy(ds, s.Parts, mk, partition.Block)
				methods := []core.Method{core.Vanilla, core.SANCUS, core.AdaQP}
				if mk == core.GraphSAGE {
					methods = []core.Method{core.Vanilla, core.PipeGCN, core.AdaQP}
				}
				for _, m := range methods {
					cfg := o.Profile.baseConfig(mk, m, o.Profile.EpochsLong, 1)
					cfg.EvalEvery = 0
					res, err := core.TrainDeployed(dep, cfg, o.modelFor(ds))
					if err != nil {
						return err
					}
					o.printf("%-14s %-7s %-10s %-13s %16.2f %14.2f\n",
						name, s.Label, mk, m, res.WallClock, res.AssignTime)
				}
			}
		}
	}
	return nil
}

// Table6 — adaptive bit-width assignment vs uniform random sampling,
// products-sim, GCN + GraphSAGE, 2M-2D and 2M-4D.
func Table6(o Options) error {
	o.header("Table 6", "Uniform sampling vs adaptive assignment, products-sim")
	o.printf("%-7s %-10s %-10s %12s %22s\n", "Parts", "Model", "Method", "Accuracy(%)", "Throughput (epoch/s)")
	ds, err := o.Profile.loadDataset("products-sim")
	if err != nil {
		return err
	}
	for _, s := range []Setting{{"2M-2D", 4}, {"2M-4D", 8}} {
		for _, mk := range []core.ModelKind{core.GCN, core.GraphSAGE} {
			dep := core.Deploy(ds, s.Parts, mk, partition.Block)
			for _, m := range []core.Method{core.AdaQPRandom, core.AdaQP} {
				cfg := o.Profile.baseConfig(mk, m, o.Profile.EpochsLong, 1)
				_, sum, err := o.Profile.runRepeated(dep, cfg, o.modelFor(ds))
				if err != nil {
					return err
				}
				label := "Uniform"
				if m == core.AdaQP {
					label = "Adaptive"
				}
				o.printf("%-7s %-10s %-10s %6.2f±%.2f %15.3f\n",
					s.Label, mk, label, 100*sum.MeanAcc, 100*sum.StdAcc, sum.MeanThroughput)
			}
		}
	}
	return nil
}

// Table7 — scalability: 24 devices (6M-4D), GraphSAGE, throughput of
// Vanilla vs AdaQP.
func Table7(o Options) error {
	o.header("Table 7", "Training throughput on the 6M-4D partition (24 devices)")
	o.printf("%-14s %-10s %22s\n", "Dataset", "Method", "Throughput (epoch/s)")
	for _, name := range []string{"products-sim", "amazon-sim"} {
		// 24 devices need the largest graphs available: always registry
		// scale (profile feature caps still apply), so per-pair messages
		// stay meaningfully sized.
		ds, err := synthetic.Load(name, 1)
		if err != nil {
			return err
		}
		dep := core.Deploy(ds, 24, core.GraphSAGE, partition.Block)
		var vanillaTP float64
		for _, m := range []core.Method{core.Vanilla, core.AdaQP} {
			cfg := o.Profile.baseConfig(core.GraphSAGE, m, o.Profile.EpochsShort*2, 1)
			cfg.EvalEvery = 0
			res, err := core.TrainDeployed(dep, cfg, o.modelFor(ds))
			if err != nil {
				return err
			}
			tp := res.Throughput()
			speedup := ""
			if m == core.Vanilla {
				vanillaTP = tp
			} else if vanillaTP > 0 {
				speedup = fmt.Sprintf(" (%.2fx)", tp/vanillaTP)
			}
			o.printf("%-14s %-10s %15.3f%s\n", name, m, tp, speedup)
		}
	}
	return nil
}
