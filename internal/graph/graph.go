// Package graph provides compressed sparse row (CSR) graphs, the
// normalization schemes used by GCN and GraphSAGE aggregation, and the
// sparse-dense kernels (SpMM and its transpose) that implement GNN
// message passing on a single device.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// CSR is a weighted directed graph in compressed sparse row form.
// Edge e of node u lives at index p ∈ [RowPtr[u], RowPtr[u+1]) with
// destination ColIdx[p] and weight Weights[p] (the aggregation coefficient
// α_{col,row} of Eqn. 3 in the paper). An unweighted graph has nil Weights,
// interpreted as all-ones.
type CSR struct {
	N       int // number of row nodes
	Cols    int // number of column nodes (== N for square graphs)
	RowPtr  []int32
	ColIdx  []int32
	Weights []float32
}

// NumEdges returns the number of stored (directed) edges.
func (g *CSR) NumEdges() int { return len(g.ColIdx) }

// Degree returns the out-degree of node u.
func (g *CSR) Degree(u int) int { return int(g.RowPtr[u+1] - g.RowPtr[u]) }

// Neighbors returns the column indices adjacent to row u (a view).
func (g *CSR) Neighbors(u int) []int32 {
	return g.ColIdx[g.RowPtr[u]:g.RowPtr[u+1]]
}

// EdgeWeights returns the weights of row u's edges (a view); nil if the
// graph is unweighted.
func (g *CSR) EdgeWeights(u int) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.RowPtr[u]:g.RowPtr[u+1]]
}

// Edge is a directed edge used by builders.
type Edge struct{ Src, Dst int32 }

// FromEdges builds a square CSR over n nodes from an edge list. Duplicate
// edges are removed; self-loops are kept as given.
func FromEdges(n int, edges []Edge) *CSR {
	deg := make([]int32, n)
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, n))
		}
		deg[e.Src]++
	}
	rowPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + deg[i]
	}
	colIdx := make([]int32, len(edges))
	cursor := make([]int32, n)
	copy(cursor, rowPtr[:n])
	for _, e := range edges {
		colIdx[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	g := &CSR{N: n, Cols: n, RowPtr: rowPtr, ColIdx: colIdx}
	g.sortAndDedup()
	return g
}

// sortAndDedup sorts each adjacency list and removes duplicate edges.
func (g *CSR) sortAndDedup() {
	newCol := make([]int32, 0, len(g.ColIdx))
	newPtr := make([]int32, g.N+1)
	for u := 0; u < g.N; u++ {
		nbrs := g.ColIdx[g.RowPtr[u]:g.RowPtr[u+1]]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		var prev int32 = -1
		for _, v := range nbrs {
			if v != prev {
				newCol = append(newCol, v)
				prev = v
			}
		}
		newPtr[u+1] = int32(len(newCol))
	}
	g.RowPtr = newPtr
	g.ColIdx = newCol
}

// Symmetrize returns a graph containing every edge of g in both directions
// (duplicates removed). Self-loops are preserved once.
func (g *CSR) Symmetrize() *CSR {
	edges := make([]Edge, 0, 2*len(g.ColIdx))
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			edges = append(edges, Edge{int32(u), v})
			if int32(u) != v {
				edges = append(edges, Edge{v, int32(u)})
			}
		}
	}
	return FromEdges(g.N, edges)
}

// WithSelfLoops returns a copy of g with a self-loop added to every node
// that lacks one.
func (g *CSR) WithSelfLoops() *CSR {
	edges := make([]Edge, 0, len(g.ColIdx)+g.N)
	for u := 0; u < g.N; u++ {
		edges = append(edges, Edge{int32(u), int32(u)})
		for _, v := range g.Neighbors(u) {
			if v != int32(u) {
				edges = append(edges, Edge{int32(u), v})
			}
		}
	}
	return FromEdges(g.N, edges)
}

// HasEdge reports whether edge (u, v) exists (binary search).
func (g *CSR) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// Norm selects the edge-weight normalization applied by NormalizeWeights.
type Norm int

const (
	// NormNone leaves all coefficients at 1 (plain sum aggregation).
	NormNone Norm = iota
	// NormSym is GCN normalization: α_{u,v} = 1/sqrt(deg(u)·deg(v)), using
	// in-degrees of the (self-looped) graph.
	NormSym
	// NormMean is mean aggregation: α_{u,v} = 1/deg(v) for each edge into v.
	NormMean
)

// NormalizeWeights attaches aggregation coefficients to g in place.
// Degrees are computed from g itself, so call after WithSelfLoops /
// Symmetrize as appropriate.
func (g *CSR) NormalizeWeights(n Norm) {
	switch n {
	case NormNone:
		g.Weights = nil
	case NormMean:
		g.Weights = make([]float32, len(g.ColIdx))
		for u := 0; u < g.N; u++ {
			d := g.Degree(u)
			if d == 0 {
				continue
			}
			w := 1 / float32(d)
			for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
				g.Weights[p] = w
			}
		}
	case NormSym:
		// Row degrees double as column degrees only for symmetric graphs;
		// compute column degrees explicitly so directed graphs also work.
		colDeg := make([]int32, g.Cols)
		for _, v := range g.ColIdx {
			colDeg[v]++
		}
		g.Weights = make([]float32, len(g.ColIdx))
		for u := 0; u < g.N; u++ {
			du := float32(g.Degree(u))
			for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
				dv := float32(colDeg[g.ColIdx[p]])
				if du > 0 && dv > 0 {
					g.Weights[p] = 1 / sqrt32(du*dv)
				}
			}
		}
	default:
		panic(fmt.Sprintf("graph: unknown norm %d", n))
	}
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// SpMM computes out = A × X where A is g (N×Cols sparse) and X is Cols×F
// dense: out[u] = Σ_{v ∈ N(u)} α_{v,u}·X[v]. out must be N×F.
func (g *CSR) SpMM(out, x *tensor.Matrix) {
	if x.Rows != g.Cols || out.Rows != g.N || out.Cols != x.Cols {
		panic(fmt.Sprintf("graph: SpMM shape mismatch graph %dx%d, x %dx%d, out %dx%d",
			g.N, g.Cols, x.Rows, x.Cols, out.Rows, out.Cols))
	}
	// Small graphs skip the closure entirely: one passed to parallelOver
	// always heap-escapes (the go statement leaks it), even when run inline.
	if g.N < 2*parallelMinChunk {
		g.spMMRange(out, x, 0, g.N)
		return
	}
	parallelOver(g.N, func(lo, hi int) { g.spMMRange(out, x, lo, hi) })
}

func (g *CSR) spMMRange(out, x *tensor.Matrix, lo, hi int) {
	for u := lo; u < hi; u++ {
		orow := out.Row(u)
		for j := range orow {
			orow[j] = 0
		}
		start, end := g.RowPtr[u], g.RowPtr[u+1]
		for p := start; p < end; p++ {
			w := float32(1)
			if g.Weights != nil {
				w = g.Weights[p]
			}
			src := x.Row(int(g.ColIdx[p]))
			for j, v := range src {
				orow[j] += w * v
			}
		}
	}
}

// SpMMT computes out = Aᵀ × Y: the backward counterpart of SpMM, scattering
// each row-u gradient back to u's neighbors. out must be Cols×F; it is
// zeroed first. Sequential over rows to keep scatter-adds race-free.
func (g *CSR) SpMMT(out, y *tensor.Matrix) {
	if y.Rows != g.N || out.Rows != g.Cols || out.Cols != y.Cols {
		panic(fmt.Sprintf("graph: SpMMT shape mismatch graph %dx%d, y %dx%d, out %dx%d",
			g.N, g.Cols, y.Rows, y.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for u := 0; u < g.N; u++ {
		yrow := y.Row(u)
		start, end := g.RowPtr[u], g.RowPtr[u+1]
		for p := start; p < end; p++ {
			w := float32(1)
			if g.Weights != nil {
				w = g.Weights[p]
			}
			dst := out.Row(int(g.ColIdx[p]))
			for j, v := range yrow {
				dst[j] += w * v
			}
		}
	}
}

// parallelOver splits [0, n) across goroutines (same contract as
// tensor.parallelRows; duplicated to avoid exporting it from tensor).
const parallelMinChunk = 256

func parallelOver(n int, fn func(lo, hi int)) {
	const minChunk = parallelMinChunk
	if n < 2*minChunk {
		fn(0, n)
		return
	}
	workers := 8
	chunk := (n + workers - 1) / workers
	done := make(chan struct{}, workers)
	count := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		count++
		go func(lo, hi int) {
			fn(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < count; i++ {
		<-done
	}
}

// AvgDegree returns the mean out-degree.
func (g *CSR) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.ColIdx)) / float64(g.N)
}

// MaxDegree returns the largest out-degree.
func (g *CSR) MaxDegree() int {
	mx := 0
	for u := 0; u < g.N; u++ {
		if d := g.Degree(u); d > mx {
			mx = d
		}
	}
	return mx
}

// InducedSubgraph returns the subgraph over nodes (given as original IDs)
// with node i of the result corresponding to nodes[i]. Edges to nodes
// outside the set are dropped. Also returns the mapping old→new (-1 if
// absent).
func (g *CSR) InducedSubgraph(nodes []int32) (*CSR, []int32) {
	remap := make([]int32, g.N)
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range nodes {
		remap[old] = int32(newID)
	}
	var edges []Edge
	for newU, old := range nodes {
		for _, v := range g.Neighbors(int(old)) {
			if nv := remap[v]; nv >= 0 {
				edges = append(edges, Edge{int32(newU), nv})
			}
		}
	}
	return FromEdges(len(nodes), edges), remap
}
