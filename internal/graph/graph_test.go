package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func pathGraph(n int) *CSR {
	var edges []Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1)}, Edge{int32(i + 1), int32(i)})
	}
	return FromEdges(n, edges)
}

func TestFromEdgesDedup(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {0, 1}, {0, 2}, {1, 0}})
	if g.NumEdges() != 3 {
		t.Fatalf("dedup failed: %d edges", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestFromEdgesSorted(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 3}, {0, 1}, {0, 2}})
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i] <= nbrs[i-1] {
			t.Fatal("neighbors must be sorted")
		}
	}
}

func TestFromEdgesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromEdges(2, []Edge{{0, 5}})
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2}, {2, 3}})
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) || g.HasEdge(1, 1) {
		t.Fatal("HasEdge wrong")
	}
}

func TestSymmetrize(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	s := g.Symmetrize()
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !s.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if s.NumEdges() != 4 {
		t.Fatalf("symmetrize edge count %d", s.NumEdges())
	}
}

func TestWithSelfLoops(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 0}, {0, 1}})
	sl := g.WithSelfLoops()
	for i := 0; i < 3; i++ {
		if !sl.HasEdge(i, i) {
			t.Fatalf("node %d missing self loop", i)
		}
	}
	if sl.NumEdges() != 4 { // 3 loops + (0,1)
		t.Fatalf("edges %d", sl.NumEdges())
	}
}

func TestNormMeanRowsSumToOne(t *testing.T) {
	g := pathGraph(6).WithSelfLoops()
	g.NormalizeWeights(NormMean)
	for u := 0; u < g.N; u++ {
		var s float64
		for _, w := range g.EdgeWeights(u) {
			s += float64(w)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d weights sum to %v", u, s)
		}
	}
}

func TestNormSymValues(t *testing.T) {
	// Path 0-1-2 with self-loops: deg(0)=2, deg(1)=3, deg(2)=2.
	g := pathGraph(3).WithSelfLoops()
	g.NormalizeWeights(NormSym)
	// Edge (0,1): 1/sqrt(2*3)
	want := 1 / math.Sqrt(6)
	nbrs := g.Neighbors(0)
	ws := g.EdgeWeights(0)
	found := false
	for i, v := range nbrs {
		if v == 1 {
			found = true
			if math.Abs(float64(ws[i])-want) > 1e-6 {
				t.Fatalf("sym weight %v, want %v", ws[i], want)
			}
		}
	}
	if !found {
		t.Fatal("edge (0,1) missing")
	}
}

func TestNormNoneClearsWeights(t *testing.T) {
	g := pathGraph(3)
	g.NormalizeWeights(NormMean)
	g.NormalizeWeights(NormNone)
	if g.Weights != nil {
		t.Fatal("NormNone should clear weights")
	}
}

func spMMNaive(g *CSR, x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(g.N, x.Cols)
	for u := 0; u < g.N; u++ {
		for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
			w := float32(1)
			if g.Weights != nil {
				w = g.Weights[p]
			}
			for j := 0; j < x.Cols; j++ {
				out.Data[u*x.Cols+j] += w * x.At(int(g.ColIdx[p]), j)
			}
		}
	}
	return out
}

func randomGraph(rng *tensor.RNG, n, e int) *CSR {
	edges := make([]Edge, 0, e)
	for i := 0; i < e; i++ {
		edges = append(edges, Edge{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	return FromEdges(n, edges)
}

func TestSpMMMatchesNaive(t *testing.T) {
	rng := tensor.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(50)
		g := randomGraph(rng, n, 4*n)
		g.NormalizeWeights(NormSym)
		x := tensor.New(n, 1+rng.Intn(16))
		x.FillUniform(rng, -1, 1)
		out := tensor.New(n, x.Cols)
		g.SpMM(out, x)
		if !tensor.Equal(out, spMMNaive(g, x), 1e-4) {
			t.Fatalf("trial %d: SpMM diverges", trial)
		}
	}
}

// TestSpMMTIsTranspose: for any graph A and matrices x, y:
// ⟨A·x, y⟩ == ⟨x, Aᵀ·y⟩ — the adjoint property the backward pass relies on.
func TestSpMMTIsTranspose(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 4 + rng.Intn(30)
		g := randomGraph(rng, n, 3*n)
		g.NormalizeWeights(NormMean)
		f := 1 + rng.Intn(8)
		x := tensor.New(n, f)
		x.FillUniform(rng, -1, 1)
		y := tensor.New(n, f)
		y.FillUniform(rng, -1, 1)
		ax := tensor.New(n, f)
		g.SpMM(ax, x)
		aty := tensor.New(n, f)
		g.SpMMT(aty, y)
		var lhs, rhs float64
		for i := range ax.Data {
			lhs += float64(ax.Data[i]) * float64(y.Data[i])
			rhs += float64(x.Data[i]) * float64(aty.Data[i])
		}
		return math.Abs(lhs-rhs) <= 1e-3*(1+math.Abs(lhs))
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpMMRectangular(t *testing.T) {
	// Graph rows aggregate from a wider column space (local + halo).
	g := &CSR{N: 2, Cols: 4, RowPtr: []int32{0, 2, 4}, ColIdx: []int32{0, 3, 1, 2}}
	x := tensor.FromSlice(4, 1, []float32{1, 2, 3, 4})
	out := tensor.New(2, 1)
	g.SpMM(out, x)
	if out.At(0, 0) != 5 || out.At(1, 0) != 5 {
		t.Fatalf("rect SpMM got %v %v", out.At(0, 0), out.At(1, 0))
	}
	y := tensor.FromSlice(2, 1, []float32{1, 10})
	back := tensor.New(4, 1)
	g.SpMMT(back, y)
	want := []float32{1, 10, 10, 1}
	for i, w := range want {
		if back.At(i, 0) != w {
			t.Fatalf("rect SpMMT[%d] = %v want %v", i, back.At(i, 0), w)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := pathGraph(5)
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree %d", g.MaxDegree())
	}
	if math.Abs(g.AvgDegree()-8.0/5.0) > 1e-9 {
		t.Fatalf("AvgDegree %v", g.AvgDegree())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	sub, remap := g.InducedSubgraph([]int32{1, 2, 3})
	if sub.N != 3 {
		t.Fatalf("sub nodes %d", sub.N)
	}
	// Edges 1→2 and 2→3 survive; 0→1, 3→4, 4→0 dropped.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges %d", sub.NumEdges())
	}
	if remap[1] != 0 || remap[0] != -1 {
		t.Fatalf("remap wrong: %v", remap)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatal("sub edges misplaced")
	}
}
