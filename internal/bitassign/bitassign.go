// Package bitassign implements the paper's adaptive bit-width assignment
// (§3.3, §4.2): messages headed to each device pair are sorted by their
// gradient-variance contribution β (Theorem 3), chunked into groups that
// share one bit-width variable, and the variance–time bi-objective problem
// (Eqn. 10 + Eqn. 11, scalarized as Eqn. 12) is solved to pick each
// group's width from B = {2, 4, 8}.
//
// The paper hands the scalarized MILP to GUROBI; offline we use a greedy
// upgrade pass followed by single-move local search, which the tests show
// matches exhaustive enumeration on every small instance tried (the
// objective's marginal gains are diminishing in width, which is what makes
// greedy strong here).
package bitassign

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/quant"
)

// Message is one remote message (a node's embedding row bound for one
// destination device) as the assigner sees it.
type Message struct {
	Pair int     // which device pair (flattened index) carries it
	Slot int     // wire position within the pair
	Dim  int     // D_k: feature dimension
	Beta float64 // β_k = Σ_v α²_{k,v} · D_k (max−min)² / 6
}

// Group is a set of messages sharing one bit-width variable.
type Group struct {
	Pair    int
	Dim     int
	Beta    float64 // Σ β over members
	Members []int   // indices into the problem's message slice
}

// Problem is one solvable instance (one layer direction's communication
// round).
type Problem struct {
	Messages []Message
	Groups   []Group
	// Per-pair affine time model: t_i = Theta[i]·bytes_i + Gamma[i].
	Theta, Gamma []float64
	// Lambda trades variance (λ→1) against time (λ→0), Eqn. 12.
	Lambda float64
}

// NewProblem groups msgs per pair (sorted by β descending, chunks of
// groupSize) and returns a ready-to-solve instance. theta/gamma are
// indexed by pair id.
func NewProblem(msgs []Message, groupSize int, theta, gamma []float64, lambda float64) *Problem {
	if groupSize <= 0 {
		groupSize = 1
	}
	p := &Problem{Messages: msgs, Theta: theta, Gamma: gamma, Lambda: lambda}
	byPair := map[int][]int{}
	for i, m := range msgs {
		byPair[m.Pair] = append(byPair[m.Pair], i)
	}
	pairs := make([]int, 0, len(byPair))
	for pair := range byPair {
		pairs = append(pairs, pair)
	}
	sort.Ints(pairs)
	for _, pair := range pairs {
		idx := byPair[pair]
		sort.Slice(idx, func(a, b int) bool {
			if msgs[idx[a]].Beta != msgs[idx[b]].Beta {
				return msgs[idx[a]].Beta > msgs[idx[b]].Beta
			}
			return msgs[idx[a]].Slot < msgs[idx[b]].Slot
		})
		for lo := 0; lo < len(idx); lo += groupSize {
			hi := lo + groupSize
			if hi > len(idx) {
				hi = len(idx)
			}
			g := Group{Pair: pair, Dim: msgs[idx[lo]].Dim}
			for _, mi := range idx[lo:hi] {
				g.Beta += msgs[mi].Beta
				g.Members = append(g.Members, mi)
			}
			p.Groups = append(p.Groups, g)
		}
	}
	return p
}

// groupBytes returns the wire bytes group g costs at width b (header + packed
// codes per member row).
func (p *Problem) groupBytes(g *Group, b quant.BitWidth) int {
	return len(g.Members) * (8 + b.PackedSize(g.Dim))
}

// varTerm returns β/(2^b−1)², Eqn. 11's per-group contribution.
func varTerm(beta float64, b quant.BitWidth) float64 {
	l := float64(b.Levels())
	return beta / (l * l)
}

// Objective evaluates widths (one per group): total quantization variance
// (Eqn. 11), the straggler time Z = max_i t_i (Eqn. 10), and the
// normalized weighted sum (Eqn. 12). Normalization divides variance by its
// all-2-bit value and time by its all-8-bit value so λ weighs comparable
// magnitudes.
func (p *Problem) Objective(widths []quant.BitWidth) (variance, maxTime, scalar float64) {
	if len(widths) != len(p.Groups) {
		panic(fmt.Sprintf("bitassign: %d widths for %d groups", len(widths), len(p.Groups)))
	}
	pairBytes := map[int]int{}
	for i, g := range p.Groups {
		variance += varTerm(g.Beta, widths[i])
		pairBytes[g.Pair] += p.groupBytes(&p.Groups[i], widths[i])
	}
	for pair, bytes := range pairBytes {
		t := p.Theta[pair]*float64(bytes) + p.Gamma[pair]
		if t > maxTime {
			maxTime = t
		}
	}
	varNorm, timeNorm := p.normalizers()
	scalar = p.Lambda*variance/varNorm + (1-p.Lambda)*maxTime/timeNorm
	return variance, maxTime, scalar
}

// normalizers returns (variance at all-2-bit, time at all-8-bit), both
// clamped away from zero.
func (p *Problem) normalizers() (float64, float64) {
	var v float64
	pairBytes := map[int]int{}
	for i, g := range p.Groups {
		v += varTerm(g.Beta, quant.B2)
		pairBytes[g.Pair] += p.groupBytes(&p.Groups[i], quant.B8)
	}
	var t float64
	for pair, bytes := range pairBytes {
		tt := p.Theta[pair]*float64(bytes) + p.Gamma[pair]
		if tt > t {
			t = tt
		}
	}
	if v <= 0 {
		v = 1
	}
	if t <= 0 {
		t = 1
	}
	return v, t
}

// Solve returns one width per group minimizing the scalarized objective:
// greedy upgrades from all-2-bit, then single-move local search (both
// upgrades and downgrades) to a local optimum.
//
// Moves are evaluated incrementally: a single group's width change shifts
// one variance term and one pair's time, and the minimax term is
// re-evaluated in O(1) by tracking the top-two pair times. This keeps each
// sweep O(G) and the whole solve well under a millisecond for the
// thousands of groups real assignments produce.
func (p *Problem) Solve() []quant.BitWidth {
	n := len(p.Groups)
	widths := make([]quant.BitWidth, n)
	for i := range widths {
		widths[i] = quant.B2
	}
	if n == 0 {
		return widths
	}
	varNorm, timeNorm := p.normalizers()
	lam, mu := p.Lambda/varNorm, (1-p.Lambda)/timeNorm

	// State: per-pair bytes, total variance, and the pair-time top-2.
	pairIDs := map[int]int{} // pair → dense index
	for _, g := range p.Groups {
		if _, ok := pairIDs[g.Pair]; !ok {
			pairIDs[g.Pair] = len(pairIDs)
		}
	}
	pairBytes := make([]float64, len(pairIDs))
	pairTheta := make([]float64, len(pairIDs))
	pairGamma := make([]float64, len(pairIDs))
	for pair, idx := range pairIDs {
		pairTheta[idx] = p.Theta[pair]
		pairGamma[idx] = p.Gamma[pair]
	}
	variance := 0.0
	for i := range p.Groups {
		g := &p.Groups[i]
		variance += varTerm(g.Beta, widths[i])
		pairBytes[pairIDs[g.Pair]] += float64(p.groupBytes(g, widths[i]))
	}
	pairTime := func(idx int) float64 { return pairTheta[idx]*pairBytes[idx] + pairGamma[idx] }
	// top-two pair times (values only; recomputed as needed).
	recomputeTop2 := func() (z1, z2 float64, z1idx int) {
		z1, z2, z1idx = -1, -1, -1
		for idx := range pairBytes {
			t := pairTime(idx)
			if t > z1 {
				z2 = z1
				z1, z1idx = t, idx
			} else if t > z2 {
				z2 = t
			}
		}
		return z1, z2, z1idx
	}
	z1, z2, z1idx := recomputeTop2()

	score := func(v, z float64) float64 { return lam*v + mu*z }
	cur := score(variance, z1)

	next := map[quant.BitWidth]quant.BitWidth{quant.B2: quant.B4, quant.B4: quant.B8}
	prev := map[quant.BitWidth]quant.BitWidth{quant.B8: quant.B4, quant.B4: quant.B2}

	// evalMove returns the score after changing group i to w.
	evalMove := func(i int, w quant.BitWidth) float64 {
		g := &p.Groups[i]
		idx := pairIDs[g.Pair]
		dv := varTerm(g.Beta, w) - varTerm(g.Beta, widths[i])
		db := float64(p.groupBytes(g, w) - p.groupBytes(g, widths[i]))
		newT := pairTheta[idx]*(pairBytes[idx]+db) + pairGamma[idx]
		// New max: the changed pair vs the best of the others.
		others := z1
		if idx == z1idx {
			others = z2
		}
		z := newT
		if others > z {
			z = others
		}
		return score(variance+dv, z)
	}
	apply := func(i int, w quant.BitWidth) {
		g := &p.Groups[i]
		idx := pairIDs[g.Pair]
		variance += varTerm(g.Beta, w) - varTerm(g.Beta, widths[i])
		pairBytes[idx] += float64(p.groupBytes(g, w) - p.groupBytes(g, widths[i]))
		widths[i] = w
		z1, z2, z1idx = recomputeTop2()
		cur = score(variance, z1)
	}

	improve := func() bool {
		bestGain := 1e-15
		bestIdx, bestW := -1, quant.B2
		for i := range widths {
			if w, ok := next[widths[i]]; ok {
				if gain := cur - evalMove(i, w); gain > bestGain {
					bestGain, bestIdx, bestW = gain, i, w
				}
			}
			if w, ok := prev[widths[i]]; ok {
				if gain := cur - evalMove(i, w); gain > bestGain {
					bestGain, bestIdx, bestW = gain, i, w
				}
			}
		}
		if bestIdx < 0 {
			return false
		}
		apply(bestIdx, bestW)
		return true
	}
	// Each move changes one group by one level; the number of productive
	// moves is bounded by 2·n·levels in practice. Cap defensively.
	for iter := 0; iter < 8*n+64; iter++ {
		if !improve() {
			break
		}
	}
	return widths
}

// SolveExhaustive enumerates all 3^G assignments (for tests / tiny
// problems). Panics if the instance has more than maxGroups groups.
func (p *Problem) SolveExhaustive(maxGroups int) []quant.BitWidth {
	n := len(p.Groups)
	if n > maxGroups {
		panic(fmt.Sprintf("bitassign: exhaustive solve on %d groups (cap %d)", n, maxGroups))
	}
	widths := make([]quant.BitWidth, n)
	best := make([]quant.BitWidth, n)
	bestScore := math.Inf(1)
	options := []quant.BitWidth{quant.B2, quant.B4, quant.B8}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			_, _, s := p.Objective(widths)
			if s < bestScore {
				bestScore = s
				copy(best, widths)
			}
			return
		}
		for _, w := range options {
			widths[i] = w
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// ExpandToSlots maps group widths back to per-message widths, returned as
// widthsByPair[pair][slot].
func (p *Problem) ExpandToSlots(groupWidths []quant.BitWidth) map[int][]quant.BitWidth {
	// Determine slot counts per pair.
	maxSlot := map[int]int{}
	for _, m := range p.Messages {
		if m.Slot+1 > maxSlot[m.Pair] {
			maxSlot[m.Pair] = m.Slot + 1
		}
	}
	out := map[int][]quant.BitWidth{}
	for pair, n := range maxSlot {
		ws := make([]quant.BitWidth, n)
		for i := range ws {
			ws[i] = quant.B8 // safe default for unassigned slots
		}
		out[pair] = ws
	}
	for gi, g := range p.Groups {
		for _, mi := range g.Members {
			m := p.Messages[mi]
			out[m.Pair][m.Slot] = groupWidths[gi]
		}
	}
	return out
}
