package bitassign

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func uniformCost(pairs int) ([]float64, []float64) {
	theta := make([]float64, pairs)
	gamma := make([]float64, pairs)
	for i := range theta {
		theta[i] = 8e-11 // 100 Gbps
		gamma[i] = 50e-6
	}
	return theta, gamma
}

func randomProblem(rng *tensor.RNG, nMsgs, nPairs, groupSize int, lambda float64) *Problem {
	msgs := make([]Message, nMsgs)
	slotPerPair := map[int]int{}
	for i := range msgs {
		pair := rng.Intn(nPairs)
		msgs[i] = Message{
			Pair: pair,
			Slot: slotPerPair[pair],
			Dim:  16 + rng.Intn(100),
			Beta: rng.Float64() * 10,
		}
		slotPerPair[pair]++
	}
	theta, gamma := uniformCost(nPairs)
	return NewProblem(msgs, groupSize, theta, gamma, lambda)
}

func TestGroupingSortsByBeta(t *testing.T) {
	msgs := []Message{
		{Pair: 0, Slot: 0, Dim: 8, Beta: 1},
		{Pair: 0, Slot: 1, Dim: 8, Beta: 9},
		{Pair: 0, Slot: 2, Dim: 8, Beta: 5},
		{Pair: 0, Slot: 3, Dim: 8, Beta: 3},
	}
	theta, gamma := uniformCost(1)
	p := NewProblem(msgs, 2, theta, gamma, 0.5)
	if len(p.Groups) != 2 {
		t.Fatalf("want 2 groups, got %d", len(p.Groups))
	}
	// First group must hold the two largest βs: 9 and 5.
	if math.Abs(p.Groups[0].Beta-14) > 1e-12 {
		t.Fatalf("first group β %v, want 14", p.Groups[0].Beta)
	}
	if math.Abs(p.Groups[1].Beta-4) > 1e-12 {
		t.Fatalf("second group β %v, want 4", p.Groups[1].Beta)
	}
}

func TestGroupsCoverAllMessages(t *testing.T) {
	rng := tensor.NewRNG(1)
	p := randomProblem(rng, 57, 4, 5, 0.5)
	covered := map[int]bool{}
	for _, g := range p.Groups {
		for _, mi := range g.Members {
			if covered[mi] {
				t.Fatalf("message %d in two groups", mi)
			}
			covered[mi] = true
		}
	}
	if len(covered) != 57 {
		t.Fatalf("covered %d of 57 messages", len(covered))
	}
}

func TestObjectiveMonotonicInWidths(t *testing.T) {
	rng := tensor.NewRNG(2)
	p := randomProblem(rng, 20, 3, 4, 0.5)
	all2 := quant.UniformWidths(len(p.Groups), quant.B2)
	all8 := quant.UniformWidths(len(p.Groups), quant.B8)
	v2, t2, _ := p.Objective(all2)
	v8, t8, _ := p.Objective(all8)
	if v8 >= v2 {
		t.Fatalf("8-bit variance %v should be below 2-bit %v", v8, v2)
	}
	if t8 <= t2 {
		t.Fatalf("8-bit time %v should exceed 2-bit %v", t8, t2)
	}
}

func TestLambdaExtremes(t *testing.T) {
	rng := tensor.NewRNG(3)
	// λ=1: pure variance → everything 8-bit. λ=0: pure time → 2-bit.
	msgs := make([]Message, 12)
	for i := range msgs {
		msgs[i] = Message{Pair: i % 2, Slot: i / 2, Dim: 64, Beta: 1 + rng.Float64()}
	}
	theta, gamma := uniformCost(2)
	pv := NewProblem(msgs, 3, theta, gamma, 1.0)
	for _, w := range pv.Solve() {
		if w != quant.B8 {
			t.Fatalf("λ=1 should assign 8-bit, got %d", w)
		}
	}
	pt := NewProblem(msgs, 3, theta, gamma, 0.0)
	for _, w := range pt.Solve() {
		if w != quant.B2 {
			t.Fatalf("λ=0 should assign 2-bit, got %d", w)
		}
	}
}

func TestSolveMatchesExhaustiveSmall(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := tensor.NewRNG(seed)
		p := randomProblem(rng, 6+rng.Intn(4), 1+rng.Intn(3), 1, 0.3+0.4*rng.Float64())
		if len(p.Groups) > 8 {
			continue
		}
		got := p.Solve()
		best := p.SolveExhaustive(8)
		_, _, sGot := p.Objective(got)
		_, _, sBest := p.Objective(best)
		// Greedy+local-search should be within a hair of optimal.
		if sGot > sBest*1.02+1e-12 {
			t.Fatalf("seed %d: greedy %v vs optimal %v (gap %.2f%%)",
				seed, sGot, sBest, 100*(sGot/sBest-1))
		}
	}
}

func TestSolveNeverWorseThanUniform(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := randomProblem(rng, 10+rng.Intn(60), 1+rng.Intn(6), 1+rng.Intn(8), 0.5)
		_, _, s := p.Objective(p.Solve())
		for _, b := range quant.Candidates {
			_, _, u := p.Objective(quant.UniformWidths(len(p.Groups), b))
			if s > u+1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHighBetaGetsMoreBits(t *testing.T) {
	// Two messages on one pair: one huge β, one tiny. With a balanced λ the
	// solver must protect the high-variance message with more bits.
	msgs := []Message{
		{Pair: 0, Slot: 0, Dim: 256, Beta: 1e6},
		{Pair: 0, Slot: 1, Dim: 256, Beta: 1e-6},
	}
	theta, gamma := uniformCost(1)
	p := NewProblem(msgs, 1, theta, gamma, 0.5)
	widths := p.Solve()
	// Groups are sorted by β, so group 0 is the big one.
	if widths[0] <= widths[1] && widths[0] != quant.B8 {
		t.Fatalf("high-β message got %d bits, low-β got %d", widths[0], widths[1])
	}
}

func TestStragglerDrivenDowngrade(t *testing.T) {
	// Pair 0 carries 50× the data of pair 1. The minimax time objective is
	// dominated by pair 0, so its widths are pushed down while pair 1 can
	// stay high.
	var msgs []Message
	for i := 0; i < 50; i++ {
		msgs = append(msgs, Message{Pair: 0, Slot: i, Dim: 256, Beta: 1})
	}
	msgs = append(msgs, Message{Pair: 1, Slot: 0, Dim: 256, Beta: 1})
	theta, gamma := uniformCost(2)
	p := NewProblem(msgs, 10, theta, gamma, 0.5)
	widths := p.Solve()
	var heavy, light float64
	var nh, nl int
	for i, g := range p.Groups {
		if g.Pair == 0 {
			heavy += float64(widths[i])
			nh++
		} else {
			light += float64(widths[i])
			nl++
		}
	}
	if heavy/float64(nh) > light/float64(nl) {
		t.Fatalf("straggler pair got avg %.1f bits vs light pair %.1f", heavy/float64(nh), light/float64(nl))
	}
}

func TestExpandToSlots(t *testing.T) {
	msgs := []Message{
		{Pair: 7, Slot: 0, Dim: 8, Beta: 5},
		{Pair: 7, Slot: 1, Dim: 8, Beta: 1},
		{Pair: 3, Slot: 0, Dim: 8, Beta: 2},
	}
	theta := make([]float64, 10)
	gamma := make([]float64, 10)
	for i := range theta {
		theta[i] = 1e-10
	}
	p := NewProblem(msgs, 1, theta, gamma, 0.5)
	widths := make([]quant.BitWidth, len(p.Groups))
	for i := range widths {
		widths[i] = quant.B4
	}
	slots := p.ExpandToSlots(widths)
	if len(slots[7]) != 2 || len(slots[3]) != 1 {
		t.Fatalf("slot shapes wrong: %v", slots)
	}
	for _, ws := range slots {
		for _, w := range ws {
			if w != quant.B4 {
				t.Fatalf("expanded width %d", w)
			}
		}
	}
}

func TestEmptyProblem(t *testing.T) {
	theta, gamma := uniformCost(1)
	p := NewProblem(nil, 5, theta, gamma, 0.5)
	if ws := p.Solve(); len(ws) != 0 {
		t.Fatal("empty problem should yield no widths")
	}
	v, mt, s := p.Objective(nil)
	if v != 0 || mt != 0 || s != 0 {
		t.Fatalf("empty objective: %v %v %v", v, mt, s)
	}
}

func TestSolveExhaustiveCapPanics(t *testing.T) {
	rng := tensor.NewRNG(9)
	p := randomProblem(rng, 30, 2, 1, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected cap panic")
		}
	}()
	p.SolveExhaustive(5)
}
