// Package nn provides the neural-network building blocks of the
// reproduction with hand-written backward passes: parameters, Linear,
// ReLU, LayerNorm, Dropout, softmax cross-entropy and sigmoid BCE losses,
// and the Adam optimizer. Graph aggregation itself lives with the trainers
// (internal/core) because in distributed training it is interleaved with
// halo communication.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Param is one trainable tensor with its gradient and Adam state.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
	m, v  *tensor.Matrix // Adam moments
}

// NewParam allocates a parameter and its gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
		m:     tensor.New(rows, cols),
		v:     tensor.New(rows, cols),
	}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ParamCheckpoint is a deep copy of one parameter's trainable state — its
// value and Adam moments. Gradients are transient within an epoch and not
// captured.
type ParamCheckpoint struct {
	value, m, v []float32
}

// Checkpoint deep-copies p's value and optimizer moments.
func (p *Param) Checkpoint() ParamCheckpoint {
	return ParamCheckpoint{
		value: append([]float32(nil), p.Value.Data...),
		m:     append([]float32(nil), p.m.Data...),
		v:     append([]float32(nil), p.v.Data...),
	}
}

// Restore copies a checkpoint taken from this parameter back into it. The
// parameter's matrices keep their identity, so cached pointers to
// Value/Grad (e.g. a trainer's flat gradient list) stay valid.
func (p *Param) Restore(c ParamCheckpoint) {
	copy(p.Value.Data, c.value)
	copy(p.m.Data, c.m)
	copy(p.v.Data, c.v)
}

// NumElements returns the parameter size.
func (p *Param) NumElements() int { return len(p.Value.Data) }

// Module is anything owning parameters.
type Module interface {
	Params() []*Param
}

// ParamCount sums the sizes of a module's parameters.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumElements()
	}
	return n
}

// Linear is y = xW + b.
type Linear struct {
	W, B *Param
	x    *tensor.Matrix // saved input

	// steady-state scratch, reused when shapes repeat (module outputs are
	// dead by the time the same module runs forward/backward again)
	y, dx, dw *tensor.Matrix
}

// NewLinear creates a Glorot-initialized Linear layer.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	l.W.Value.XavierInit(rng, in, out)
	return l
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes xW + b and saves x for backward.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	l.y = ensure(l.y, x.Rows, l.W.Value.Cols)
	y := l.y
	tensor.MatMulInto(y, x, l.W.Value)
	brow := l.B.Value.Row(0)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += brow[j]
		}
	}
	return y
}

// Backward accumulates dW, db and returns dx.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// dW is computed into scratch then accumulated, keeping the float
	// addition order of the two-step TMatMul + AddInPlace formulation.
	l.dw = ensure(l.dw, l.x.Cols, dy.Cols)
	tensor.TMatMulInto(l.dw, l.x, dy)
	l.W.Grad.AddInPlace(l.dw)
	brow := l.B.Grad.Row(0)
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			brow[j] += row[j]
		}
	}
	l.dx = ensure(l.dx, dy.Rows, l.W.Value.Rows)
	tensor.MatMulTInto(l.dx, dy, l.W.Value)
	return l.dx
}

// ensure returns m if it already has the wanted shape, else a fresh
// matrix. Callers fully overwrite the result, so stale contents are fine.
func ensure(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	if m != nil && m.Rows == rows && m.Cols == cols {
		return m
	}
	return tensor.New(rows, cols)
}

// ReLU activation with saved mask.
type ReLU struct {
	mask     []bool
	out, dxm *tensor.Matrix
}

// Forward returns max(x, 0), saving the active mask.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.out = ensure(r.out, x.Rows, x.Cols)
	out := r.out
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward gates dy by the saved mask.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if len(r.mask) != len(dy.Data) {
		panic("nn: ReLU.Backward shape mismatch")
	}
	r.dxm = ensure(r.dxm, dy.Rows, dy.Cols)
	out := r.dxm
	for i, v := range dy.Data {
		if r.mask[i] {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// LayerNorm normalizes each row to zero mean/unit variance then applies a
// learned affine transform (the Norm Function of the paper's training
// configuration, Appendix B).
type LayerNorm struct {
	Gamma, Beta *Param
	eps         float32
	xhat        *tensor.Matrix
	invStd      []float32
	out, dxm    *tensor.Matrix
}

// NewLayerNorm creates a LayerNorm over dim features.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Gamma: NewParam(name+".gamma", 1, dim),
		Beta:  NewParam(name+".beta", 1, dim),
		eps:   1e-5,
	}
	ln.Gamma.Value.Fill(1)
	return ln
}

// Params implements Module.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Forward normalizes rows and applies γ·x̂ + β.
func (ln *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	d := x.Cols
	ln.out = ensure(ln.out, x.Rows, d)
	out := ln.out
	ln.xhat = ensure(ln.xhat, x.Rows, d)
	if cap(ln.invStd) < x.Rows {
		ln.invStd = make([]float32, x.Rows)
	}
	ln.invStd = ln.invStd[:x.Rows]
	g := ln.Gamma.Value.Row(0)
	b := ln.Beta.Value.Row(0)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var vr float64
		for _, v := range row {
			dv := float64(v) - mean
			vr += dv * dv
		}
		vr /= float64(d)
		inv := float32(1 / math.Sqrt(vr+float64(ln.eps)))
		ln.invStd[i] = inv
		xh := ln.xhat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xh[j] = (v - float32(mean)) * inv
			orow[j] = g[j]*xh[j] + b[j]
		}
	}
	return out
}

// Backward returns dx and accumulates dγ, dβ.
func (ln *LayerNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if ln.xhat == nil {
		panic("nn: LayerNorm.Backward before Forward")
	}
	d := dy.Cols
	ln.dxm = ensure(ln.dxm, dy.Rows, d)
	out := ln.dxm
	g := ln.Gamma.Value.Row(0)
	gg := ln.Gamma.Grad.Row(0)
	gb := ln.Beta.Grad.Row(0)
	invD := 1 / float32(d)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xh := ln.xhat.Row(i)
		// dγ += dy ⊙ x̂ ; dβ += dy
		var sumDxhat, sumDxhatXhat float32
		for j, v := range dyr {
			gg[j] += v * xh[j]
			gb[j] += v
			dxh := v * g[j]
			sumDxhat += dxh
			sumDxhatXhat += dxh * xh[j]
		}
		inv := ln.invStd[i]
		orow := out.Row(i)
		for j, v := range dyr {
			dxh := v * g[j]
			orow[j] = inv * (dxh - invD*sumDxhat - xh[j]*invD*sumDxhatXhat)
		}
	}
	return out
}

// Dropout zeroes activations with probability p during training, scaling
// survivors by 1/(1−p) (inverted dropout).
type Dropout struct {
	P        float32
	mask     []float32
	out, dxm *tensor.Matrix
}

// Forward applies dropout using rng; pass train=false for evaluation
// (identity).
func (dp *Dropout) Forward(x *tensor.Matrix, rng *tensor.RNG, train bool) *tensor.Matrix {
	if !train || dp.P <= 0 {
		dp.mask = nil
		return x
	}
	keep := 1 - dp.P
	scale := 1 / keep
	dp.out = ensure(dp.out, x.Rows, x.Cols)
	out := dp.out
	if cap(dp.mask) < len(x.Data) {
		dp.mask = make([]float32, len(x.Data))
	}
	dp.mask = dp.mask[:len(x.Data)]
	for i, v := range x.Data {
		if rng.Float32() < keep {
			dp.mask[i] = scale
			out.Data[i] = v * scale
		} else {
			dp.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates dy by the dropout mask.
func (dp *Dropout) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if dp.mask == nil {
		return dy
	}
	dp.dxm = ensure(dp.dxm, dy.Rows, dy.Cols)
	out := dp.dxm
	for i, v := range dy.Data {
		out.Data[i] = v * dp.mask[i]
	}
	return out
}

// Adam is the optimizer used throughout the paper's experiments
// (Appendix B: Adam, lr 0.01).
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	step                  int
}

// NewAdam returns Adam with the paper's defaults.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to all params from their accumulated gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	b1c := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	b2c := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for _, p := range params {
		for i, g := range p.Grad.Data {
			p.m.Data[i] = a.Beta1*p.m.Data[i] + (1-a.Beta1)*g
			p.v.Data[i] = a.Beta2*p.v.Data[i] + (1-a.Beta2)*g*g
			mhat := p.m.Data[i] / b1c
			vhat := p.v.Data[i] / b2c
			p.Value.Data[i] -= a.LR * mhat / (float32(math.Sqrt(float64(vhat))) + a.Eps)
		}
	}
}

// StepCount returns how many updates have been applied — the state behind
// the bias-correction schedule.
func (a *Adam) StepCount() int { return a.step }

// SetStepCount rewinds (or advances) the bias-correction schedule; paired
// with Param.Restore when a crash-recovery checkpoint rolls a device back
// to an epoch boundary.
func (a *Adam) SetStepCount(n int) { a.step = n }

// Reset clears optimizer state (for reusing a model across runs).
func (a *Adam) Reset(params []*Param) {
	a.step = 0
	for _, p := range params {
		p.m.Zero()
		p.v.Zero()
	}
}

// String describes the optimizer configuration.
func (a *Adam) String() string { return fmt.Sprintf("Adam(lr=%g)", a.LR) }
