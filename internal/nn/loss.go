package nn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the masked mean cross-entropy loss over rows
// where mask is true, for single-label classification. labels[i] is row
// i's class. Returns (loss, dLogits); dLogits rows outside the mask are
// zero. The mean is over masked rows.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int, mask []bool) (float64, *tensor.Matrix) {
	n := 0
	for i := range mask {
		if mask[i] {
			n++
		}
	}
	return SoftmaxCrossEntropyScaled(logits, labels, mask, float64(n))
}

// SoftmaxCrossEntropyScaled is SoftmaxCrossEntropy with an explicit
// denominator — in distributed training each device holds a shard of the
// training nodes but the loss is the mean over the *global* training set,
// so every device divides by the global count and the allreduced weight
// gradients come out exactly as in single-device full-graph training.
func SoftmaxCrossEntropyScaled(logits *tensor.Matrix, labels []int, mask []bool, denom float64) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	if denom <= 0 {
		return 0, grad
	}
	inv := 1 / denom
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		row := logits.Row(i)
		// log-sum-exp with max subtraction for stability
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - mx))
		}
		lse := math.Log(sum) + float64(mx)
		y := labels[i]
		loss += (lse - float64(row[y])) * inv
		grow := grad.Row(i)
		for j, v := range row {
			p := math.Exp(float64(v) - lse)
			grow[j] = float32(p * inv)
		}
		grow[y] -= float32(inv)
	}
	return loss, grad
}

// SigmoidBCE computes masked mean binary cross-entropy for multi-label
// classification with a 0/1 target matrix. The mean is over masked rows
// (summed over classes within a row, matching common GraphSAINT-style
// training). Returns (loss, dLogits).
func SigmoidBCE(logits, targets *tensor.Matrix, mask []bool) (float64, *tensor.Matrix) {
	n := 0
	for i := range mask {
		if mask[i] {
			n++
		}
	}
	return SigmoidBCEScaled(logits, targets, mask, float64(n))
}

// SigmoidBCEScaled is SigmoidBCE with an explicit denominator (see
// SoftmaxCrossEntropyScaled).
func SigmoidBCEScaled(logits, targets *tensor.Matrix, mask []bool, denom float64) (float64, *tensor.Matrix) {
	return SigmoidBCEWeighted(logits, targets, mask, denom, 1)
}

// SigmoidBCEWeighted is SigmoidBCEScaled with a positive-class weight:
// each positive target's loss term is multiplied by posWeight. With ~1–4
// positives among 100+ classes (Yelp, AmazonProducts), unweighted BCE
// spends most of training in the trivial all-negative regime; weighting by
// roughly the negative/positive ratio is the standard correction.
func SigmoidBCEWeighted(logits, targets *tensor.Matrix, mask []bool, denom, posWeight float64) (float64, *tensor.Matrix) {
	if !logits.SameShape(targets) {
		panic("nn: SigmoidBCE shape mismatch")
	}
	grad := tensor.New(logits.Rows, logits.Cols)
	if denom <= 0 {
		return 0, grad
	}
	inv := 1 / denom
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		lrow := logits.Row(i)
		trow := targets.Row(i)
		grow := grad.Row(i)
		for j, z := range lrow {
			t := float64(trow[j])
			zf := float64(z)
			// Stable softplus forms: softplus(z) = max(z,0)+log1p(e^{−|z|}).
			sp := math.Max(zf, 0) + math.Log1p(math.Exp(-math.Abs(zf)))
			spNeg := sp - zf // softplus(−z)
			loss += (posWeight*t*spNeg + (1-t)*sp) * inv
			s := 1 / (1 + math.Exp(-zf))
			grow[j] = float32(((1-t)*s - posWeight*t*(1-s)) * inv)
		}
	}
	return loss, grad
}

// Accuracy returns the fraction of masked rows whose argmax equals the
// label.
func Accuracy(logits *tensor.Matrix, labels []int, mask []bool) float64 {
	correct, total := 0, 0
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		total++
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MicroF1 returns the micro-averaged F1 over masked rows for multi-label
// predictions (logit > 0 ⇒ predicted positive) — the paper's metric for
// Yelp and AmazonProducts.
func MicroF1(logits, targets *tensor.Matrix, mask []bool) float64 {
	var tp, fp, fn float64
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		lrow := logits.Row(i)
		trow := targets.Row(i)
		for j, z := range lrow {
			pred := z > 0
			actual := trow[j] > 0.5
			switch {
			case pred && actual:
				tp++
			case pred && !actual:
				fp++
			case !pred && actual:
				fn++
			}
		}
	}
	denom := 2*tp + fp + fn
	if denom == 0 {
		return 0
	}
	return 2 * tp / denom
}
