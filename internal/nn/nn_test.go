package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates d(loss)/d(x[i]) by central differences.
func numericalGrad(x *tensor.Matrix, loss func() float64, i int, eps float32) float64 {
	orig := x.Data[i]
	x.Data[i] = orig + eps
	up := loss()
	x.Data[i] = orig - eps
	down := loss()
	x.Data[i] = orig
	return (up - down) / (2 * float64(eps))
}

// scalarize reduces a matrix to a scalar with fixed random weights, giving
// a differentiable "loss" whose gradient is those weights.
type scalarizer struct{ w *tensor.Matrix }

func newScalarizer(rng *tensor.RNG, rows, cols int) *scalarizer {
	w := tensor.New(rows, cols)
	w.FillUniform(rng, -1, 1)
	return &scalarizer{w}
}

func (s *scalarizer) loss(y *tensor.Matrix) float64 {
	var l float64
	for i := range y.Data {
		l += float64(y.Data[i]) * float64(s.w.Data[i])
	}
	return l
}

func (s *scalarizer) grad() *tensor.Matrix { return s.w.Clone() }

func TestLinearForward(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("t", 3, 2, rng)
	l.W.Value.CopyFrom(tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 1}))
	l.B.Value.CopyFrom(tensor.FromSlice(1, 2, []float32{10, 20}))
	y := l.Forward(tensor.FromSlice(1, 3, []float32{1, 2, 3}))
	if y.At(0, 0) != 14 || y.At(0, 1) != 25 {
		t.Fatalf("linear forward got %v %v", y.At(0, 0), y.At(0, 1))
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("t", 5, 4, rng)
	x := tensor.New(6, 5)
	x.FillUniform(rng, -1, 1)
	s := newScalarizer(rng, 6, 4)
	forward := func() float64 { return s.loss(l.Forward(x)) }

	l.Forward(x)
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	dx := l.Backward(s.grad())

	for _, i := range []int{0, 7, 19} {
		want := numericalGrad(l.W.Value, forward, i, 1e-3)
		if got := float64(l.W.Grad.Data[i]); math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("dW[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
	for _, i := range []int{0, 3} {
		want := numericalGrad(l.B.Value, forward, i, 1e-3)
		if got := float64(l.B.Grad.Data[i]); math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("db[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
	for _, i := range []int{0, 13, 29} {
		want := numericalGrad(x, forward, i, 1e-3)
		if got := float64(dx.Data[i]); math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("dx[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	y := r.Forward(tensor.FromSlice(1, 4, []float32{-1, 0, 2, -3}))
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("relu[%d] = %v", i, y.Data[i])
		}
	}
	dx := r.Backward(tensor.FromSlice(1, 4, []float32{5, 5, 5, 5}))
	wantG := []float32{0, 0, 5, 0}
	for i, w := range wantG {
		if dx.Data[i] != w {
			t.Fatalf("relu grad[%d] = %v", i, dx.Data[i])
		}
	}
}

func TestLayerNormForwardStats(t *testing.T) {
	ln := NewLayerNorm("t", 8)
	rng := tensor.NewRNG(3)
	x := tensor.New(5, 8)
	x.FillUniform(rng, -4, 4)
	y := ln.Forward(x)
	// With γ=1, β=0 every row has ~zero mean and ~unit variance.
	for i := 0; i < 5; i++ {
		var mean, vr float64
		for _, v := range y.Row(i) {
			mean += float64(v)
		}
		mean /= 8
		for _, v := range y.Row(i) {
			vr += (float64(v) - mean) * (float64(v) - mean)
		}
		vr /= 8
		if math.Abs(mean) > 1e-4 || math.Abs(vr-1) > 1e-2 {
			t.Fatalf("row %d: mean %v var %v", i, mean, vr)
		}
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	ln := NewLayerNorm("t", 6)
	ln.Gamma.Value.FillUniform(rng, 0.5, 1.5)
	ln.Beta.Value.FillUniform(rng, -0.5, 0.5)
	x := tensor.New(4, 6)
	x.FillUniform(rng, -2, 2)
	s := newScalarizer(rng, 4, 6)
	forward := func() float64 { return s.loss(ln.Forward(x)) }

	ln.Forward(x)
	ln.Gamma.ZeroGrad()
	ln.Beta.ZeroGrad()
	dx := ln.Backward(s.grad())

	for _, i := range []int{0, 9, 23} {
		want := numericalGrad(x, forward, i, 1e-3)
		if got := float64(dx.Data[i]); math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("LN dx[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
	for _, i := range []int{0, 5} {
		want := numericalGrad(ln.Gamma.Value, forward, i, 1e-3)
		if got := float64(ln.Gamma.Grad.Data[i]); math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("LN dγ[%d] analytic %v vs numeric %v", i, got, want)
		}
		want = numericalGrad(ln.Beta.Value, forward, i, 1e-3)
		if got := float64(ln.Beta.Grad.Data[i]); math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("LN dβ[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(5)
	dp := &Dropout{P: 0.5}
	x := tensor.New(50, 50)
	x.Fill(1)
	yEval := dp.Forward(x, rng, false)
	if yEval != x {
		t.Fatal("eval dropout must be identity")
	}
	yTrain := dp.Forward(x, rng, true)
	zeros, twos := 0, 0
	for _, v := range yTrain.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("inverted dropout should give 0 or 2, got %v", v)
		}
	}
	frac := float64(zeros) / float64(len(yTrain.Data))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("dropout rate %v, want ~0.5", frac)
	}
	// Backward gates by the same mask.
	dy := tensor.New(50, 50)
	dy.Fill(1)
	dx := dp.Backward(dy)
	for i, v := range yTrain.Data {
		if (v == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestSoftmaxCrossEntropyGradCheck(t *testing.T) {
	rng := tensor.NewRNG(6)
	logits := tensor.New(5, 4)
	logits.FillUniform(rng, -2, 2)
	labels := []int{0, 3, 2, 1, 0}
	mask := []bool{true, true, false, true, true}
	forward := func() float64 {
		l, _ := SoftmaxCrossEntropy(logits, labels, mask)
		return l
	}
	_, grad := SoftmaxCrossEntropy(logits, labels, mask)
	for _, i := range []int{0, 5, 13, 19} {
		want := numericalGrad(logits, forward, i, 1e-3)
		if got := float64(grad.Data[i]); math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("CE dlogits[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
	// Masked rows get zero gradient.
	for j := 0; j < 4; j++ {
		if grad.At(2, j) != 0 {
			t.Fatal("masked row must have zero grad")
		}
	}
}

func TestSigmoidBCEGradCheck(t *testing.T) {
	rng := tensor.NewRNG(7)
	logits := tensor.New(4, 6)
	logits.FillUniform(rng, -3, 3)
	targets := tensor.New(4, 6)
	for i := range targets.Data {
		if rng.Float64() < 0.3 {
			targets.Data[i] = 1
		}
	}
	mask := []bool{true, false, true, true}
	forward := func() float64 {
		l, _ := SigmoidBCE(logits, targets, mask)
		return l
	}
	_, grad := SigmoidBCE(logits, targets, mask)
	for _, i := range []int{0, 7, 15, 23} {
		want := numericalGrad(logits, forward, i, 1e-3)
		if got := float64(grad.Data[i]); math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("BCE dlogits[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
}

func TestScaledLossMatchesShardedSum(t *testing.T) {
	// Core invariant for distributed loss: splitting rows across devices
	// and summing the scaled losses equals the single-device mean loss.
	rng := tensor.NewRNG(8)
	logits := tensor.New(10, 5)
	logits.FillUniform(rng, -1, 1)
	labels := make([]int, 10)
	mask := make([]bool, 10)
	for i := range labels {
		labels[i] = rng.Intn(5)
		mask[i] = rng.Float64() < 0.7
	}
	full, fullGrad := SoftmaxCrossEntropy(logits, labels, mask)
	denom := 0
	for _, b := range mask {
		if b {
			denom++
		}
	}
	var sum float64
	shardGrad := tensor.New(10, 5)
	for lo := 0; lo < 10; lo += 5 {
		sub := logits.RowSlice(lo, lo+5)
		l, g := SoftmaxCrossEntropyScaled(sub, labels[lo:lo+5], mask[lo:lo+5], float64(denom))
		sum += l
		for i := 0; i < 5; i++ {
			copy(shardGrad.Row(lo+i), g.Row(i))
		}
	}
	if math.Abs(sum-full) > 1e-9 {
		t.Fatalf("sharded loss %v != full %v", sum, full)
	}
	if !tensor.Equal(shardGrad, fullGrad, 1e-7) {
		t.Fatal("sharded grads != full grads")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	labels := []int{0, 1, 1}
	acc := Accuracy(logits, labels, []bool{true, true, true})
	if math.Abs(acc-2.0/3.0) > 1e-9 {
		t.Fatalf("accuracy %v", acc)
	}
	if Accuracy(logits, labels, []bool{false, false, false}) != 0 {
		t.Fatal("empty mask accuracy should be 0")
	}
}

func TestMicroF1(t *testing.T) {
	logits := tensor.FromSlice(2, 2, []float32{1, -1, 1, 1})
	targets := tensor.FromSlice(2, 2, []float32{1, 0, 0, 1})
	// tp=2 (0,0 and 1,1), fp=1 (1,0), fn=0 → F1 = 4/5.
	f1 := MicroF1(logits, targets, []bool{true, true})
	if math.Abs(f1-0.8) > 1e-9 {
		t.Fatalf("micro-F1 %v", f1)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - target||² — Adam should get close quickly.
	p := NewParam("w", 1, 4)
	target := []float32{1, -2, 3, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 500; step++ {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 2 * (p.Value.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, w := range target {
		if math.Abs(float64(p.Value.Data[i]-w)) > 0.01 {
			t.Fatalf("Adam w[%d] = %v, want %v", i, p.Value.Data[i], w)
		}
	}
}

func TestAdamReset(t *testing.T) {
	p := NewParam("w", 1, 2)
	opt := NewAdam(0.1)
	p.Grad.Fill(1)
	opt.Step([]*Param{p})
	opt.Reset([]*Param{p})
	if opt.step != 0 || p.m.Data[0] != 0 || p.v.Data[0] != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestParamCount(t *testing.T) {
	rng := tensor.NewRNG(9)
	l := NewLinear("t", 10, 5, rng)
	if ParamCount(l) != 55 {
		t.Fatalf("ParamCount %d, want 55", ParamCount(l))
	}
}

func TestSigmoidBCEWeightedGradCheck(t *testing.T) {
	rng := tensor.NewRNG(11)
	logits := tensor.New(3, 5)
	logits.FillUniform(rng, -2, 2)
	targets := tensor.New(3, 5)
	for i := range targets.Data {
		if rng.Float64() < 0.2 {
			targets.Data[i] = 1
		}
	}
	mask := []bool{true, true, false}
	const pw = 7.5
	forward := func() float64 {
		l, _ := SigmoidBCEWeighted(logits, targets, mask, 2, pw)
		return l
	}
	_, grad := SigmoidBCEWeighted(logits, targets, mask, 2, pw)
	for _, i := range []int{0, 4, 9, 13} {
		want := numericalGrad(logits, forward, i, 1e-3)
		if got := float64(grad.Data[i]); math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("weighted BCE dlogits[%d] analytic %v vs numeric %v", i, got, want)
		}
	}
	// posWeight=1 must reduce to the unweighted loss.
	a, _ := SigmoidBCEWeighted(logits, targets, mask, 2, 1)
	b, _ := SigmoidBCEScaled(logits, targets, mask, 2)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("posWeight=1 should equal unweighted: %v vs %v", a, b)
	}
}
