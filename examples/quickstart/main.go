// Quickstart: train a 3-layer GCN on a small synthetic graph over 4
// simulated devices, first with vanilla synchronous full-graph training and
// then with AdaQP, and compare accuracy and simulated training time — all
// through the public pkg/adaqp Engine API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pkg/adaqp"
)

func main() {
	// 1. Load a dataset. The registry generates deterministic synthetic
	// stand-ins for the paper's graphs; "tiny" is a 400-node example.
	ds := adaqp.MustLoadDataset("tiny", 1)
	fmt.Printf("dataset: %v\n", ds)

	// The toy graph ships kilobytes where the paper's ship megabytes, so
	// scale the cost model down with it (as internal/experiments does for
	// the -sim datasets); otherwise fixed per-message overheads hide the
	// bandwidth effects quantization targets.
	model := adaqp.DefaultCostModel()
	model.Bandwidth /= 500
	model.DenseFLOPS /= 500
	model.SparseFLOPS /= 500
	model.QuantRate /= 500
	model.Latency = 1e-4

	// 2. Build an Engine: it partitions the graph across the devices
	// (self-loops + symmetric normalization for GCN, halo index sets, the
	// central/marginal decomposition) and caches that deployment so every
	// session below trains on the identical partitioning.
	eng, err := adaqp.New(ds,
		adaqp.WithParts(4),
		adaqp.WithHidden(64),
		adaqp.WithEpochs(60),
		adaqp.WithEvalEvery(10),
		adaqp.WithReassignPeriod(15),
		adaqp.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}
	dep := eng.Deployment()
	fmt.Printf("partitions: %d, edge cut: %.1f%%, remote-neighbor ratio: %.1f%%\n\n",
		dep.Assignment.Parts,
		100*float64(dep.Stats.EdgeCut)/float64(dep.Stats.TotalEdges),
		100*dep.Stats.RemoteNeighborAvg)

	// 3. Train with both systems on the same partitioning; each method
	// resolves to its message codec (fp32 ring all2all vs adaptively
	// quantized messages with computation–communication overlap).
	for _, method := range []adaqp.Method{adaqp.Vanilla, adaqp.AdaQP} {
		res, err := eng.Run(adaqp.WithMethod(method))
		if err != nil {
			log.Fatal(err)
		}
		per := res.PerEpoch()
		fmt.Printf("%-8s codec=%-8s test acc %.3f | %.2f epoch/s | per-epoch comm %.4fs comp %.4fs quant %.4fs\n",
			method, res.Codec, res.FinalTest, res.Throughput(), per.Comm+per.Idle, per.Comp, per.Quant)
	}
}
