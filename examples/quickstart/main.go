// Quickstart: train a 3-layer GCN on a small synthetic graph over 4
// simulated devices, first with vanilla synchronous full-graph training and
// then with AdaQP, and compare accuracy and simulated training time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/synthetic"
	"repro/internal/timing"
)

func main() {
	// 1. Load a dataset. The registry generates deterministic synthetic
	// stand-ins for the paper's graphs; "tiny" is a 400-node example.
	ds := synthetic.MustLoad("tiny", 1)
	fmt.Printf("dataset: %v\n", ds)

	// 2. Partition it across 4 devices. Deploy prepares the global graph
	// for the model (self-loops + symmetric normalization for GCN),
	// partitions it, and builds each device's local graph with halo
	// index sets and the central/marginal decomposition.
	dep := core.Deploy(ds, 4, core.GCN, partition.Block)
	fmt.Printf("partitions: %d, edge cut: %.1f%%, remote-neighbor ratio: %.1f%%\n\n",
		dep.Assignment.Parts,
		100*float64(dep.Stats.EdgeCut)/float64(dep.Stats.TotalEdges),
		100*dep.Stats.RemoteNeighborAvg)

	// 3. Configure training. DefaultConfig follows the paper's unified
	// hyper-parameters; we shrink it for a fast demo.
	cfg := core.DefaultConfig()
	cfg.Hidden = 64
	cfg.Epochs = 60
	cfg.EvalEvery = 10
	cfg.ReassignPeriod = 15

	// The toy graph ships kilobytes where the paper's ship megabytes, so
	// scale the cost model down with it (as internal/experiments does for
	// the -sim datasets); otherwise fixed per-message overheads hide the
	// bandwidth effects quantization targets.
	model := timing.Default()
	model.Bandwidth /= 500
	model.DenseFLOPS /= 500
	model.SparseFLOPS /= 500
	model.QuantRate /= 500
	model.Latency = 1e-4

	// 4. Train with both systems on the same partitioning.
	for _, method := range []core.Method{core.Vanilla, core.AdaQP} {
		cfg.Method = method
		res, err := core.TrainDeployed(dep, cfg, model)
		if err != nil {
			log.Fatal(err)
		}
		per := res.PerEpoch()
		fmt.Printf("%-8s test acc %.3f | %.2f epoch/s | per-epoch comm %.4fs comp %.4fs quant %.4fs\n",
			method, res.FinalTest, res.Throughput(), per.Comm+per.Idle, per.Comp, per.Quant)
	}
}
