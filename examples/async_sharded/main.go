// Async sharded transport demo: the same SANCUS training run on the
// in-process synchronous backend and on sharded-async at increasing
// staleness bounds, with and without the split-phase overlap schedule.
// Payloads are sequence-matched (never stale data), so every
// configuration reproduces the identical loss curve — what changes is the
// simulated schedule. SANCUS's sequential broadcasts charge every
// synchronous device the full serialization; with a positive staleness
// bound a receiver leaves the collective as soon as its own prefix of the
// broadcast lands, and with overlap enabled the trainer starts every
// broadcast before consuming any, so the central-graph forward compute
// runs inside the wire window and the hidden latency lands in the
// overlap column instead of Comm/Idle. A straggler is induced by slowing
// one device's links in the cost model.
//
//	go run ./examples/async_sharded
package main

import (
	"fmt"
	"log"

	"repro/pkg/adaqp"
)

func main() {
	ds := adaqp.MustLoadDataset("tiny", 1)
	fmt.Printf("dataset: %v\n\n", ds)

	const parts = 4
	// Slow every link out of device 3 to 1/4 bandwidth: the straggler whose
	// broadcasts the async backend lets the others overlap.
	model := adaqp.DefaultCostModel()
	theta := make([][]float64, parts)
	for s := range theta {
		theta[s] = make([]float64, parts)
		for d := range theta[s] {
			theta[s][d] = 1 / model.Bandwidth
			if s == parts-1 {
				theta[s][d] *= 4
			}
		}
	}
	model.PairTheta = theta

	eng, err := adaqp.New(ds,
		adaqp.WithParts(parts),
		adaqp.WithMethod(adaqp.SANCUS),
		adaqp.WithHidden(32),
		adaqp.WithEpochs(40),
		adaqp.WithEvalEvery(0),
		adaqp.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}

	type cfg struct {
		label string
		spec  adaqp.TransportSpec
	}
	cases := []cfg{
		{"inprocess (sync)", adaqp.TransportSpec{}},
		{"inprocess +overlap", adaqp.TransportSpec{Overlap: true}},
		{"sharded-async s=0", adaqp.TransportSpec{Name: adaqp.TransportShardedAsync}},
		{"sharded-async s=4", adaqp.TransportSpec{Name: adaqp.TransportShardedAsync, Staleness: 4}},
		{"sharded-async s=16 w=2", adaqp.TransportSpec{Name: adaqp.TransportShardedAsync, Staleness: 16, Workers: 2}},
		{"sharded s=16 w=2 +overlap", adaqp.TransportSpec{Name: adaqp.TransportShardedAsync, Staleness: 16, Workers: 2, Overlap: true}},
	}

	fmt.Printf("%-26s %12s %13s %13s %13s %14s\n",
		"transport", "wall-clock", "comm(dev 0)", "idle(dev 0)", "ovl(dev 0)", "final loss")
	var refLoss float64
	var refWall, refComm adaqp.Seconds
	var lastWall adaqp.Seconds
	for i, c := range cases {
		res, err := eng.Run(adaqp.WithTransport(c.spec))
		if err != nil {
			log.Fatal(err)
		}
		// Phases() is the structured per-device breakdown — no per-field
		// spelunking through PerDevice needed.
		dev0 := res.Phases()[0]
		loss := res.Epochs[len(res.Epochs)-1].Loss
		fmt.Printf("%-26s %11.3fs %12.3fs %12.3fs %12.3fs %14.6f\n",
			c.label, res.WallClock, dev0.Comm, dev0.Idle, dev0.Overlap, loss)
		if i == 0 {
			refLoss, refWall, refComm = loss, res.WallClock, dev0.Comm
		} else if loss != refLoss {
			log.Fatalf("%s diverged from the synchronous loss (%v vs %v)", c.label, loss, refLoss)
		}
		if c.spec.Overlap && dev0.Overlap <= 0 {
			log.Fatalf("%s hid no wire time despite the overlap schedule", c.label)
		}
		if c.spec.Overlap && res.WallClock >= refWall {
			log.Fatalf("%s wall-clock %v not below the blocking backend's %v",
				c.label, res.WallClock, refWall)
		}
		if c.label == "sharded-async s=16 w=2" && dev0.Comm >= refComm {
			log.Fatalf("staleness bound did not reduce device 0's wire time (%v vs %v)", dev0.Comm, refComm)
		}
		lastWall = res.WallClock
	}
	if lastWall >= refWall {
		log.Fatalf("overlap + staleness wall-clock %v not below blocking %v", lastWall, refWall)
	}
	fmt.Println("\nall transports converged to the bit-identical loss curve. the")
	fmt.Println("staleness bound trades receivers' wire time for run-ahead slack,")
	fmt.Println("and the split-phase overlap schedule spends that slack: broadcast")
	fmt.Println("wire time hides behind central-graph compute (the overlap column),")
	fmt.Println("dropping wall-clock below the blocking backend.")
}
