// Async sharded transport demo: the same SANCUS training run on the
// in-process synchronous backend and on sharded-async at increasing
// staleness bounds. Payloads are sequence-matched (never stale data), so
// every configuration reproduces the identical loss curve — what changes
// is the simulated schedule. SANCUS's sequential broadcasts charge every
// synchronous device the full serialization; with a positive staleness
// bound a receiver leaves the collective as soon as its own prefix of the
// broadcast lands, so early-rank devices spend far less time on the wire
// and the freed time surfaces as overlap slack (Idle at the epoch
// barrier) that computation or later collectives can fill. A straggler is
// induced by slowing one device's links in the cost model.
//
//	go run ./examples/async_sharded
package main

import (
	"fmt"
	"log"

	"repro/pkg/adaqp"
)

func main() {
	ds := adaqp.MustLoadDataset("tiny", 1)
	fmt.Printf("dataset: %v\n\n", ds)

	const parts = 4
	// Slow every link out of device 3 to 1/4 bandwidth: the straggler whose
	// broadcasts the async backend lets the others overlap.
	model := adaqp.DefaultCostModel()
	theta := make([][]float64, parts)
	for s := range theta {
		theta[s] = make([]float64, parts)
		for d := range theta[s] {
			theta[s][d] = 1 / model.Bandwidth
			if s == parts-1 {
				theta[s][d] *= 4
			}
		}
	}
	model.PairTheta = theta

	eng, err := adaqp.New(ds,
		adaqp.WithParts(parts),
		adaqp.WithMethod(adaqp.SANCUS),
		adaqp.WithHidden(32),
		adaqp.WithEpochs(40),
		adaqp.WithEvalEvery(0),
		adaqp.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}

	type cfg struct {
		label string
		opts  []adaqp.Option
	}
	cases := []cfg{
		{"inprocess (sync)", []adaqp.Option{adaqp.WithTransport(adaqp.TransportInprocess)}},
		{"sharded-async s=0", []adaqp.Option{adaqp.WithTransport(adaqp.TransportShardedAsync)}},
		{"sharded-async s=4", []adaqp.Option{
			adaqp.WithTransport(adaqp.TransportShardedAsync), adaqp.WithStalenessBound(4)}},
		{"sharded-async s=16 w=2", []adaqp.Option{
			adaqp.WithTransport(adaqp.TransportShardedAsync),
			adaqp.WithStalenessBound(16), adaqp.WithWorkers(2)}},
	}

	fmt.Printf("%-24s %12s %13s %13s %14s\n", "transport", "wall-clock", "comm(dev 0)", "slack(dev 0)", "final loss")
	var refLoss float64
	var refComm adaqp.Seconds
	for i, c := range cases {
		res, err := eng.Run(c.opts...)
		if err != nil {
			log.Fatal(err)
		}
		dev0 := res.PerDevice[0]
		loss := res.Epochs[len(res.Epochs)-1].Loss
		fmt.Printf("%-24s %11.3fs %12.3fs %12.3fs %14.6f\n",
			c.label, res.WallClock, dev0.Comm, dev0.Idle, loss)
		if i == 0 {
			refLoss, refComm = loss, dev0.Comm
		} else if loss != refLoss {
			log.Fatalf("%s diverged from the synchronous loss (%v vs %v)", c.label, loss, refLoss)
		}
		if i == len(cases)-1 && dev0.Comm >= refComm {
			log.Fatalf("staleness bound did not reduce device 0's wire time (%v vs %v)", dev0.Comm, refComm)
		}
	}
	fmt.Println("\nall transports converged to the bit-identical loss curve; the")
	fmt.Println("staleness bound only trades receivers' wire time for overlap slack.")
}
