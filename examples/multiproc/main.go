// Multi-process wire backend demo: the same AdaQP training run on the
// in-process reference transport and on proc-sharded, where every codec
// payload is serialized into a length-prefixed frame and routed through
// worker OS processes over Unix-domain sockets. The loss curves must be
// bit-identical — the wire changes where bytes travel, never what they
// decode to — so the program self-checks parity and exits non-zero on
// any divergence.
//
//	go run ./examples/multiproc
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/wire"
	"repro/pkg/adaqp"
)

func main() {
	// This binary re-executes itself as the proc-sharded worker fleet;
	// worker processes never return from MaybeWorker.
	wire.MaybeWorker()

	ds := adaqp.MustLoadDataset("tiny", 1)
	fmt.Printf("dataset: %v\n\n", ds)

	eng, err := adaqp.New(ds,
		adaqp.WithParts(4),
		adaqp.WithMethod(adaqp.AdaQP),
		adaqp.WithHidden(32),
		adaqp.WithEpochs(20),
		adaqp.WithEvalEvery(5))
	if err != nil {
		log.Fatal(err)
	}

	ref, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	proc, err := eng.Run(adaqp.WithTransport(adaqp.TransportSpec{
		Name:    adaqp.TransportProcSharded,
		Workers: 2,
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %12s %14s %16s\n", "transport", "final loss", "test acc", "payload bytes")
	for _, row := range []struct {
		label string
		res   *adaqp.Result
	}{
		{"inprocess", ref},
		{"proc-sharded", proc},
	} {
		var moved int64
		for _, r := range row.res.BytesMoved {
			for _, v := range r {
				moved += v
			}
		}
		fmt.Printf("%-14s %12.6f %14.4f %16d\n",
			row.label, row.res.Epochs[len(row.res.Epochs)-1].Loss, row.res.FinalTest, moved)
	}

	mismatch := false
	for i := range ref.Epochs {
		if ref.Epochs[i].Loss != proc.Epochs[i].Loss {
			fmt.Fprintf(os.Stderr, "PARITY FAILURE: epoch %d loss %.9f (inprocess) vs %.9f (proc-sharded)\n",
				i, ref.Epochs[i].Loss, proc.Epochs[i].Loss)
			mismatch = true
		}
	}
	if ref.FinalTest != proc.FinalTest {
		fmt.Fprintf(os.Stderr, "PARITY FAILURE: final test %.6f vs %.6f\n", ref.FinalTest, proc.FinalTest)
		mismatch = true
	}
	if mismatch {
		os.Exit(1)
	}
	fmt.Println("\nparity: all epoch losses and the final test accuracy are bit-identical across transports")
}
