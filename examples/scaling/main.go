// Scaling study (Table 7 flavor): throughput of Vanilla vs AdaQP as the
// same graph is spread over 2 → 24 devices. More partitions mean a higher
// remote-neighbor ratio (Table 1), so communication grows while per-device
// computation shrinks — the regime where message quantization pays off,
// until fixed per-message overheads dominate at very high device counts.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/synthetic"
)

func main() {
	ds := synthetic.MustLoad("products-sim", 0.5)
	fmt.Printf("dataset: %v\n\n", ds)
	fmt.Printf("%-8s %14s %14s %10s %18s\n", "devices", "vanilla ep/s", "adaqp ep/s", "speedup", "remote-nbr ratio")

	for _, parts := range []int{2, 4, 8, 16, 24} {
		dep := core.Deploy(ds, parts, core.GraphSAGE, partition.Block)
		tp := map[core.Method]float64{}
		for _, m := range []core.Method{core.Vanilla, core.AdaQP} {
			cfg := core.DefaultConfig()
			cfg.Model = core.GraphSAGE
			cfg.Method = m
			cfg.Hidden = 64
			cfg.Epochs = 10
			cfg.EvalEvery = 0
			cfg.ReassignPeriod = 11 // bootstrap assignment only
			res, err := core.TrainDeployed(dep, cfg, nil)
			if err != nil {
				log.Fatal(err)
			}
			tp[m] = res.Throughput()
		}
		fmt.Printf("%-8d %14.3f %14.3f %9.2fx %17.1f%%\n",
			parts, tp[core.Vanilla], tp[core.AdaQP], tp[core.AdaQP]/tp[core.Vanilla],
			100*dep.Stats.RemoteNeighborAvg)
	}
}
