// Scaling study (Table 7 flavor): throughput of Vanilla vs AdaQP as the
// same graph is spread over 2 → 24 devices. More partitions mean a higher
// remote-neighbor ratio (Table 1), so communication grows while per-device
// computation shrinks — the regime where message quantization pays off,
// until fixed per-message overheads dominate at very high device counts.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/pkg/adaqp"
)

func main() {
	ds := adaqp.MustLoadDataset("products-sim", 0.5)
	fmt.Printf("dataset: %v\n\n", ds)
	fmt.Printf("%-8s %14s %14s %10s %18s\n", "devices", "vanilla ep/s", "adaqp ep/s", "speedup", "remote-nbr ratio")

	for _, parts := range []int{2, 4, 8, 16, 24} {
		eng, err := adaqp.New(ds,
			adaqp.WithParts(parts),
			adaqp.WithModel(adaqp.GraphSAGE),
			adaqp.WithHidden(64),
			adaqp.WithEpochs(10),
			adaqp.WithEvalEvery(0),
			adaqp.WithReassignPeriod(11)) // bootstrap assignment only
		if err != nil {
			log.Fatal(err)
		}
		tp := map[adaqp.Method]float64{}
		for _, m := range []adaqp.Method{adaqp.Vanilla, adaqp.AdaQP} {
			res, err := eng.Run(adaqp.WithMethod(m))
			if err != nil {
				log.Fatal(err)
			}
			tp[m] = res.Throughput()
		}
		fmt.Printf("%-8d %14.3f %14.3f %9.2fx %17.1f%%\n",
			parts, tp[adaqp.Vanilla], tp[adaqp.AdaQP], tp[adaqp.AdaQP]/tp[adaqp.Vanilla],
			100*eng.Deployment().Stats.RemoteNeighborAvg)
	}
}
