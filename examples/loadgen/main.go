// Loadgen simulates many clients hammering the session scheduler with
// small fixed-seed training jobs and reports serving capacity: sessions
// per second and the p50/p99/max completion latency — the measurement the
// "millions of users" direction needs before any tuning conversation.
//
// Two modes share the same client loop:
//
//	go run ./examples/loadgen                      # in-process scheduler
//	go run ./examples/loadgen -clients 200 -jobs 2
//	go run ./examples/loadgen -addr localhost:8080 # drive a running adaqpd
//
// Every client submits its jobs sequentially, backing off and retrying
// when admission control rejects (queue full) — so the run also shows how
// often backpressure fired under the chosen concurrency.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/adaqp"
)

func main() {
	var (
		clients    = flag.Int("clients", 100, "concurrent clients")
		jobs       = flag.Int("jobs", 2, "jobs each client submits sequentially")
		workers    = flag.Int("max-concurrent", 4, "scheduler worker pool (in-process mode)")
		queueDepth = flag.Int("queue-depth", 32, "scheduler queue depth (in-process mode)")
		epochs     = flag.Int("epochs", 2, "epochs per job")
		dataset    = flag.String("dataset", "tiny", "dataset per job")
		scale      = flag.Float64("scale", 0.25, "dataset scale per job")
		addr       = flag.String("addr", "", "drive a running adaqpd at this host:port instead of in-process")
	)
	flag.Parse()

	spec := adaqp.JobSpec{
		Dataset: *dataset, Scale: *scale, Parts: 2, Method: "vanilla",
		Epochs: *epochs, Hidden: 8,
	}
	evalEvery := 0
	spec.EvalEvery = &evalEvery

	var submit submitFunc
	var drain func()
	if *addr == "" {
		sched, err := adaqp.NewScheduler(
			adaqp.WithMaxConcurrentSessions(*workers),
			adaqp.WithQueueDepth(*queueDepth),
			adaqp.WithRetryAfter(5*time.Millisecond))
		if err != nil {
			fatal(err)
		}
		submit = inprocessSubmit(sched)
		drain = func() { sched.Drain(context.Background()) }
		fmt.Printf("loadgen: in-process scheduler, %d workers, queue %d\n", *workers, *queueDepth)
	} else {
		submit = httpSubmit("http://" + *addr)
		drain = func() {}
		fmt.Printf("loadgen: driving adaqpd at %s\n", *addr)
	}
	fmt.Printf("loadgen: %d clients x %d jobs (%s scale %.2f, %d epochs)\n\n",
		*clients, *jobs, *dataset, *scale, *epochs)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		retries   atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := 0; i < *jobs; i++ {
				js := spec
				js.Seed = uint64(client*(*jobs) + i + 1)
				submitted := time.Now()
				if err := submit(js, &retries); err != nil {
					fmt.Fprintf(os.Stderr, "client %d job %d: %v\n", client, i, err)
					return
				}
				mu.Lock()
				latencies = append(latencies, time.Since(submitted))
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	drain()

	n := len(latencies)
	if n == 0 {
		fatal(errors.New("no sessions completed"))
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	quantile := func(q float64) time.Duration {
		i := int(q * float64(n-1))
		return latencies[i]
	}
	fmt.Printf("completed        %d sessions in %v\n", n, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput       %.1f sessions/s\n", float64(n)/elapsed.Seconds())
	fmt.Printf("latency p50      %v\n", quantile(0.50).Round(time.Microsecond))
	fmt.Printf("latency p99      %v\n", quantile(0.99).Round(time.Microsecond))
	fmt.Printf("latency max      %v\n", latencies[n-1].Round(time.Microsecond))
	fmt.Printf("queue-full backoffs %d\n", retries.Load())
}

// submitFunc submits one job and blocks until it completes.
type submitFunc func(spec adaqp.JobSpec, retries *atomic.Int64) error

func inprocessSubmit(sched *adaqp.Scheduler) submitFunc {
	return func(spec adaqp.JobSpec, retries *atomic.Int64) error {
		for {
			h, err := sched.SubmitSpec(spec)
			if errors.Is(err, adaqp.ErrQueueFull) {
				retries.Add(1)
				time.Sleep(sched.RetryAfter())
				continue
			}
			if err != nil {
				return err
			}
			_, err = h.Wait(context.Background())
			return err
		}
	}
}

// httpSubmit drives a live adaqpd daemon: POST the job, honor 429
// Retry-After backpressure, poll status until terminal.
func httpSubmit(base string) submitFunc {
	return func(spec adaqp.JobSpec, retries *atomic.Int64) error {
		body, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		var id string
		for {
			resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			var job struct {
				ID    string `json:"id"`
				Error string `json:"error"`
			}
			dec := json.NewDecoder(resp.Body)
			err = dec.Decode(&job)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				retries.Add(1)
				time.Sleep(100 * time.Millisecond)
				continue
			}
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("submit: %d %s", resp.StatusCode, job.Error)
			}
			id = job.ID
			break
		}
		for {
			resp, err := http.Get(base + "/jobs/" + id)
			if err != nil {
				return err
			}
			var job struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&job)
			resp.Body.Close()
			if err != nil {
				return err
			}
			switch job.Status {
			case "done":
				return nil
			case "failed", "canceled":
				return fmt.Errorf("job %s %s: %s", id, job.Status, job.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
