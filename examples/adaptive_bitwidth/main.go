// Drives the bit-width assigner directly (no training): builds a message
// population with skewed variance contributions β across imbalanced device
// pairs, then sweeps λ from pure-throughput (0) to pure-fidelity (1) and
// shows how the solved assignment migrates between 2, 4 and 8 bits — the
// trade-off of the paper's Eqn. 12.
//
//	go run ./examples/adaptive_bitwidth
package main

import (
	"fmt"

	"repro/internal/bitassign"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	const devices = 4
	rng := tensor.NewRNG(7)

	// Synthesize a communication round: pair (0→1) is a straggler
	// carrying 4× the messages; β values are heavy-tailed like real
	// embedding ranges.
	var msgs []bitassign.Message
	slot := map[int]int{}
	addMsgs := func(src, dst, count, dim int) {
		pair := src*devices + dst
		for i := 0; i < count; i++ {
			beta := rng.Float64()
			beta = beta * beta * beta * 10 // heavy tail
			msgs = append(msgs, bitassign.Message{
				Pair: pair, Slot: slot[pair], Dim: dim, Beta: beta,
			})
			slot[pair]++
		}
	}
	for src := 0; src < devices; src++ {
		for dst := 0; dst < devices; dst++ {
			if src == dst {
				continue
			}
			count := 200
			if src == 0 && dst == 1 {
				count = 800 // the straggler pair of Fig. 2
			}
			addMsgs(src, dst, count, 256)
		}
	}
	theta := make([]float64, devices*devices)
	gamma := make([]float64, devices*devices)
	for i := range theta {
		theta[i] = 8e-11 // 100 Gbps
		gamma[i] = 1e-3
	}

	fmt.Printf("%d messages over %d device pairs (pair 0→1 is 4x oversized)\n\n", len(msgs), devices*(devices-1))
	fmt.Printf("%-8s %8s %8s %8s %14s %12s\n", "lambda", "#2-bit", "#4-bit", "#8-bit", "variance", "maxTime(ms)")
	for _, lambda := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		prob := bitassign.NewProblem(msgs, 50, theta, gamma, lambda)
		widths := prob.Solve()
		variance, maxTime, _ := prob.Objective(widths)
		counts := map[quant.BitWidth]int{}
		for _, w := range widths {
			counts[w]++
		}
		fmt.Printf("%-8.2f %8d %8d %8d %14.3f %12.3f\n",
			lambda, counts[quant.B2], counts[quant.B4], counts[quant.B8], variance, 1000*maxTime)
	}

	// Show the straggler effect: at λ=0.5, compare the average width of
	// the oversized pair with the others.
	prob := bitassign.NewProblem(msgs, 50, theta, gamma, 0.5)
	widths := prob.Solve()
	sum := map[bool][2]float64{}
	for i, g := range prob.Groups {
		heavy := g.Pair == 0*devices+1
		s := sum[heavy]
		s[0] += float64(widths[i]) * float64(len(g.Members))
		s[1] += float64(len(g.Members))
		sum[heavy] = s
	}
	fmt.Printf("\nλ=0.5 average assigned width: straggler pair %.2f bits, other pairs %.2f bits\n",
		sum[true][0]/sum[true][1], sum[false][0]/sum[false][1])
	fmt.Println("(the minimax time objective pushes the straggler pair toward lower precision)")
}
