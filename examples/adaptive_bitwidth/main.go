// Drives the bit-width assigner directly (no training): builds a message
// population with skewed variance contributions β across imbalanced device
// pairs, then sweeps λ from pure-throughput (0) to pure-fidelity (1) and
// shows how the solved assignment migrates between 2, 4 and 8 bits — the
// trade-off of the paper's Eqn. 12.
//
// It then trains the full codec competitor family — fp32, adaptive,
// ef-quant, topk and delta — on one shared deployment through the Engine
// API, on both transport backends, and prints the loss/accuracy/wire-byte
// comparison; per codec it also checks that the two backends produced
// bit-identical fixed-seed loss curves.
//
//	go run ./examples/adaptive_bitwidth
package main

import (
	"fmt"
	"os"

	"repro/internal/bitassign"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/pkg/adaqp"
)

func main() {
	const devices = 4
	rng := tensor.NewRNG(7)

	// Synthesize a communication round: pair (0→1) is a straggler
	// carrying 4× the messages; β values are heavy-tailed like real
	// embedding ranges.
	var msgs []bitassign.Message
	slot := map[int]int{}
	addMsgs := func(src, dst, count, dim int) {
		pair := src*devices + dst
		for i := 0; i < count; i++ {
			beta := rng.Float64()
			beta = beta * beta * beta * 10 // heavy tail
			msgs = append(msgs, bitassign.Message{
				Pair: pair, Slot: slot[pair], Dim: dim, Beta: beta,
			})
			slot[pair]++
		}
	}
	for src := 0; src < devices; src++ {
		for dst := 0; dst < devices; dst++ {
			if src == dst {
				continue
			}
			count := 200
			if src == 0 && dst == 1 {
				count = 800 // the straggler pair of Fig. 2
			}
			addMsgs(src, dst, count, 256)
		}
	}
	theta := make([]float64, devices*devices)
	gamma := make([]float64, devices*devices)
	for i := range theta {
		theta[i] = 8e-11 // 100 Gbps
		gamma[i] = 1e-3
	}

	fmt.Printf("%d messages over %d device pairs (pair 0→1 is 4x oversized)\n\n", len(msgs), devices*(devices-1))
	fmt.Printf("%-8s %8s %8s %8s %14s %12s\n", "lambda", "#2-bit", "#4-bit", "#8-bit", "variance", "maxTime(ms)")
	for _, lambda := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		prob := bitassign.NewProblem(msgs, 50, theta, gamma, lambda)
		widths := prob.Solve()
		variance, maxTime, _ := prob.Objective(widths)
		counts := map[quant.BitWidth]int{}
		for _, w := range widths {
			counts[w]++
		}
		fmt.Printf("%-8.2f %8d %8d %8d %14.3f %12.3f\n",
			lambda, counts[quant.B2], counts[quant.B4], counts[quant.B8], variance, 1000*maxTime)
	}

	// Show the straggler effect: at λ=0.5, compare the average width of
	// the oversized pair with the others.
	prob := bitassign.NewProblem(msgs, 50, theta, gamma, 0.5)
	widths := prob.Solve()
	sum := map[bool][2]float64{}
	for i, g := range prob.Groups {
		heavy := g.Pair == 0*devices+1
		s := sum[heavy]
		s[0] += float64(widths[i]) * float64(len(g.Members))
		s[1] += float64(len(g.Members))
		sum[heavy] = s
	}
	fmt.Printf("\nλ=0.5 average assigned width: straggler pair %.2f bits, other pairs %.2f bits\n",
		sum[true][0]/sum[true][1], sum[false][0]/sum[false][1])
	fmt.Println("(the minimax time objective pushes the straggler pair toward lower precision)")

	compareCodecs()
}

// compareCodecs trains the codec competitor family on one shared
// deployment and prints the comparison, checking cross-backend loss
// parity for every codec along the way.
func compareCodecs() {
	eng, err := adaqp.New(adaqp.MustLoadDataset("tiny", 1),
		adaqp.WithParts(4),
		adaqp.WithEpochs(30),
		adaqp.WithHidden(64),
		adaqp.WithEvalEvery(0),
		adaqp.WithReassignPeriod(10),
		adaqp.WithCodec(adaqp.CodecSpec{
			UniformBits:        2,
			TopKDensity:        0.1,
			DeltaKeyframeEvery: 10,
		}),
		adaqp.WithSeed(1))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\ncodec comparison on one shared deployment (tiny, 4 devices, 30 epochs):\n\n")
	fmt.Printf("%-10s %12s %10s %12s %14s %10s\n", "codec", "final loss", "test acc", "wall-clock", "wire MB", "parity")
	for _, codec := range []string{
		adaqp.CodecFP32, adaqp.CodecAdaptive, adaqp.CodecEFQuant, adaqp.CodecTopK, adaqp.CodecDelta,
	} {
		inproc, err := eng.Run(adaqp.WithCodec(adaqp.CodecSpec{Name: codec}))
		if err != nil {
			fatal(fmt.Errorf("%s on %s: %w", codec, adaqp.TransportInprocess, err))
		}
		sharded, err := eng.Run(
			adaqp.WithCodec(adaqp.CodecSpec{Name: codec}),
			adaqp.WithTransport(adaqp.TransportSpec{Name: adaqp.TransportShardedAsync, Workers: 2}))
		if err != nil {
			fatal(fmt.Errorf("%s on %s: %w", codec, adaqp.TransportShardedAsync, err))
		}
		parity := "bit-identical"
		for i := range inproc.Epochs {
			if inproc.Epochs[i].Loss != sharded.Epochs[i].Loss {
				parity = fmt.Sprintf("DIVERGED@%d", i)
				break
			}
		}
		var bytes int64
		for _, row := range inproc.BytesMoved {
			for _, b := range row {
				bytes += b
			}
		}
		fmt.Printf("%-10s %12.4f %10.4f %11.2fs %14.2f %10s\n",
			codec, inproc.Epochs[len(inproc.Epochs)-1].Loss, inproc.FinalTest,
			float64(inproc.WallClock), float64(bytes)/1e6, parity)
	}
	fmt.Println("\n(parity compares fixed-seed loss curves on in-process vs sharded-async)")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adaptive_bitwidth: %v\n", err)
	os.Exit(1)
}
