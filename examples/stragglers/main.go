// Straggler fault-injection demo: the same SANCUS training run under a
// deterministic fault plan — one compute-bound straggler (6× slower local
// work) and one bandwidth-bound straggler (16× slower outgoing links) — on
// the blocking in-process backend and on sharded-async with a staleness
// bound. Faults only ever charge simulated time, so every configuration
// reproduces the bit-identical loss curve; what changes is the schedule.
//
// The blocking backend couples the two stragglers: every device sits
// through the link straggler's full slow broadcast, so the compute
// straggler pays its own 6× work *plus* the link straggler's wire time,
// additively, every epoch. The staleness bound decouples them — a receiver
// leaves a broadcast once its own prefix lands — so the compute straggler
// stops absorbing the link straggler's delay and the critical path drops
// from the sum of the two bottlenecks toward their maximum. The run checks
// exactly that: the async speedup under faults exceeds the fault-free async
// speedup, at equal loss.
//
//	go run ./examples/stragglers
package main

import (
	"fmt"
	"log"

	"repro/pkg/adaqp"
)

// commodityModel calibrates a cluster where both bottleneck types bite:
// slower devices (2 GFLOP/s-class effective compute) on 1.6 Gbps links,
// with a low per-message overhead so wire time is bandwidth-dominated.
// The default V100/100 Gbps model would hide both fault families behind
// its 1 ms per-message software latency on a dataset this small.
func commodityModel() *adaqp.CostModel {
	m := adaqp.DefaultCostModel()
	m.DenseFLOPS = 2e9
	m.SparseFLOPS = 2e8
	m.Bandwidth = 2e8
	m.Latency = 1e-5
	return m
}

func main() {
	ds := adaqp.MustLoadDataset("tiny", 1)
	fmt.Printf("dataset: %v\n\n", ds)

	const parts = 4
	chaos := adaqp.FaultSpec{
		Seed:       5,
		Stragglers: 2,
		SlowFactor: 6,  // compute-bound straggler: 6× slower local work
		LinkFactor: 16, // bandwidth-bound straggler: 16× slower outgoing links
	}

	// speedup trains blocking vs sharded-async (staleness 16) with the
	// given extra options and returns both wall-clocks, enforcing the
	// bit-identical loss curve along the way.
	base := []adaqp.Option{
		adaqp.WithParts(parts),
		adaqp.WithMethod(adaqp.SANCUS),
		adaqp.WithHidden(32),
		adaqp.WithEpochs(30),
		adaqp.WithEvalEvery(0),
		adaqp.WithCostModel(commodityModel()),
	}
	speedup := func(label string, extra ...adaqp.Option) (blocking, async *adaqp.Result) {
		eng, err := adaqp.New(ds, append(base, extra...)...)
		if err != nil {
			log.Fatal(err)
		}
		blocking, err = eng.Run(adaqp.WithTransport(adaqp.TransportSpec{Name: adaqp.TransportInprocess}))
		if err != nil {
			log.Fatal(err)
		}
		async, err = eng.Run(adaqp.WithTransport(adaqp.TransportSpec{
			Name:      adaqp.TransportShardedAsync,
			Staleness: 16,
		}))
		if err != nil {
			log.Fatal(err)
		}
		bl := blocking.Epochs[len(blocking.Epochs)-1].Loss
		al := async.Epochs[len(async.Epochs)-1].Loss
		if bl != al {
			log.Fatalf("%s: async loss diverged from blocking (%v vs %v): faults must never touch numerics", label, al, bl)
		}
		fmt.Printf("%-18s blocking %8.4fs   sharded-async s=16 %8.4fs   speedup %.3fx   loss %.6f\n",
			label, blocking.WallClock, async.WallClock, float64(blocking.WallClock)/float64(async.WallClock), bl)
		return blocking, async
	}

	cleanBlk, cleanAsy := speedup("fault-free")
	chaosBlk, chaosAsy := speedup("straggler plan", adaqp.WithFaultPlan(chaos))

	if chaosAsy.Faults.Stragglers != 2 {
		log.Fatalf("fault plan injected %d stragglers, want 2", chaosAsy.Faults.Stragglers)
	}
	if chaosAsy.WallClock >= chaosBlk.WallClock {
		log.Fatalf("staleness did not beat blocking under the straggler plan (%.4fs vs %.4fs)",
			chaosAsy.WallClock, chaosBlk.WallClock)
	}
	cleanUp := float64(cleanBlk.WallClock) / float64(cleanAsy.WallClock)
	chaosUp := float64(chaosBlk.WallClock) / float64(chaosAsy.WallClock)
	if chaosUp <= cleanUp {
		log.Fatalf("async speedup under faults (%.3fx) did not exceed the fault-free speedup (%.3fx): the staleness bound failed to decouple the stragglers", chaosUp, cleanUp)
	}

	fmt.Printf("\nper-device phases under the straggler plan (sharded-async s=16):\n")
	for _, p := range chaosAsy.Phases() {
		fmt.Printf("  %v\n", p)
	}

	fmt.Printf("\nidentical loss curves in all four runs. fault-free, staleness is worth\n")
	fmt.Printf("%.3fx; under the straggler plan it is worth %.3fx, because the compute\n", cleanUp, chaosUp)
	fmt.Printf("straggler no longer sits through the link straggler's slow broadcasts —\n")
	fmt.Printf("the two bottlenecks overlap instead of adding up.\n")
}
