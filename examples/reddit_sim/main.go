// Full method comparison on reddit-sim — the workload class the paper's
// introduction motivates: a dense social graph whose halo exchange
// dominates training time. Trains GraphSAGE with all four systems (Vanilla,
// PipeGCN, SANCUS, AdaQP) on one shared partitioning and reports accuracy,
// throughput and the per-epoch time breakdown.
//
// Note the PipeGCN result: reddit-sim is the densest graph in the registry
// (highest compute per node), which is exactly the regime where PipeGCN's
// cross-iteration pipelining can hide communication entirely — the paper's
// explanation for PipeGCN winning on Reddit while AdaQP wins elsewhere.
//
//	go run ./examples/reddit_sim
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/pkg/adaqp"
)

func main() {
	ds := adaqp.MustLoadDataset("reddit-sim", 0.25)
	fmt.Printf("dataset: %v\n\n", ds)

	// One Engine = one partitioning, shared by every method below.
	eng, err := adaqp.New(ds,
		adaqp.WithParts(4),
		adaqp.WithModel(adaqp.GraphSAGE),
		adaqp.WithHidden(64),
		adaqp.WithEpochs(60),
		adaqp.WithEvalEvery(10),
		adaqp.WithReassignPeriod(15))
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\ttest acc\tepoch/s\tcomm s/ep\tcomp s/ep\tquant s/ep")
	var base float64
	for _, method := range []adaqp.Method{adaqp.Vanilla, adaqp.PipeGCN, adaqp.SANCUS, adaqp.AdaQP} {
		res, err := eng.Run(adaqp.WithMethod(method))
		if err != nil {
			log.Fatal(err)
		}
		tp := res.Throughput()
		speedup := ""
		if method == adaqp.Vanilla {
			base = tp
		} else if base > 0 {
			speedup = fmt.Sprintf(" (%.2fx)", tp/base)
		}
		per := res.PerEpoch()
		fmt.Fprintf(w, "%v\t%.3f\t%.3f%s\t%.4f\t%.4f\t%.4f\n",
			method, res.FinalTest, tp, speedup, float64(per.Comm+per.Idle), float64(per.Comp), float64(per.Quant))
	}
	w.Flush()
}
