// Full method comparison on reddit-sim — the workload class the paper's
// introduction motivates: a dense social graph whose halo exchange
// dominates training time. Trains GraphSAGE with all four systems (Vanilla,
// PipeGCN, SANCUS, AdaQP) on one shared partitioning and reports accuracy,
// throughput and the per-epoch time breakdown.
//
// Note the PipeGCN result: reddit-sim is the densest graph in the registry
// (highest compute per node), which is exactly the regime where PipeGCN's
// cross-iteration pipelining can hide communication entirely — the paper's
// explanation for PipeGCN winning on Reddit while AdaQP wins elsewhere.
//
//	go run ./examples/reddit_sim
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/synthetic"
)

func main() {
	ds := synthetic.MustLoad("reddit-sim", 0.25)
	fmt.Printf("dataset: %v\n\n", ds)
	dep := core.Deploy(ds, 4, core.GraphSAGE, partition.Block)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\ttest acc\tepoch/s\tcomm s/ep\tcomp s/ep\tquant s/ep")
	var base float64
	for _, method := range []core.Method{core.Vanilla, core.PipeGCN, core.SANCUS, core.AdaQP} {
		cfg := core.DefaultConfig()
		cfg.Model = core.GraphSAGE
		cfg.Method = method
		cfg.Hidden = 64
		cfg.Epochs = 60
		cfg.EvalEvery = 10
		cfg.ReassignPeriod = 15
		res, err := core.TrainDeployed(dep, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		tp := res.Throughput()
		speedup := ""
		if method == core.Vanilla {
			base = tp
		} else if base > 0 {
			speedup = fmt.Sprintf(" (%.2fx)", tp/base)
		}
		per := res.PerEpoch()
		fmt.Fprintf(w, "%v\t%.3f\t%.3f%s\t%.4f\t%.4f\t%.4f\n",
			method, res.FinalTest, tp, speedup, float64(per.Comm+per.Idle), float64(per.Comp), float64(per.Quant))
	}
	w.Flush()
}
